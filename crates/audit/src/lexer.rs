//! A minimal Rust lexer: just enough token structure for the audit
//! rules, in the same hand-rolled style as the mini-C++ frontend in
//! `ccsa-cppast`.
//!
//! The lexer's one job is to make rule matching *token-accurate*: an
//! `unsafe` inside a string literal or a doc comment must never count
//! as an unsafe site, and a `// SAFETY:` inside a string must never
//! count as a justification. It therefore separates the character
//! stream into
//!
//! * **tokens** — identifiers, string/char/number literals, lifetimes,
//!   and single-character punctuation, each carrying its 1-based line;
//! * **comments** — a per-line map of all comment text visible on that
//!   line (line comments, doc comments, and every line a block comment
//!   spans), which is what the "justification comment" rules read.
//!
//! It does not parse: brace depths, item boundaries and statement
//! boundaries are reconstructed by the rules that need them. Raw
//! strings (any `#` depth), nested block comments, byte strings, char
//! literals vs. lifetimes, and float literals are all handled, because
//! the workspace uses all of them.

use std::collections::HashMap;

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (`text` holds the *raw contents*, quotes and
    /// prefixes stripped, escapes left as written).
    Str,
    /// Char literal.
    Char,
    /// Number literal (integer or float, suffix included).
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
    /// One punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what Str stores).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A lexed source file.
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// The raw lines (1-based access via [`SourceFile::line`]).
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line: every comment fragment visible on
    /// that line, joined with `\n`. Block comments contribute their full
    /// text to every line they span.
    pub comments: HashMap<usize, String>,
    /// Lines whose only non-whitespace content is comment text.
    pub comment_only: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` under the given repo-relative path.
    pub fn lex(path: &str, source: &str) -> SourceFile {
        Lexer::new(source).run(path)
    }

    /// The 1-based line `n`, or "" past EOF.
    pub fn line(&self, n: usize) -> &str {
        self.lines
            .get(n.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// All comment text on line `n` ("" when none).
    pub fn comment_on(&self, n: usize) -> &str {
        self.comments.get(&n).map(String::as_str).unwrap_or("")
    }

    /// Whether line `n` holds only comment text (and whitespace).
    pub fn is_comment_only(&self, n: usize) -> bool {
        *self.comment_only.get(n.wrapping_sub(1)).unwrap_or(&false)
    }

    /// The crate name this file belongs to (`crates/<name>/…`), or
    /// "root" for the top-level `src`/`tests` trees.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        if parts.next() == Some("crates") {
            if let Some(name) = parts.next() {
                return name;
            }
        }
        "root"
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: HashMap<usize, String>,
    /// Lines on which at least one token starts.
    token_lines: Vec<usize>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            bytes: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: HashMap::new(),
            token_lines: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.token_lines.push(line);
        self.tokens.push(Token { kind, text, line });
    }

    fn add_comment(&mut self, line: usize, text: &str) {
        let slot = self.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push('\n');
        }
        slot.push_str(text);
    }

    fn run(mut self, path: &str) -> SourceFile {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(line, 0),
                b'r' | b'b' => {
                    if !self.maybe_prefixed_literal(line) {
                        self.ident(line);
                    }
                }
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(line),
                _ => {
                    self.bump();
                    // Multibyte UTF-8 (only ever appears in comments or
                    // strings in this tree, but stay robust): consume
                    // continuation bytes silently.
                    if b < 0x80 {
                        self.push(TokKind::Punct, (b as char).to_string(), line);
                    }
                }
            }
        }
        let lines: Vec<String> = std::str::from_utf8(self.bytes)
            .unwrap_or("")
            .lines()
            .map(str::to_string)
            .collect();
        let mut comment_only = vec![false; lines.len()];
        for (ix, flag) in comment_only.iter_mut().enumerate() {
            let n = ix + 1;
            let has_comment = self.comments.contains_key(&n);
            let has_token = self.token_lines.contains(&n);
            *flag = has_comment && !has_token;
        }
        SourceFile {
            path: path.replace('\\', "/"),
            lines,
            tokens: self.tokens,
            comments: self.comments,
            comment_only,
        }
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let begin = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.pos])
            .unwrap_or("")
            .to_string();
        self.add_comment(start_line, &text);
    }

    fn block_comment(&mut self) {
        let begin = self.pos;
        let first_line = self.line;
        self.bump();
        self.bump(); // consume /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.pos]).unwrap_or("");
        for line in first_line..=self.line {
            self.add_comment(line, text);
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — returns
    /// false if this is actually just an identifier starting with r/b.
    fn maybe_prefixed_literal(&mut self, line: usize) -> bool {
        let mut off = 1; // past the r/b
        let first = self.peek().unwrap_or(b'_');
        let mut saw_r = first == b'r';
        if first == b'b' {
            match self.peek_at(1) {
                Some(b'\'') => {
                    // byte char literal b'x'
                    self.bump(); // b
                    self.char_or_lifetime(line);
                    return true;
                }
                Some(b'r') => {
                    saw_r = true;
                    off = 2;
                }
                Some(b'"') => {
                    self.bump(); // b
                    self.string(line, 0);
                    return true;
                }
                _ => return false,
            }
        }
        if !saw_r {
            return false;
        }
        // raw string: r[#...]" — count hashes.
        let mut hashes = 0usize;
        while self.peek_at(off + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek_at(off + hashes) != Some(b'"') {
            return false; // identifier like `r` or `row`, or raw ident r#x
        }
        for _ in 0..off + hashes {
            self.bump();
        }
        self.string(line, hashes);
        true
    }

    /// Lexes a (raw) string body; `hashes` > 0 means raw-string rules
    /// (no escapes, terminated by `"` + hashes). `pos` sits on the `"`.
    fn string(&mut self, line: usize, hashes: usize) {
        self.bump(); // opening quote
        let begin = self.pos;
        let mut end;
        loop {
            match self.peek() {
                None => {
                    end = self.pos;
                    break;
                }
                Some(b'"') => {
                    end = self.pos;
                    if hashes == 0 {
                        self.bump();
                        break;
                    }
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek_at(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(b'\\') if hashes == 0 => {
                    self.bump();
                    self.bump(); // the escaped byte (newline handled by bump)
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[begin..end])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // opening '
                     // Lifetime: 'ident not closed by '. Char: anything else.
        let is_lifetime = match self.peek() {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // scan the ident run; lifetime iff not followed by '
                let mut off = 0;
                while matches!(self.peek_at(off), Some(c) if c == b'_' || c.is_ascii_alphanumeric())
                {
                    off += 1;
                }
                self.peek_at(off) != Some(b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            let begin = self.pos;
            while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.bytes[begin..self.pos])
                .unwrap_or("")
                .to_string();
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume until closing quote, honoring escapes.
        let begin = self.pos;
        loop {
            match self.peek() {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'\'') => {
                    break;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.pos])
            .unwrap_or("")
            .to_string();
        self.bump(); // closing '
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self, line: usize) {
        let begin = self.pos;
        // Hex/octal/binary prefixes take the alnum+underscore run.
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x' | b'o' | b'b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_digit()) {
                self.bump();
            }
            // Fraction: '.' followed by a digit (so `0..n` stays a range)
            // or a bare trailing `0.` (followed by non-ident, e.g. `0.`).
            if self.peek() == Some(b'.') {
                let after = self.peek_at(1);
                let fraction = match after {
                    Some(c) if c.is_ascii_digit() => true,
                    // `1.` before `)`/`,`/operator is a float; `1.x` or
                    // `1..` is field access / range.
                    Some(b'.') => false,
                    Some(c) if c == b'_' || c.is_ascii_alphabetic() => false,
                    _ => true,
                };
                if fraction {
                    self.bump();
                    while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_digit()) {
                        self.bump();
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(), Some(b'e' | b'E'))
                && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-')
            {
                // Only when followed by digits / sign+digits (else `3e`
                // would swallow an ident — not valid Rust anyway).
                self.bump();
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                    self.bump();
                }
            }
        }
        // Type suffix (f32, u64, usize…).
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: usize) {
        let begin = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[begin..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
// unsafe in a comment
let x = "unsafe { Ordering::SeqCst }"; // trailing
let r = r#"also "unsafe" here"#;
/* block unsafe
   spanning lines */
unsafe { work() }
"##;
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        let unsafe_tokens: Vec<_> = f.tokens.iter().filter(|t| t.is_ident("unsafe")).collect();
        assert_eq!(unsafe_tokens.len(), 1, "only the real unsafe block");
        assert_eq!(unsafe_tokens[0].line, 7);
        assert!(f.comment_on(2).contains("unsafe in a comment"));
        assert!(f.comment_on(3).contains("trailing"));
        assert!(f.comment_on(5).contains("block unsafe"));
        assert!(f.comment_on(6).contains("spanning lines"));
        assert!(f.is_comment_only(2));
        assert!(!f.is_comment_only(3));
        let strs: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].contains("also \"unsafe\" here"));
    }

    #[test]
    fn floats_chars_lifetimes() {
        let src = "fn f<'a>(x: &'a f32) { if *x == 0.0 { } let c = 'x'; let r = 0..3; }";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0.0"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
        // The range endpoints lex as two integer tokens, not a float.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "3"));
    }

    #[test]
    fn ordering_tokens_found() {
        let src = "x.store(true, Ordering::SeqCst);";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        let ix = f
            .tokens
            .iter()
            .position(|t| t.is_ident("Ordering"))
            .unwrap();
        assert!(f.tokens[ix + 1].is_punct(':'));
        assert!(f.tokens[ix + 2].is_punct(':'));
        assert!(f.tokens[ix + 3].is_ident("SeqCst"));
    }

    #[test]
    fn crate_name_derivation() {
        assert_eq!(
            SourceFile::lex("crates/serve/src/batch.rs", "").crate_name(),
            "serve"
        );
        assert_eq!(SourceFile::lex("src/lib.rs", "").crate_name(), "root");
    }
}
