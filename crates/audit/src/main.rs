//! `ccsa-audit` — run the workspace invariant rules over a source tree.
//!
//! ```text
//! ccsa-audit [--root DIR] [--allowlist FILE] [--rules a,b,c] [--list]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or stale allowlist entries),
//! `2` usage / IO error. The allowlist defaults to `<root>/audit.allow`
//! when that file exists; pass `--allowlist none` to ignore it.

use ccsa_audit::{run, Allowlist, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    rules: Option<Vec<String>>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        rules: None,
        list: false,
    };
    let mut no_allowlist = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--allowlist" => {
                let v = value("--allowlist")?;
                if v == "none" {
                    no_allowlist = true;
                } else {
                    args.allowlist = Some(PathBuf::from(v));
                }
            }
            "--rules" => {
                args.rules = Some(value("--rules")?.split(',').map(str::to_string).collect())
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err("usage: ccsa-audit [--root DIR] [--allowlist FILE|none] \
                            [--rules a,b,c] [--list]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.allowlist.is_none() && !no_allowlist {
        let default = args.root.join("audit.allow");
        if default.is_file() {
            args.allowlist = Some(default);
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("ccsa-audit: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for rule in ccsa_audit::rules::all() {
            println!("{:<10} {}", rule.name, rule.help);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(names) = &args.rules {
        for name in names {
            if !ccsa_audit::rules::all().iter().any(|r| r.name == *name) {
                eprintln!("ccsa-audit: unknown rule {name:?} (see --list)");
                return ExitCode::from(2);
            }
        }
    }
    let workspace = match Workspace::discover(&args.root) {
        Ok(ws) => ws,
        Err(msg) => {
            eprintln!("ccsa-audit: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut allowlist = match &args.allowlist {
        None => Allowlist::default(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ccsa-audit: read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Allowlist::parse(&text) {
                Ok(a) => a,
                Err((line, msg)) => {
                    eprintln!("ccsa-audit: {}:{line}: {msg}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let (findings, suppressed) = run(&workspace, &mut allowlist, args.rules.as_deref());
    for finding in &findings {
        println!("{finding}");
    }
    // Stale allowlist entries only count against a full run — a
    // `--rules` subset legitimately leaves other rules' entries unused.
    let stale = if args.rules.is_none() {
        allowlist.unused()
    } else {
        Vec::new()
    };
    for entry in &stale {
        eprintln!(
            "ccsa-audit: stale allowlist entry at line {}: {} {} {} — no finding matches; remove it",
            entry.source_line,
            entry.rule,
            entry.path,
            entry.line.map_or("*".to_string(), |l| l.to_string()),
        );
    }
    eprintln!(
        "ccsa-audit: {} file(s), {} finding(s), {} suppressed, {} stale allowlist entr(ies)",
        workspace.files.len(),
        findings.len(),
        suppressed,
        stale.len()
    );
    if findings.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
