//! Self-tests over the seeded-violation fixtures: every rule must fire
//! on its fixture tree, the clean tree must stay silent, and the real
//! workspace must audit clean with no allowlist. Together these prove
//! the rules detect what they claim to (no silently-dead lints) and
//! that the repository actually upholds its own invariants.

use std::path::{Path, PathBuf};

use ccsa_audit::{run, Allowlist, Workspace};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Runs the named rule (alone) over a fixture tree with an empty
/// allowlist and returns its findings.
fn findings_for(fixture: &str, rule: &str) -> Vec<ccsa_audit::Finding> {
    let ws = Workspace::discover(&fixture_root(fixture))
        .unwrap_or_else(|e| panic!("discover fixture {fixture}: {e}"));
    assert!(
        !ws.files.is_empty(),
        "fixture {fixture} discovered no files"
    );
    let mut allow = Allowlist::default();
    let (live, suppressed) = run(&ws, &mut allow, Some(&[rule.to_string()]));
    assert_eq!(suppressed, 0);
    live
}

#[test]
fn safety_fixture_fires() {
    let f = findings_for("safety", "safety");
    assert!(!f.is_empty(), "safety rule missed its seeded violation");
    assert!(f.iter().all(|x| x.rule == "safety"));
}

#[test]
fn ordering_fixture_fires() {
    let f = findings_for("ordering", "ordering");
    assert!(!f.is_empty(), "ordering rule missed its seeded violation");
    assert!(f.iter().all(|x| x.rule == "ordering"));
}

#[test]
fn ieee_fixture_fires_on_both_patterns() {
    let f = findings_for("ieee", "ieee");
    assert!(
        f.len() >= 2,
        "ieee rule must flag the zero-skip AND the NaN mask, got {f:?}"
    );
    assert!(f.iter().any(|x| x.message.contains("zero comparison")));
    assert!(f.iter().any(|x| x.message.contains("is_nan")));
}

#[test]
fn lockorder_fixture_fires() {
    let f = findings_for("lockorder", "lockorder");
    assert!(!f.is_empty(), "lockorder rule missed the AB-BA cycle");
    assert!(f.iter().all(|x| x.rule == "lockorder"));
}

#[test]
fn metrics_fixture_fires_on_both_patterns() {
    let f = findings_for("metrics", "metrics");
    assert!(
        f.iter().any(|x| x.message.contains("name")),
        "bad-name violation missed: {f:?}"
    );
    assert!(
        f.iter().filter(|x| x.message.contains("declared")).count() >= 2,
        "duplicate declaration must be flagged at every site: {f:?}"
    );
}

#[test]
fn verbs_fixture_fires_both_ways() {
    let f = findings_for("verbs", "verbs");
    assert!(
        f.iter()
            .any(|x| x.path.contains("gateway") && x.message.contains("missing")),
        "ungated mutating verb missed: {f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.path.contains("fleet") && x.message.contains("stale")),
        "stale gate entry missed: {f:?}"
    );
}

#[test]
fn unwrap_fixture_fires() {
    let f = findings_for("unwrap", "unwrap");
    assert!(
        f.len() >= 2,
        "unwrap rule must flag both unwrap() and expect(), got {f:?}"
    );
    assert!(f.iter().all(|x| x.rule == "unwrap"));
}

#[test]
fn pool_fixture_fires_on_all_three_patterns() {
    let f = findings_for("pool", "pool");
    assert_eq!(
        f.len(),
        3,
        "pool rule must flag vec![0.0], Vec::with_capacity and .to_vec() \
         while honouring the pool-exempt site, got {f:?}"
    );
    assert!(f.iter().all(|x| x.rule == "pool"));
}

#[test]
fn clean_fixture_is_silent_across_all_rules() {
    let ws = Workspace::discover(&fixture_root("clean")).expect("discover clean fixture");
    let mut allow = Allowlist::default();
    let (live, suppressed) = run(&ws, &mut allow, None);
    assert!(live.is_empty(), "clean fixture flagged: {live:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn the_real_workspace_audits_clean() {
    // CARGO_MANIFEST_DIR is crates/audit; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let ws = Workspace::discover(&root).expect("discover workspace");
    assert!(
        ws.files.len() > 50,
        "workspace discovery looks wrong: {} files",
        ws.files.len()
    );
    let allow_path = root.join("audit.allow");
    let mut allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text).expect("audit.allow parses"),
        Err(_) => Allowlist::default(),
    };
    let (live, _suppressed) = run(&ws, &mut allow, None);
    assert!(
        live.is_empty(),
        "the workspace no longer audits clean:\n{}",
        live.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let stale = allow.unused();
    assert!(
        stale.is_empty(),
        "stale audit.allow entries (lines {:?})",
        stale.iter().map(|e| e.source_line).collect::<Vec<_>>()
    );
}
