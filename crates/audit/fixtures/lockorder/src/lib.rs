//! Seeded violation: two functions acquiring the same pair of locks in
//! opposite orders — the AB-BA deadlock shape the `lockorder` rule's
//! acquisition graph must report as a cycle.

use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.first.lock().expect("first poisoned");
        let b = self.second.lock().expect("second poisoned");
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.second.lock().expect("second poisoned");
        let a = self.first.lock().expect("first poisoned");
        *a - *b
    }
}
