//! Seeded violations: the exact zero-skip and NaN-masking patterns the
//! `ieee` rule regression-proofs against reappearing in the kernels.

pub fn scale(a: &[f32], out: &mut [f32]) {
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        if x.is_nan() {
            continue;
        }
        out[i] = x * 2.0;
    }
}
