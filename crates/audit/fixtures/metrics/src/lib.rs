//! Seeded violations: one `ccsa_*` literal that is not a legal
//! Prometheus metric name, and one declared at two different sites.

pub fn register(families: &mut Vec<(String, f64)>) {
    families.push(("ccsa_fixture_bad-name".to_string(), 1.0));
    families.push(("ccsa_fixture_dup_total".to_string(), 1.0));
}

pub fn register_again(families: &mut Vec<(String, f64)>) {
    families.push(("ccsa_fixture_dup_total".to_string(), 2.0));
}
