//! Seeded violation: the gate list is missing `reload_routes`, leaving
//! a mutating verb remotely callable.

const LOOPBACK_GATED_VERBS: &[&str] = &["shutdown"];

pub fn gated(verb: &str) -> bool {
    LOOPBACK_GATED_VERBS.contains(&verb)
}
