//! Seeded violation: `restart` is gated but not mutating — a stale or
//! misspelled gate entry.

const LOOPBACK_GATED_VERBS: &[&str] = &["shutdown", "reload_routes", "restart"];

pub fn gated(verb: &str) -> bool {
    LOOPBACK_GATED_VERBS.contains(&verb)
}
