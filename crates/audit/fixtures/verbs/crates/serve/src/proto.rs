//! Fixture source of truth: two mutating verbs.

pub const MUTATING_VERBS: &[&str] = &["shutdown", "reload_routes"];
