//! Seeded violations: raw f32 buffer allocations in a tape forward
//! path — the allocation-churn patterns the `pool` rule keeps out of
//! the pooled steady state.

pub fn relu_forward(x: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    for (o, &v) in out.iter_mut().zip(x) {
        *o = v.max(0.0);
    }
    out
}

pub fn concat_forward(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out: Vec<f32> = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

pub fn identity_backward(upstream: &[f32]) -> Vec<f32> {
    upstream.to_vec()
}

pub fn offsets(sources: &[usize]) -> Vec<usize> {
    // pool-exempt: usize offset table, not an f32 tensor buffer.
    let mut out = Vec::with_capacity(sources.len() + 1);
    let mut total = 0usize;
    for &s in sources {
        out.push(total);
        total += s;
    }
    out.push(total);
    out
}
