//! A fixture that violates nothing: the audit must report zero
//! findings over this tree.

pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
