//! Seeded violation: an `unsafe` block with no `// SAFETY:` comment.

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    unsafe { *v.get_unchecked(0) }
}
