//! Seeded violation: an explicit `Ordering::SeqCst` with no
//! justification comment on or above the line.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static BUMPS: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    BUMPS.fetch_add(1, Ordering::SeqCst)
}
