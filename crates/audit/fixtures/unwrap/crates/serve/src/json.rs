//! Seeded violations: `unwrap()` and `expect()` on an untrusted
//! request-parse path, where malformed input must become a typed error.

pub fn parse_len(text: &str) -> usize {
    text.trim().parse::<usize>().unwrap()
}

pub fn first(bytes: &[u8]) -> u8 {
    bytes.first().copied().expect("empty payload")
}
