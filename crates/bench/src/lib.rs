//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §4 for the index). All binaries accept:
//!
//! * `--scale quick|default|full` — experiment size (defaults to
//!   `default`; `full` approaches paper-scale and can take a long time);
//! * `--seed N` — master seed (default 42);
//! * `--threads N` — worker threads (default: all cores, capped at 8).
//!
//! Output is aligned text with a `paper=` reference column wherever the
//! paper reports a number, so shape comparisons are immediate.

use std::collections::HashMap;

use ccsa_corpus::{CorpusConfig, JudgeConfig, ProblemDataset, ProblemSpec, ProblemTag};
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::pair::PairConfig;
use ccsa_model::pipeline::{Pipeline, PipelineConfig};
use ccsa_model::trainer::TrainConfig;
use ccsa_nn::gcn::{Activation, GcnConfig};
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

/// Experiment size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-test scale (seconds end to end, even in debug builds) — used
    /// by the pipeline smoke test that pins the sweep path.
    Tiny,
    /// Smoke-test scale (tens of seconds end to end).
    Quick,
    /// The documented default (minutes).
    Default,
    /// Paper-approaching scale (tens of minutes to hours).
    Full,
}

impl Scale {
    /// Submissions generated per problem.
    pub fn submissions(self) -> usize {
        match self {
            Scale::Tiny => 32,
            Scale::Quick => 48,
            Scale::Default => 110,
            Scale::Full => 300,
        }
    }

    /// Training pairs sampled per model.
    pub fn pairs(self) -> usize {
        match self {
            Scale::Tiny => 200,
            Scale::Quick => 500,
            Scale::Default => 900,
            Scale::Full => 3000,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Quick => 6,
            Scale::Default => 6,
            Scale::Full => 10,
        }
    }

    /// Tree-LSTM/GCN hidden width.
    pub fn hidden(self) -> usize {
        match self {
            Scale::Tiny => 8,
            Scale::Quick => 12,
            Scale::Default => 16,
            Scale::Full => 100,
        }
    }

    /// Embedding dimensionality λ.
    pub fn embed(self) -> usize {
        match self {
            Scale::Tiny => 8,
            Scale::Quick => 12,
            Scale::Default => 16,
            Scale::Full => 120,
        }
    }

    /// Judge test cases per submission.
    pub fn test_cases(self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Quick => 2,
            Scale::Default => 3,
            Scale::Full => 5,
        }
    }
}

/// Parsed command-line options shared by all binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            scale: Scale::Default,
            seed: 42,
            threads: 0,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale = match args.get(i).map(String::as_str) {
                        Some("tiny") => Scale::Tiny,
                        Some("quick") => Scale::Quick,
                        Some("default") => Scale::Default,
                        Some("full") => Scale::Full,
                        other => usage_abort(&format!("bad --scale {other:?}")),
                    };
                }
                "--seed" => {
                    i += 1;
                    cli.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage_abort("bad --seed"));
                }
                "--threads" => {
                    i += 1;
                    cli.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage_abort("bad --threads"));
                }
                "--help" | "-h" => usage_abort(""),
                other => usage_abort(&format!("unknown argument '{other}'")),
            }
            i += 1;
        }
        cli
    }

    /// Corpus settings for this scale/seed.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            submissions_per_problem: self.scale.submissions(),
            judge: JudgeConfig {
                test_cases: self.scale.test_cases(),
                ..JudgeConfig::default()
            },
            calibration_sample: 12,
            seed: self.seed,
        }
    }

    /// The standard tree-LSTM encoder at this scale (3-layer alternating —
    /// the paper's best architecture).
    pub fn treelstm_config(&self) -> TreeLstmConfig {
        TreeLstmConfig {
            embed_dim: self.scale.embed(),
            hidden: self.scale.hidden(),
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        }
    }

    /// The GCN baseline at this scale (6 layers as tuned in §V-C).
    pub fn gcn_config(&self) -> GcnConfig {
        GcnConfig {
            embed_dim: self.scale.embed(),
            hidden: self.scale.hidden(),
            layers: 6,
            activation: Activation::Relu,
        }
    }

    /// The standard pipeline around a given encoder.
    pub fn pipeline(&self, encoder: EncoderConfig) -> Pipeline {
        Pipeline::new(PipelineConfig {
            corpus: self.corpus_config(),
            encoder,
            pairs: PairConfig {
                max_pairs: self.scale.pairs(),
                symmetric: true,
                exclude_self: true,
            },
            train: TrainConfig {
                epochs: self.scale.epochs(),
                batch_size: 32,
                lr: 0.01,
                clip: 5.0,
                threads: self.threads,
                seed: self.seed,
            },
            test_fraction: 0.3,
            seed: self.seed,
        })
    }
}

fn usage_abort(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--scale tiny|quick|default|full] [--seed N] [--threads N]");
    std::process::exit(2);
}

/// A per-process cache of generated datasets so multi-model experiments
/// judge each problem corpus once.
#[derive(Default)]
pub struct DatasetCache {
    map: HashMap<String, ProblemDataset>,
}

impl DatasetCache {
    /// An empty cache.
    pub fn new() -> DatasetCache {
        DatasetCache::default()
    }

    /// Generates (or returns the cached) dataset for a curated problem.
    pub fn curated(&mut self, tag: ProblemTag, config: &CorpusConfig) -> &ProblemDataset {
        let key = format!("{tag}-{}-{}", config.submissions_per_problem, config.seed);
        self.map.entry(key).or_insert_with(|| {
            eprintln!(
                "[corpus] generating problem {tag} ({} submissions)",
                config.submissions_per_problem
            );
            ProblemDataset::generate(ProblemSpec::curated(tag), config)
                .unwrap_or_else(|e| panic!("corpus generation failed for {tag}: {e}"))
        })
    }

    /// Generates (or returns the cached) MP pool dataset.
    pub fn mp_pool(
        &mut self,
        problems: u16,
        per_problem: usize,
        config: &CorpusConfig,
    ) -> Vec<ProblemDataset> {
        (0..problems)
            .map(|i| {
                let key = format!("mp{i}-{per_problem}-{}", config.seed);
                self.map
                    .entry(key)
                    .or_insert_with(|| {
                        let spec = ProblemSpec::mp(i, config.seed);
                        let cfg = CorpusConfig {
                            submissions_per_problem: per_problem,
                            ..config.clone()
                        };
                        ProblemDataset::generate(spec, &cfg)
                            .unwrap_or_else(|e| panic!("corpus generation failed for MP{i}: {e}"))
                    })
                    .clone()
            })
            .collect()
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "─".repeat(width));
}

/// Formats an accuracy as `0.xxx`.
pub fn fmt_acc(a: f64) -> String {
    format!("{a:.3}")
}

/// Prints the standard experiment header.
pub fn header(title: &str, cli: &Cli) {
    rule(78);
    println!("{title}");
    println!(
        "scale={:?}  seed={}  threads={}",
        cli.scale,
        cli.seed,
        if cli.threads == 0 {
            "auto".to_string()
        } else {
            cli.threads.to_string()
        }
    );
    rule(78);
}
