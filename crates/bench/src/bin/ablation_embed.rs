//! Ablation: embedding dimensionality λ (DESIGN.md §5.4).
//!
//! The paper fixes λ = 120 without a sweep; this ablation asks how much
//! the node-embedding width actually matters on a fixed problem, holding
//! the rest of the architecture constant. Expectation: accuracy saturates
//! at small λ — the vocabulary has only 67 kinds, so the embedding is
//! over-parameterised long before 120.

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

fn main() {
    let cli = Cli::parse();
    header(
        "Ablation — embedding dimensionality λ (problem E, alternating 3-layer)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let ds = cache.curated(ProblemTag::E, &corpus).clone();

    println!("{:>6} {:>10} {:>12}", "λ", "accuracy", "#params");
    rule(32);
    for embed in [2usize, 4, 8, 16, 32, 64, 120] {
        let config = TreeLstmConfig {
            embed_dim: embed,
            hidden: cli.scale.hidden(),
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let pipeline = cli.pipeline(EncoderConfig::TreeLstm(config.clone()));
        let outcome = pipeline.run_on_dataset(ds.clone());
        // Count parameters for the table.
        let mut params = ccsa_nn::param::Params::new();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let _ = ccsa_model::comparator::Comparator::new(
            &EncoderConfig::TreeLstm(config),
            &mut params,
            &mut rng,
        );
        println!(
            "{embed:>6} {:>10} {:>12}",
            fmt_acc(outcome.test_accuracy),
            params.scalar_count()
        );
    }
    rule(32);
    println!("expectation: saturation well below the paper's λ = 120 (vocabulary is 67 kinds).");
}
