//! Figure 3 — model evaluation and generalisation, tree-LSTM vs GCN.
//!
//! For every training dataset (problems A–I plus the mixed MP pool) and
//! both encoders, reports:
//!
//! * the *line value*: accuracy on disjoint submissions of the training
//!   problem itself;
//! * the *box plot*: the five-number summary of accuracies over every
//!   other problem (cross-problem generalisation).
//!
//! Paper reference points: single-problem accuracy up to 84 %, MP model
//! 73 % on its own disjoint split; tree-LSTM above GCN everywhere.

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::{ProblemDataset, ProblemTag};
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::metrics::BoxStats;

fn main() {
    let cli = Cli::parse();
    header(
        "Figure 3 — generalisation of tree-LSTM vs GCN (lines + box plots)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();

    // Materialise every curated dataset once.
    let datasets: Vec<ProblemDataset> = ProblemTag::ALL
        .iter()
        .map(|&t| cache.curated(t, &corpus).clone())
        .collect();
    // MP pool: scaled-down version of the paper's 100×100.
    let (mp_problems, mp_per) = match cli.scale {
        ccsa_bench::Scale::Tiny => (4u16, 12usize),
        ccsa_bench::Scale::Quick => (6, 16),
        ccsa_bench::Scale::Default => (12, 24),
        ccsa_bench::Scale::Full => (100, 100),
    };
    let mp_datasets = cache.mp_pool(mp_problems, mp_per, &corpus);

    for encoder in [
        EncoderConfig::TreeLstm(cli.treelstm_config()),
        EncoderConfig::Gcn(cli.gcn_config()),
    ] {
        println!("\n== encoder: {} ==", encoder.name());
        println!(
            "{:<6} {:>7}   {:>7} {:>7} {:>7} {:>7} {:>7}   (cross-problem box plot)",
            "train", "line", "min", "q1", "med", "q3", "max"
        );
        rule(78);
        let pipeline = cli.pipeline(encoder.clone());

        for (k, ds) in datasets.iter().enumerate() {
            let tag = ProblemTag::ALL[k];
            let outcome = pipeline.run_on_dataset(ds.clone());
            let mut cross = Vec::new();
            for (j, other) in datasets.iter().enumerate() {
                if j == k {
                    continue;
                }
                cross.push(pipeline.evaluate_cross(&outcome.model, other).accuracy);
            }
            let b = BoxStats::of(&cross);
            println!(
                "{:<6} {:>7}   {:>7} {:>7} {:>7} {:>7} {:>7}",
                tag.to_string(),
                fmt_acc(outcome.test_accuracy),
                fmt_acc(b.min),
                fmt_acc(b.q1),
                fmt_acc(b.median),
                fmt_acc(b.q3),
                fmt_acc(b.max),
            );
        }

        // MP: train on the pool, line = pooled disjoint submissions,
        // box = accuracies on the nine curated problems.
        let (model, test_pairs, _report) = pipeline.train_on_pool(&mp_datasets);
        let mut all_subs = Vec::new();
        for ds in &mp_datasets {
            all_subs.extend(ds.submissions.iter().cloned());
        }
        let flat: Vec<ccsa_model::pair::Pair> = test_pairs.into_iter().flatten().collect();
        let line = ccsa_model::trainer::evaluate(
            &model.comparator,
            &model.params,
            &all_subs,
            &flat,
            cli.threads,
        )
        .accuracy;
        let cross: Vec<f64> = datasets
            .iter()
            .map(|ds| pipeline.evaluate_cross(&model, ds).accuracy)
            .collect();
        let b = BoxStats::of(&cross);
        println!(
            "{:<6} {:>7}   {:>7} {:>7} {:>7} {:>7} {:>7}",
            "MP",
            fmt_acc(line),
            fmt_acc(b.min),
            fmt_acc(b.q1),
            fmt_acc(b.median),
            fmt_acc(b.q3),
            fmt_acc(b.max),
        );
    }
    rule(78);
    println!(
        "paper: tree-LSTM single-problem lines ≈ 0.73–0.84 (best E), MP line ≈ 0.73;\n\
         cross-problem boxes up to 0.80–0.84; GCN best ≈ 0.685 — tree-LSTM wins throughout."
    );
}
