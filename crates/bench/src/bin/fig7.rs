//! Figure 7 — t-SNE of learned node embeddings and code embeddings.
//!
//! (a) projects the trained λ-dimensional node-kind embeddings to 2-D,
//! tagged with the paper's colour categories (operations, expressions,
//! statements, literals, support);
//! (b) projects code vectors of submissions from three different problems.
//!
//! Prints both point sets as TSV (x, y, label) and reports the quantitative
//! analogue of the paper's visual claim: code embeddings of the same
//! problem sit closer together than across problems.

use ccsa_bench::{header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_cppast::NodeKind;
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::tsne::{tsne, TsneConfig};
use ccsa_nn::param::Ctx;
use ccsa_tensor::Tape;

fn main() {
    let cli = Cli::parse();
    header("Figure 7 — t-SNE of node and code embeddings", &cli);
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let ds = cache.curated(ProblemTag::E, &corpus).clone();

    // Train a model so embeddings are learned, not random.
    let pipeline = cli.pipeline(EncoderConfig::TreeLstm(cli.treelstm_config()));
    let outcome = pipeline.run_on_dataset(ds);
    let model = &outcome.model;

    // (a) Node embeddings: rows of the learned table.
    let table = model.params.get("tree.emb");
    let rows: Vec<Vec<f32>> = (0..ccsa_cppast::VOCAB_SIZE)
        .map(|k| table.row(k).as_slice().to_vec())
        .collect();
    let layout = tsne(
        &rows,
        &TsneConfig {
            perplexity: 8.0,
            iterations: 300,
            seed: cli.seed,
            ..TsneConfig::default()
        },
    );
    println!("\n(a) node embeddings — x<TAB>y<TAB>kind<TAB>category");
    rule(60);
    for (k, point) in layout.iter().enumerate() {
        let kind = NodeKind::from_id(k as u16);
        println!(
            "{:.3}\t{:.3}\t{kind}\t{}",
            point[0],
            point[1],
            kind.category()
        );
    }

    // (b) Code embeddings for three problems, 30 submissions each.
    let tags = [ProblemTag::A, ProblemTag::F, ProblemTag::H];
    let mut codes = Vec::new();
    let mut labels = Vec::new();
    for &tag in &tags {
        let ds = cache.curated(tag, &corpus).clone();
        for sub in ds.submissions.iter().take(30) {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &model.params);
            let z = match &model.comparator.encoder {
                ccsa_model::comparator::Encoder::TreeLstm(e) => e.encode(&ctx, &sub.graph),
                ccsa_model::comparator::Encoder::Gcn(e) => e.encode(&ctx, &sub.graph),
            };
            codes.push(z.value().as_slice().to_vec());
            labels.push(tag);
        }
    }
    let layout = tsne(
        &codes,
        &TsneConfig {
            perplexity: 12.0,
            iterations: 300,
            seed: cli.seed,
            ..TsneConfig::default()
        },
    );
    println!("\n(b) code embeddings — x<TAB>y<TAB>problem");
    rule(60);
    for (point, tag) in layout.iter().zip(&labels) {
        println!("{:.3}\t{:.3}\t{tag}", point[0], point[1]);
    }

    // Quantitative cluster check (the paper argues problems separate).
    let centroid = |tag: ProblemTag| -> [f64; 2] {
        let pts: Vec<&[f64; 2]> = layout
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == tag)
            .map(|(p, _)| p)
            .collect();
        let n = pts.len() as f64;
        [
            pts.iter().map(|p| p[0]).sum::<f64>() / n,
            pts.iter().map(|p| p[1]).sum::<f64>() / n,
        ]
    };
    let dist = |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
    let mut intra = 0.0;
    for (&tag, point) in labels.iter().zip(&layout) {
        intra += dist(*point, centroid(tag)) / layout.len() as f64;
    }
    let c: Vec<[f64; 2]> = tags.iter().map(|&t| centroid(t)).collect();
    let inter = (dist(c[0], c[1]) + dist(c[1], c[2]) + dist(c[0], c[2])) / 3.0;
    rule(60);
    println!(
        "cluster check: mean intra-problem distance {intra:.2}, mean inter-centroid {inter:.2}\n\
         (paper claim: problems form distinctly separated clusters — expect inter > intra)"
    );
}
