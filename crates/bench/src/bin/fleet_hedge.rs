//! Fleet hedging benchmark: does a p99-deadline hedge actually cut the
//! tail when one replica straggles?
//!
//! The rig: two identical in-process gateways; one is fronted by a
//! delay proxy that holds every response for a fixed straggler delay
//! (the classic "one slow machine" tail scenario the fleet's hedging is
//! for). The same sticky workload — half its client keys land on the
//! straggler — runs twice through a fleet: once with hedging off, once
//! with the hedge deadline set well below the straggler delay (as an
//! operator would derive it from the healthy replicas' p99). First
//! answer wins; the straggler's late responses are discarded.
//!
//! Acceptance (CI-gated): hedging must cut the end-to-end p99 to at
//! most [`HEDGE_P99_RATIO`] of the unhedged run — the bench prints
//! `hedge_p99_improved: PASS` and writes `BENCH_fleet.json`.
//!
//! ```sh
//! cargo run --release -p ccsa-bench --bin fleet_hedge -- --scale quick
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_fleet::{Fleet, FleetConfig, ReplicaConfig, SpawnedFleet};
use ccsa_gateway::{Gateway, GatewayConfig, Route, Router};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};

/// How long the straggler proxy sits on every response.
const STRAGGLE: Duration = Duration::from_millis(25);
/// The hedge deadline — far below the straggler delay, a bit above the
/// healthy replica's typical latency (how an operator derives it from
/// the fleet's own p99 stats).
const HEDGE_AFTER: Duration = Duration::from_millis(8);
/// Hedging must cut p99 to at most this fraction of the unhedged run.
const HEDGE_P99_RATIO: f64 = 0.8;

const FAST_SRC: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
const SLOW_SRC: &str = "int main() { int n; cin >> n; long long s = 0; \
                        for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                        cout << s; return 0; }";

fn tiny_engine(seed: u64) -> Arc<ServeEngine> {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 6,
        hidden: 6,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(
        &config,
        &mut params,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
    );
    let mut registry = ModelRegistry::new();
    registry.register("default", 1, TrainedModel { comparator, params });
    Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 512,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    ))
}

fn spawn_gateway(seed: u64) -> ccsa_gateway::SpawnedGateway {
    let router = Router::new(
        vec![Route {
            selector: ModelSelector {
                name: Some("default".into()),
                version: Some(1),
            },
            weight: 1.0,
        }],
        None,
    )
    .expect("static table is valid");
    Gateway::spawn(
        tiny_engine(seed),
        router,
        GatewayConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            ..GatewayConfig::default()
        },
    )
    .expect("gateway spawn")
}

/// A line-oriented TCP proxy that relays requests immediately but sits
/// on every response for `delay` — a replica whose *answers* straggle
/// while its socket stays perfectly healthy.
fn spawn_delay_proxy(upstream: SocketAddr, delay: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(client) = stream else { return };
            std::thread::spawn(move || {
                let Ok(up) = TcpStream::connect(upstream) else {
                    return;
                };
                let _ = up.set_nodelay(true);
                let _ = client.set_nodelay(true);
                let Ok(up_clone) = up.try_clone() else { return };
                let Ok(client_clone) = client.try_clone() else {
                    return;
                };
                let mut client_reader = BufReader::new(client_clone);
                let mut client_writer = client;
                let mut up_reader = BufReader::new(up_clone);
                let mut up_writer = up;
                loop {
                    let mut line = String::new();
                    if client_reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    if up_writer
                        .write_all(line.as_bytes())
                        .and_then(|()| up_writer.flush())
                        .is_err()
                    {
                        return;
                    }
                    let mut response = String::new();
                    if up_reader.read_line(&mut response).unwrap_or(0) == 0 {
                        return;
                    }
                    std::thread::sleep(delay);
                    if client_writer
                        .write_all(response.as_bytes())
                        .and_then(|()| client_writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            });
        }
    });
    addr
}

fn spawn_fleet(replicas: Vec<ReplicaConfig>, hedge: Option<Duration>) -> SpawnedFleet {
    Fleet::spawn(
        replicas,
        FleetConfig {
            hedge_after: hedge,
            probe_interval: None, // both replicas stay on the ring
            forward_timeout: Duration::from_secs(5),
            ..FleetConfig::default()
        },
    )
    .expect("fleet spawn")
}

/// Runs the sticky workload sequentially and returns per-request
/// latencies in milliseconds.
fn run_workload(addr: SocketAddr, requests: usize) -> Vec<f64> {
    let mut stream = TcpStream::connect(addr).expect("fleet connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let line = Json::obj(vec![
            ("op", Json::str("compare")),
            ("client", Json::str(format!("client-{i}"))),
            ("first", Json::str(SLOW_SRC)),
            ("second", Json::str(FAST_SRC)),
        ])
        .to_string();
        let start = Instant::now();
        writeln!(stream, "{line}").expect("write");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(
            response.contains("\"ok\":true"),
            "request {i} failed: {response}"
        );
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let ix = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[ix]
}

fn fleet_counter(addr: SocketAddr, name: &str) -> f64 {
    let mut stream = TcpStream::connect(addr).expect("stats connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(b"{\"op\":\"fleet\"}\n").expect("write");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read");
    ccsa_serve::json::parse(&response)
        .expect("fleet stats json")
        .get(name)
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn main() {
    let cli = Cli::parse();
    header(
        "fleet_hedge — tail hedging through the fleet vs a straggling replica",
        &cli,
    );

    let requests = match cli.scale {
        Scale::Tiny => 80,
        Scale::Quick => 200,
        Scale::Default => 500,
        Scale::Full => 1000,
    };

    let fast_gw = spawn_gateway(cli.seed);
    let slow_gw = spawn_gateway(cli.seed);
    let proxy_addr = spawn_delay_proxy(slow_gw.addr(), STRAGGLE);
    let replicas = vec![
        ReplicaConfig {
            id: "gw-straggler".to_string(),
            addr: proxy_addr,
            http_addr: slow_gw.http_addr().expect("http addr"),
        },
        ReplicaConfig {
            id: "gw-fast".to_string(),
            addr: fast_gw.addr(),
            http_addr: fast_gw.http_addr().expect("http addr"),
        },
    ];
    println!(
        "two replicas, one behind a {:.0} ms delay proxy; {requests} sticky requests per run, \
         hedge deadline {:.0} ms\n",
        STRAGGLE.as_secs_f64() * 1e3,
        HEDGE_AFTER.as_secs_f64() * 1e3
    );

    // Warm both engines directly so the timed runs measure transport +
    // straggle, not first-encode cost.
    for gw in [&fast_gw, &slow_gw] {
        let mut warm = ccsa_gateway::GatewayClient::connect(gw.addr()).expect("warm connect");
        warm.compare(SLOW_SRC, FAST_SRC, Some("warm"))
            .expect("warm compare");
    }

    // Run 1: hedging off — straggler keys eat the full delay.
    let fleet_off = spawn_fleet(replicas.clone(), None);
    let mut off = run_workload(fleet_off.addr(), requests);
    fleet_off.shutdown_and_join().expect("fleet drain");
    off.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Run 2: hedging on — the identical workload.
    let fleet_on = spawn_fleet(replicas.clone(), Some(HEDGE_AFTER));
    let mut on = run_workload(fleet_on.addr(), requests);
    let hedges = fleet_counter(fleet_on.addr(), "hedges");
    let hedge_wins = fleet_counter(fleet_on.addr(), "hedge_wins");
    fleet_on.shutdown_and_join().expect("fleet drain");
    on.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let (off_p50, off_p99) = (percentile(&off, 0.50), percentile(&off, 0.99));
    let (on_p50, on_p99) = (percentile(&on, 0.50), percentile(&on, 0.99));
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "run", "p50 ms", "p99 ms", "hedges", "wins"
    );
    rule(60);
    println!(
        "{:<14} {off_p50:>9.2} {off_p99:>9.2} {:>9} {:>9}",
        "hedge off", 0, 0
    );
    println!(
        "{:<14} {on_p50:>9.2} {on_p99:>9.2} {:>9.0} {:>9.0}",
        "hedge on", hedges, hedge_wins
    );
    rule(60);

    let ratio = on_p99 / off_p99;
    let improved = ratio <= HEDGE_P99_RATIO && hedges >= 1.0 && hedge_wins >= 1.0;
    println!(
        "p99 with hedging is {:.0}% of the unhedged p99 (must be ≤ {:.0}%)",
        ratio * 100.0,
        HEDGE_P99_RATIO * 100.0
    );
    println!(
        "hedge_p99_improved: {}",
        if improved { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("fleet_hedge")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("requests_per_run", Json::num(requests as f64)),
        ("straggle_ms", Json::num(STRAGGLE.as_secs_f64() * 1e3)),
        ("hedge_after_ms", Json::num(HEDGE_AFTER.as_secs_f64() * 1e3)),
        ("p50_ms_hedge_off", Json::num(off_p50)),
        ("p99_ms_hedge_off", Json::num(off_p99)),
        ("p50_ms_hedge_on", Json::num(on_p50)),
        ("p99_ms_hedge_on", Json::num(on_p99)),
        ("p99_ratio", Json::num(ratio)),
        ("p99_ratio_ceiling", Json::num(HEDGE_P99_RATIO)),
        ("hedges", Json::num(hedges)),
        ("hedge_wins", Json::num(hedge_wins)),
        ("hedge_p99_improved", Json::Bool(improved)),
    ]);
    let path = "BENCH_fleet.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_fleet.json");
    println!("\nwrote {path}");

    fast_gw.shutdown_and_join().expect("gateway drain");
    slow_gw.shutdown_and_join().expect("gateway drain");
    if !improved {
        std::process::exit(1);
    }
}
