//! §VI-D pair-ordering ablation: one-way vs symmetric training pairs.
//!
//! Trains two models on the same total pair budget — one with only a
//! single ordering of each pair, one with both orderings — and compares
//! held-out accuracy. Paper finding: symmetric pairs help "marginally, up
//! to 2 %".

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pair::{sample_pairs, split_indices, PairConfig};
use ccsa_model::trainer::{evaluate, train};
use ccsa_nn::param::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse();
    header(
        "§VI-D — one-way vs symmetric pair ordering (equal pair budgets)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();

    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "problem", "one-way", "symmetric", "Δ"
    );
    rule(42);
    let mut deltas = Vec::new();
    for tag in [ProblemTag::A, ProblemTag::C, ProblemTag::E] {
        let ds = cache.curated(tag, &corpus).clone();
        let subs = &ds.submissions;
        let (train_ix, test_ix) = split_indices(subs.len(), 0.3, cli.seed);
        let budget = cli.scale.pairs();
        let test_pairs = sample_pairs(
            subs,
            &test_ix,
            &PairConfig {
                max_pairs: 600,
                symmetric: false,
                exclude_self: true,
            },
            cli.seed ^ 0xab1,
        );

        let accuracy_for = |symmetric: bool| -> f64 {
            let pairs = sample_pairs(
                subs,
                &train_ix,
                &PairConfig {
                    max_pairs: budget,
                    symmetric,
                    exclude_self: true,
                },
                cli.seed ^ 0xab2,
            );
            let encoder = EncoderConfig::TreeLstm(cli.treelstm_config());
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(cli.seed);
            let model = Comparator::new(&encoder, &mut params, &mut rng);
            let pipeline = cli.pipeline(encoder);
            train(&model, &mut params, subs, &pairs, &pipeline.config().train);
            evaluate(&model, &params, subs, &test_pairs, cli.threads).accuracy
        };

        let one_way = accuracy_for(false);
        let symmetric = accuracy_for(true);
        deltas.push(symmetric - one_way);
        println!(
            "{:<8} {:>10} {:>10} {:>+8.3}",
            tag.to_string(),
            fmt_acc(one_way),
            fmt_acc(symmetric),
            symmetric - one_way
        );
    }
    rule(42);
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("mean Δ = {mean:+.3}   (paper: symmetric pairs help marginally, up to +0.02)");
}
