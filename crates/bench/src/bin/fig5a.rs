//! Figure 5(a) — accuracy vs number of training submissions (problem A).
//!
//! Doubles the training-submission count from 32 upward at a fixed 75 %
//! pair ratio and a fixed held-out test set. Paper shape: steady
//! improvement that saturates beyond ~1000 submissions (diminishing
//! returns). The sweep's upper end follows `--scale` (paper: 4096).

use ccsa_bench::{fmt_acc, header, rule, Cli, Scale};
use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::pair::{sample_pairs, PairConfig};
use ccsa_model::trainer::{evaluate, train};
use ccsa_nn::param::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse();
    header(
        "Figure 5(a) — accuracy vs training submissions (problem A)",
        &cli,
    );

    let max_subs = match cli.scale {
        Scale::Tiny => 64usize,
        Scale::Quick => 128,
        Scale::Default => 256,
        Scale::Full => 4096,
    };
    let test_subs = 40usize;
    // One corpus holding the largest training set + a disjoint test set.
    let corpus = CorpusConfig {
        submissions_per_problem: max_subs + test_subs,
        ..cli.corpus_config()
    };
    eprintln!(
        "[corpus] generating {} submissions for A …",
        corpus.submissions_per_problem
    );
    let ds = ProblemDataset::generate(ProblemSpec::curated(ProblemTag::A), &corpus)
        .expect("corpus generation");
    let subs = &ds.submissions;
    let test_ix: Vec<usize> = (max_subs..subs.len()).collect();
    let test_pairs = sample_pairs(
        subs,
        &test_ix,
        &PairConfig {
            max_pairs: 600,
            symmetric: false,
            exclude_self: true,
        },
        cli.seed ^ 0xf1,
    );

    println!("{:>6} {:>10} {:>10}", "subs", "pairs", "accuracy");
    rule(30);
    let mut n = 32usize;
    while n <= max_subs {
        let train_ix: Vec<usize> = (0..n).collect();
        // 75 % of all unordered pairs, capped to keep full-scale tractable.
        let budget = ((n * (n - 1) / 2) as f64 * 0.75) as usize;
        let budget = budget.clamp(8, 6000);
        let pairs = sample_pairs(
            subs,
            &train_ix,
            &PairConfig {
                max_pairs: budget,
                symmetric: true,
                exclude_self: true,
            },
            cli.seed ^ n as u64,
        );
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(cli.seed);
        let encoder = EncoderConfig::TreeLstm(cli.treelstm_config());
        let model = ccsa_model::comparator::Comparator::new(&encoder, &mut params, &mut rng);
        let pipeline = cli.pipeline(encoder);
        train(&model, &mut params, subs, &pairs, &pipeline.config().train);
        let eval = evaluate(&model, &params, subs, &test_pairs, cli.threads);
        println!("{n:>6} {:>10} {:>10}", pairs.len(), fmt_acc(eval.accuracy));
        n *= 2;
    }
    rule(30);
    println!(
        "paper shape: accuracy climbs from ≈0.64 at 32 subs toward ≈0.77,\n\
         with diminishing returns past ~1000 submissions."
    );
}
