//! Training throughput benchmark: the fused per-batch training path
//! against the per-pair baseline, on the same workload.
//!
//! The fused path encodes *all* graphs of a worker shard's pairs in one
//! level-fused `encode_batch` call per tape ([`ccsa_model::trainer::TrainPath::FusedBatch`]);
//! the baseline builds one tape per pair and runs the node-by-node cell
//! ([`ccsa_model::trainer::TrainPath::PerPair`]). Both run single-threaded
//! here so the number measures the path itself, not scheduling.
//!
//! Before timing, the two paths are parity-checked on one mini-batch:
//! loss and every parameter gradient must agree to ≤ 1e-5 (relative for
//! gradients — the two paths sum identical per-pair contributions in
//! different orders). The results land in `BENCH_train.json`.
//!
//! ```sh
//! cargo run --release --bin train_throughput -- --scale quick
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_corpus::{ProblemDataset, ProblemSpec, ProblemTag};
use ccsa_cppast::AstGraph;
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pair::{sample_pairs, Pair, PairConfig};
use ccsa_model::trainer::{train_with_path, TrainConfig, TrainPath};
use ccsa_nn::param::{Ctx, GradStore, Params};
use ccsa_serve::json::Json;
use ccsa_tensor::Tape;

const BATCH: usize = 16;

/// Loss + summed parameter gradients for one mini-batch, through either
/// path — the reference computation the parity gate compares.
fn batch_loss_and_grads(
    model: &Comparator,
    params: &Params,
    subs: &[ccsa_corpus::Submission],
    batch: &[Pair],
    fused: bool,
) -> (f64, GradStore) {
    let run_tape = |pairs: &[Pair]| -> (f64, GradStore) {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, params);
        let graphs: Vec<(&AstGraph, &AstGraph)> = pairs
            .iter()
            .map(|p| (&subs[p.a].graph, &subs[p.b].graph))
            .collect();
        let logits = if fused {
            model.logit_batch(&ctx, &graphs)
        } else {
            graphs
                .iter()
                .map(|&(a, b)| model.logit(&ctx, a, b))
                .collect()
        };
        let losses: Vec<_> = logits
            .into_iter()
            .zip(pairs)
            .map(|(logit, pair)| logit.sum().bce_with_logits(pair.label))
            .collect();
        let total = ctx.tape.add_n(&losses);
        let loss = total.value().item() as f64;
        let grads = tape.backward(total);
        (loss, ctx.grads(&grads))
    };
    if fused {
        run_tape(batch)
    } else {
        // One tape per pair, gradients summed — the historical baseline.
        let mut loss = 0.0;
        let mut grads = GradStore::new();
        for pair in batch {
            let (l, g) = run_tape(std::slice::from_ref(pair));
            loss += l;
            grads.merge(g);
        }
        (loss, grads)
    }
}

fn main() {
    let cli = Cli::parse();
    header(
        "train_throughput — fused-batch training vs per-pair baseline",
        &cli,
    );

    let dataset =
        ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &cli.corpus_config())
            .expect("corpus generation");
    let subs = &dataset.submissions;
    let n_pairs = match cli.scale {
        Scale::Tiny => 4 * BATCH,
        Scale::Quick => 10 * BATCH,
        Scale::Default => 20 * BATCH,
        Scale::Full => 60 * BATCH,
    };
    let pair_cfg = PairConfig {
        max_pairs: n_pairs,
        symmetric: true,
        exclude_self: true,
    };
    let pairs = sample_pairs(
        subs,
        &(0..subs.len()).collect::<Vec<_>>(),
        &pair_cfg,
        cli.seed,
    );
    let epochs = match cli.scale {
        Scale::Tiny => 1,
        Scale::Quick => 2,
        Scale::Default => 3,
        Scale::Full => 4,
    };
    // The paper's best architecture shape at this scale: 3-layer
    // alternating — every fused code path (up/down, gate fusion,
    // incremental gather) is on the clock.
    let encoder = EncoderConfig::TreeLstm(cli.treelstm_config());
    let fresh_model = || {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x0de1);
        let model = Comparator::new(&encoder, &mut params, &mut rng);
        (model, params)
    };
    println!(
        "workload: {} pairs over {} submissions, batch {BATCH}, {epochs} timed epoch(s), 1 thread\n",
        pairs.len(),
        subs.len()
    );

    // ── Parity gate: one mini-batch, loss + grads both paths ─────────
    let (model, params) = fresh_model();
    let batch = &pairs[..BATCH.min(pairs.len())];
    let (fused_loss, fused_grads) = batch_loss_and_grads(&model, &params, subs, batch, true);
    let (base_loss, base_grads) = batch_loss_and_grads(&model, &params, subs, batch, false);
    let loss_diff = (fused_loss - base_loss).abs();
    let mut grad_rel_diff = 0.0f32;
    for name in params.names() {
        let f = fused_grads.get(name).expect("fused gradient");
        let b = base_grads.get(name).expect("baseline gradient");
        let scale = b.as_slice().iter().fold(1.0f32, |m, &x| m.max(x.abs()));
        grad_rel_diff = grad_rel_diff.max(f.max_abs_diff(b) / scale);
    }
    assert!(
        loss_diff <= 1e-5 && grad_rel_diff <= 1e-5,
        "fused training diverged from the per-pair baseline: \
         loss Δ {loss_diff:.2e}, grad Δ {grad_rel_diff:.2e}"
    );
    println!(
        "parity, batch {BATCH}: loss |Δ| = {loss_diff:.2e}, grad rel |Δ| = {grad_rel_diff:.2e} (≤ 1e-5)"
    );

    // ── Timed training runs (identical init, single thread) ──────────
    let config = TrainConfig {
        epochs,
        batch_size: BATCH,
        lr: 0.01,
        clip: 5.0,
        threads: 1,
        seed: cli.seed,
    };
    let timed = |path: TrainPath| {
        let (model, mut params) = fresh_model();
        // Warm one untimed mini-batch (page in code paths/allocator).
        let warm = TrainConfig {
            epochs: 1,
            ..config.clone()
        };
        let _ = train_with_path(
            &model,
            &mut params.clone(),
            subs,
            &pairs[..BATCH],
            &warm,
            path,
        );
        let start = Instant::now();
        let report = train_with_path(&model, &mut params, subs, &pairs, &config, path);
        let elapsed = start.elapsed().as_secs_f64();
        ((pairs.len() * epochs) as f64 / elapsed, elapsed, report)
    };
    let (base_pps, base_secs, base_report) = timed(TrainPath::PerPair);
    let (fused_pps, fused_secs, fused_report) = timed(TrainPath::FusedBatch);
    let speedup = fused_pps / base_pps;

    println!(
        "\n{:<24} {:>12} {:>10} {:>14}",
        "path", "pairs/sec", "total s", "final loss"
    );
    rule(64);
    for (name, pps, secs, report) in [
        ("per_pair_baseline", base_pps, base_secs, &base_report),
        ("fused_batch", fused_pps, fused_secs, &fused_report),
    ] {
        println!(
            "{name:<24} {pps:>12.1} {secs:>10.2} {:>14.4}",
            report.epoch_loss.last().copied().unwrap_or(f64::NAN)
        );
    }
    rule(64);
    println!("fused vs per-pair: {speedup:.2}×");
    println!(
        "fused_train_not_slower: {}",
        if speedup >= 1.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "acceptance (fused ≥ 2× per-pair, batch {BATCH}): {}",
        if speedup >= 2.0 { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("train_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("batch_size", Json::num(BATCH as f64)),
        ("pairs", Json::num(pairs.len() as f64)),
        ("epochs", Json::num(epochs as f64)),
        ("threads", Json::num(1.0)),
        ("fused_pairs_per_sec", Json::num(fused_pps)),
        ("perpair_pairs_per_sec", Json::num(base_pps)),
        ("speedup_fused_vs_perpair", Json::num(speedup)),
        (
            "parity",
            Json::obj(vec![
                ("batch_loss_abs_diff", Json::num(loss_diff)),
                ("grad_rel_diff", Json::num(grad_rel_diff as f64)),
            ]),
        ),
    ]);
    let path = "BENCH_train.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_train.json");
    println!("\nwrote {path}");
}
