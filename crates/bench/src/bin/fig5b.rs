//! Figure 5(b) — accuracy vs percentage of pairs used for training
//! (problem A, fixed submission count).
//!
//! Paper shape: accuracy improves rapidly with the first ~20 % of pairs
//! (≈ +10 points), then dips slightly as ever more redundant pairs
//! encourage overfitting.

use ccsa_bench::{fmt_acc, header, rule, Cli, Scale};
use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pair::{sample_pairs, PairConfig};
use ccsa_model::trainer::{evaluate, train};
use ccsa_nn::param::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse();
    header(
        "Figure 5(b) — accuracy vs % of training pairs (problem A)",
        &cli,
    );

    let train_subs = match cli.scale {
        Scale::Tiny => 32usize,
        Scale::Quick => 64,
        Scale::Default => 128,
        Scale::Full => 2048, // the paper's setting
    };
    let test_subs = 40usize;
    let corpus = CorpusConfig {
        submissions_per_problem: train_subs + test_subs,
        ..cli.corpus_config()
    };
    eprintln!(
        "[corpus] generating {} submissions for A …",
        corpus.submissions_per_problem
    );
    let ds = ProblemDataset::generate(ProblemSpec::curated(ProblemTag::A), &corpus)
        .expect("corpus generation");
    let subs = &ds.submissions;
    let train_ix: Vec<usize> = (0..train_subs).collect();
    let test_ix: Vec<usize> = (train_subs..subs.len()).collect();
    let test_pairs = sample_pairs(
        subs,
        &test_ix,
        &PairConfig {
            max_pairs: 600,
            symmetric: false,
            exclude_self: true,
        },
        cli.seed ^ 0xf2,
    );
    let all_pairs = train_subs * (train_subs - 1) / 2;

    println!("{:>6} {:>10} {:>10}", "%pairs", "pairs", "accuracy");
    rule(30);
    for pct in [5usize, 10, 20, 40, 60, 80, 100] {
        let budget = (all_pairs * pct / 100).clamp(8, 8000);
        let pairs = sample_pairs(
            subs,
            &train_ix,
            &PairConfig {
                max_pairs: budget,
                symmetric: true,
                exclude_self: true,
            },
            cli.seed ^ pct as u64,
        );
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(cli.seed);
        let encoder = EncoderConfig::TreeLstm(cli.treelstm_config());
        let model = Comparator::new(&encoder, &mut params, &mut rng);
        let pipeline = cli.pipeline(encoder);
        train(&model, &mut params, subs, &pairs, &pipeline.config().train);
        let eval = evaluate(&model, &params, subs, &test_pairs, cli.threads);
        println!(
            "{pct:>5}% {:>10} {:>10}",
            pairs.len(),
            fmt_acc(eval.accuracy)
        );
    }
    rule(30);
    println!(
        "paper shape: rapid rise over the first ~20 % of pairs (≈ +10 points),\n\
         then a slight dip from overfitting as redundant pairs accumulate."
    );
}
