//! Table II — cross-problem accuracy within the DFS/graph algorithm group.
//!
//! Trains on each of F, G, I and evaluates on all three. The paper's
//! reading: F and G share their full algorithmic class (DFS, graphs,
//! trees) and transfer best; I overlaps only partially (DFS, DP, graphs)
//! and transfers less.
//!
//! Paper matrix:            F     G     I
//!                    F   .80   .72   .67
//!                    G   .82   .76   .68
//!                    I   .76   .67   .77

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;

fn main() {
    let cli = Cli::parse();
    header(
        "Table II — DFS-group transfer matrix (rows = train, cols = test)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let group = [ProblemTag::F, ProblemTag::G, ProblemTag::I];
    let datasets: Vec<_> = group
        .iter()
        .map(|&t| cache.curated(t, &corpus).clone())
        .collect();

    let pipeline = cli.pipeline(EncoderConfig::TreeLstm(cli.treelstm_config()));
    let paper = [[0.80, 0.72, 0.67], [0.82, 0.76, 0.68], [0.76, 0.67, 0.77]];

    println!("{:<7} {:>8} {:>8} {:>8}", "train\\test", "F", "G", "I");
    rule(42);
    for (r, train_ds) in datasets.iter().enumerate() {
        let outcome = pipeline.run_on_dataset(train_ds.clone());
        let mut row = Vec::new();
        for (c, test_ds) in datasets.iter().enumerate() {
            let acc = if r == c {
                outcome.test_accuracy
            } else {
                pipeline.evaluate_cross(&outcome.model, test_ds).accuracy
            };
            row.push(acc);
        }
        println!(
            "{:<7} {:>8} {:>8} {:>8}",
            group[r].to_string(),
            fmt_acc(row[0]),
            fmt_acc(row[1]),
            fmt_acc(row[2]),
        );
        println!(
            "{:<7} {:>8} {:>8} {:>8}   (paper)",
            "",
            fmt_acc(paper[r][0]),
            fmt_acc(paper[r][1]),
            fmt_acc(paper[r][2]),
        );
    }
    rule(42);
    println!("expected shape: within-class (F↔G) transfer ≥ partial-overlap transfer (→I).");
}
