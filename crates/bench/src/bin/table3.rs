//! Table III — architectural choices for the tree-LSTM (problems A and C).
//!
//! Sweeps layer count 1–3 for the uni- and bi-directional stacks and adds
//! the 3-layer alternating variant. The paper finds all choices within a
//! few points of each other, with alternating best on C (0.804) and the
//! deeper bi-directional stacks showing overfitting rather than gains.

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

fn main() {
    let cli = Cli::parse();
    header(
        "Table III — tree-LSTM architecture sweep on problems A and C",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let ds_a = cache.curated(ProblemTag::A, &corpus).clone();
    let ds_c = cache.curated(ProblemTag::C, &corpus).clone();

    let run = |direction: Direction, layers: usize| -> (f64, f64) {
        let config = TreeLstmConfig {
            embed_dim: cli.scale.embed(),
            hidden: cli.scale.hidden(),
            layers,
            direction,
            sigmoid_candidate: false,
        };
        let pipeline = cli.pipeline(EncoderConfig::TreeLstm(config));
        let a = pipeline.run_on_dataset(ds_a.clone()).test_accuracy;
        let c = pipeline.run_on_dataset(ds_c.clone()).test_accuracy;
        (a, c)
    };

    println!(
        "{:<22} {:>6} {:>9} {:>9}",
        "architecture", "layers", "acc(A)", "acc(C)"
    );
    rule(52);
    let paper_uni = [(1, 0.773, 0.780), (2, 0.765, 0.789), (3, 0.766, 0.783)];
    let paper_bi = [(1, 0.769, 0.780), (2, 0.767, 0.786), (3, 0.770, 0.767)];
    for layers in 1..=3usize {
        let (a, c) = run(Direction::Uni, layers);
        println!(
            "{:<22} {:>6} {:>9} {:>9}",
            "uni-directional",
            layers,
            fmt_acc(a),
            fmt_acc(c)
        );
        let p = paper_uni[layers - 1];
        println!(
            "{:<22} {:>6} {:>9} {:>9}   (paper)",
            "",
            "",
            fmt_acc(p.1),
            fmt_acc(p.2)
        );
    }
    for layers in 1..=3usize {
        let (a, c) = run(Direction::Bi, layers);
        println!(
            "{:<22} {:>6} {:>9} {:>9}",
            "bi-directional",
            layers,
            fmt_acc(a),
            fmt_acc(c)
        );
        let p = paper_bi[layers - 1];
        println!(
            "{:<22} {:>6} {:>9} {:>9}   (paper)",
            "",
            "",
            fmt_acc(p.1),
            fmt_acc(p.2)
        );
    }
    let (a, c) = run(Direction::Alternating, 3);
    println!(
        "{:<22} {:>6} {:>9} {:>9}",
        "alternating",
        3,
        fmt_acc(a),
        fmt_acc(c)
    );
    println!(
        "{:<22} {:>6} {:>9} {:>9}   (paper)",
        "",
        "",
        fmt_acc(0.77),
        fmt_acc(0.804)
    );
    rule(52);
    println!(
        "expected shape: differences across architectures are small (±0.02);\n\
         alternating matches or beats bi-directional with half the parameters."
    );
}
