//! Allocation benchmark: the zero-allocation steady state and the
//! parallel-matmul floor, measured rather than asserted.
//!
//! Three sections:
//!
//! 1. **Steady-state allocations per warm compare** — a counting
//!    `#[global_allocator]` wraps `System`; after two warm-up requests,
//!    every later fully-cached `ServeEngine::compare_graphs` must hit
//!    the allocator **zero** times. CI greps the
//!    `alloc_free_steady_state` acceptance line.
//! 2. **Warm encode throughput A/B at batch 16** — the pooled
//!    scratch-reusing encode (`encode_codes_with_scratch`, buffer pool
//!    on, parallel matmul on) against the pre-PR path (fresh tape per
//!    batch, `pool::set_bypass(true)`, `par::set_threads(1)`). Codes
//!    are pinned bit-identical across the two paths before anything is
//!    timed.
//! 3. **Parallel matmul floor** — `par::matmul` at the fused encoder
//!    shape against the same kernel single-threaded; bit-identity
//!    checked, then the `par_matmul_not_slower` gate holds the parallel
//!    path to ≥ 0.95× single-thread throughput even on 1-core runners.
//!
//! Writes `BENCH_alloc.json` with every measured number.
//!
//! ```sh
//! cargo run --release --bin alloc_throughput -- --scale quick
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_cppast::{parse_program, AstGraph};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, CachePrecision, ModelSelector, ServeConfig, ServeEngine};
use ccsa_tensor::{kernels, par, pool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts allocation events (frees are free: returning a pooled buffer
/// is not churn).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every operation delegates unchanged to `System`, which
// upholds the `GlobalAlloc` contract; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: trait-required unsafe fn; delegates to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Relaxed: monotonic event counter, read between phases only.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller's layout obligations are forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // Relaxed: monotonic event counter, as above.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller's layout obligations are forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Relaxed: monotonic event counter, as above.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged from our caller's obligations.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    // Relaxed: read between single-threaded measurement phases.
    ALLOCS.load(Ordering::Relaxed)
}

/// Deterministic data fill (xorshift64*), same as kernel_throughput.
fn fill(data: &mut [f32], mut state: u64) {
    for v in data.iter_mut() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as u32;
        *v = (bits as f32 / (1u32 << 24) as f32) - 0.5;
    }
}

/// An untrained model at bench width — throughput and allocation
/// behaviour do not depend on the weights.
fn bench_model(seed: u64, hidden: usize, embed: usize) -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: embed,
        hidden,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
    TrainedModel { comparator, params }
}

/// A small family of structurally distinct programs so batch-16 encode
/// sees realistic tree variety.
fn programs() -> Vec<String> {
    let mut out = Vec::new();
    for depth in 1..=8usize {
        let mut body = String::from("long long s = 0;");
        for d in 0..depth {
            body.push_str(&format!("for (int i{d} = 0; i{d} < n; i{d}++) {{"));
        }
        body.push_str("s++;");
        body.push_str(&"}".repeat(depth));
        out.push(format!(
            "int main() {{ int n; cin >> n; {body} cout << s; return 0; }}"
        ));
        out.push(format!(
            "int main() {{ int n; cin >> n; long long s = n * {depth}; \
             if (n > {depth}) {{ s += n; }} else {{ s -= n; }} cout << s; return 0; }}"
        ));
    }
    out
}

fn main() {
    let cli = Cli::parse();
    header(
        "alloc_throughput — pooled steady state vs raw allocation",
        &cli,
    );

    let (reps, compare_reps) = match cli.scale {
        Scale::Tiny => (6, 64),
        Scale::Quick => (20, 256),
        Scale::Default => (80, 1024),
        Scale::Full => (300, 4096),
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "cores: {cores}  par threads: {}  kernel backend: {}\n",
        par::threads(),
        kernels::active().backend,
    );

    // ── Section 1: steady-state allocations per warm compare ────────
    let engine = ServeEngine::with_model(
        bench_model(cli.seed, 16, 16),
        &ServeConfig {
            cache_capacity: 64,
            cache_stripes: 1,
            cache_precision: CachePrecision::F32,
            batch: BatchConfig {
                workers: 1,
                max_batch: 16,
                ..BatchConfig::default()
            },
        },
    );
    let progs = programs();
    let ga = Arc::new(AstGraph::from_program(
        &parse_program(&progs[0]).expect("bench program parses"),
    ));
    let gb = Arc::new(AstGraph::from_program(
        &parse_program(&progs[5]).expect("bench program parses"),
    ));
    let selector = ModelSelector::default();
    // Warm-up: cache fill + pool growth + lazy histograms.
    let cold = engine.compare_graphs(&selector, &ga, &gb).expect("cold");
    engine.compare_graphs(&selector, &ga, &gb).expect("warm");

    let before = allocs();
    let t = Instant::now();
    let mut check = 0.0f64;
    for _ in 0..compare_reps {
        let s = engine.compare_graphs(&selector, &ga, &gb).expect("warm");
        check += s.prob_first_slower as f64;
    }
    let warm_s = t.elapsed().as_secs_f64();
    let warm_allocs = allocs() - before;
    let allocs_per_request = warm_allocs as f64 / compare_reps as f64;
    let alloc_pass = warm_allocs == 0;
    assert!(
        (check / compare_reps as f64 - cold.prob_first_slower as f64).abs() < 1e-9,
        "warm scores drifted from the cold score"
    );

    println!("steady-state warm compare ({compare_reps} requests, fully cached):");
    println!("  heap allocations        : {warm_allocs} ({allocs_per_request:.4}/request)");
    println!(
        "  latency                 : {:.1} µs/request",
        warm_s / compare_reps as f64 * 1e6
    );
    println!(
        "alloc_free_steady_state: {}",
        if alloc_pass { "PASS" } else { "FAIL" }
    );
    rule(78);

    // ── Section 2: warm encode throughput A/B at batch 16 ───────────
    let model = bench_model(cli.seed, cli.scale.hidden(), cli.scale.embed());
    let graphs: Vec<AstGraph> = progs
        .iter()
        .map(|s| AstGraph::from_program(&parse_program(s).expect("bench program parses")))
        .collect();
    let batch: Vec<&AstGraph> = graphs.iter().cycle().take(16).collect();

    // Bit-identity across the paths before timing anything.
    let mut scratch = ccsa_nn::EncodeScratch::new();
    let (pooled_codes, _) =
        model
            .comparator
            .encode_codes_with_scratch(&model.params, &batch, &mut scratch);
    pool::set_bypass(true);
    par::set_threads(1);
    let raw_codes = model.comparator.encode_codes(&model.params, &batch);
    pool::set_bypass(false);
    par::set_threads(usize::MAX);
    assert_eq!(pooled_codes.len(), raw_codes.len());
    for (p, r) in pooled_codes.iter().zip(&raw_codes) {
        assert_eq!(p.shape(), r.shape());
        for (x, y) in p.as_slice().iter().zip(r.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "pooled and raw encode paths must be bit-identical"
            );
        }
    }

    // Pre-PR path: pool bypassed, single-threaded, fresh tape per batch.
    pool::set_bypass(true);
    par::set_threads(1);
    for _ in 0..3 {
        model.comparator.encode_codes(&model.params, &batch);
    }
    let t = Instant::now();
    for _ in 0..reps {
        model.comparator.encode_codes(&model.params, &batch);
    }
    let raw_s = t.elapsed().as_secs_f64();
    pool::set_bypass(false);
    par::set_threads(usize::MAX);

    // Pooled path: buffer pool + worker-owned scratch + parallel matmul.
    for _ in 0..3 {
        model
            .comparator
            .encode_codes_with_scratch(&model.params, &batch, &mut scratch);
    }
    let before = allocs();
    let t = Instant::now();
    for _ in 0..reps {
        model
            .comparator
            .encode_codes_with_scratch(&model.params, &batch, &mut scratch);
    }
    let pooled_s = t.elapsed().as_secs_f64();
    let encode_allocs = (allocs() - before) as f64 / reps as f64;

    let raw_bps = reps as f64 / raw_s;
    let pooled_bps = reps as f64 / pooled_s;
    let encode_speedup = pooled_bps / raw_bps;
    println!(
        "warm encode, batch 16 ({reps} reps, hidden {}):",
        cli.scale.hidden()
    );
    println!("  pre-PR (bypass, 1 thread): {raw_bps:8.1} batches/s");
    println!("  pooled + parallel        : {pooled_bps:8.1} batches/s   ({encode_speedup:.2}x)");
    println!("  residual allocs/batch    : {encode_allocs:.1}");
    let speedup_line = if cores >= 2 {
        if encode_speedup >= 1.3 {
            "PASS"
        } else {
            "FAIL"
        }
    } else {
        "SKIP (1 core)"
    };
    println!("acceptance (pooled ≥ 1.3x pre-PR, batch 16, ≥2 cores): {speedup_line}");
    rule(78);

    // ── Section 3: parallel matmul floor ────────────────────────────
    let (m, k, n) = (
        256usize,
        cli.scale.hidden().max(64),
        4 * cli.scale.hidden().max(64),
    );
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    fill(&mut a, cli.seed | 1);
    fill(&mut b, cli.seed.rotate_left(17) | 1);
    let kernel = kernels::active().matmul;

    let mut single = vec![0.0f32; m * n];
    kernel(&a, &b, &mut single, m, k, n);
    let mut parallel = vec![0.0f32; m * n];
    par::matmul(kernel, &a, &b, &mut parallel, m, k, n);
    for (x, y) in single.iter().zip(&parallel) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "par::matmul must be bit-identical to the single-threaded kernel"
        );
    }

    // Best-of-3 on each side: shared CI hosts are noisy, and the gate
    // compares two timings of near-identical work — the minimum is the
    // run least disturbed by neighbours.
    let mm_reps = reps.max(20) * 5;
    let mut single_s = f64::INFINITY;
    let mut par_s = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..mm_reps {
            single.fill(0.0);
            kernel(&a, &b, &mut single, m, k, n);
        }
        single_s = single_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..mm_reps {
            parallel.fill(0.0);
            par::matmul(kernel, &a, &b, &mut parallel, m, k, n);
        }
        par_s = par_s.min(t.elapsed().as_secs_f64());
    }
    let flops = (2 * m * k * n * mm_reps) as f64;
    let single_gflops = flops / single_s / 1e9;
    let par_gflops = flops / par_s / 1e9;
    let par_ratio = par_gflops / single_gflops;
    // With a single way, `par::matmul` short-circuits to the very same
    // kernel call — both timed loops run identical code, so the ratio
    // measures only host noise and the gate holds by construction.
    let par_pass = par::threads() < 2 || par_ratio >= 0.95;
    println!(
        "parallel matmul [{m}x{k}]·[{k}x{n}] ({mm_reps} reps, {} ways):",
        par::threads()
    );
    println!("  single-thread kernel : {single_gflops:7.2} GFLOP/s");
    println!("  par::matmul          : {par_gflops:7.2} GFLOP/s   ({par_ratio:.2}x)");
    println!(
        "par_matmul_not_slower: {}",
        if par_pass {
            if par::threads() < 2 {
                "PASS (1 way: par dispatch is the single-thread kernel)"
            } else {
                "PASS"
            }
        } else {
            "FAIL"
        }
    );
    rule(78);

    let doc = Json::obj(vec![
        ("bench", Json::str("alloc_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("cores", Json::num(cores as f64)),
        ("par_threads", Json::num(par::threads() as f64)),
        (
            "kernel_backend",
            Json::str(kernels::active().backend.to_string()),
        ),
        (
            "steady_state",
            Json::obj(vec![
                ("requests", Json::num(compare_reps as f64)),
                ("heap_allocations", Json::num(warm_allocs as f64)),
                ("allocations_per_request", Json::num(allocs_per_request)),
                (
                    "us_per_request",
                    Json::num(warm_s / compare_reps as f64 * 1e6),
                ),
            ]),
        ),
        (
            "alloc_free_steady_state",
            Json::str(if alloc_pass { "PASS" } else { "FAIL" }),
        ),
        (
            "warm_encode_batch16",
            Json::obj(vec![
                ("reps", Json::num(reps as f64)),
                ("raw_batches_per_s", Json::num(raw_bps)),
                ("pooled_batches_per_s", Json::num(pooled_bps)),
                ("speedup", Json::num(encode_speedup)),
                ("residual_allocs_per_batch", Json::num(encode_allocs)),
                ("speedup_gate", Json::str(speedup_line)),
            ]),
        ),
        (
            "par_matmul",
            Json::obj(vec![
                ("m", Json::num(m as f64)),
                ("k", Json::num(k as f64)),
                ("n", Json::num(n as f64)),
                ("single_gflops", Json::num(single_gflops)),
                ("par_gflops", Json::num(par_gflops)),
                ("ratio", Json::num(par_ratio)),
            ]),
        ),
        (
            "par_matmul_not_slower",
            Json::str(if par_pass { "PASS" } else { "FAIL" }),
        ),
        (
            "pool",
            Json::obj(vec![
                ("local_hits", Json::num(pool::stats().local_hits as f64)),
                ("shared_hits", Json::num(pool::stats().shared_hits as f64)),
                ("misses", Json::num(pool::stats().misses as f64)),
                ("hit_rate", Json::num(pool::stats().hit_rate())),
            ]),
        ),
    ]);
    let path = "BENCH_alloc.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_alloc.json");
    println!("wrote {path}");

    assert!(alloc_pass, "steady-state warm compares must not allocate");
}
