//! §V-C hyper-parameter study — the Optuna-substitute random search.
//!
//! Searches the GCN space (layers 1–16, hidden 8–256) on problem C with a
//! shortened training budget per trial, then reports the top trials.
//! Paper result: (6 layers, hidden 117) at 68.5 % accuracy — the point is
//! the *shape*: moderate depth beats both 1-layer and very deep stacks.

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache, Scale};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::hyperopt::{random_search, SearchSpace};
use ccsa_nn::gcn::{Activation, GcnConfig};

fn main() {
    let cli = Cli::parse();
    header(
        "§V-C — random search over the GCN space (layers 1–16, hidden 8–256)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let ds = cache.curated(ProblemTag::C, &corpus).clone();

    let trials = match cli.scale {
        Scale::Tiny => 4,
        Scale::Quick => 6,
        Scale::Default => 12,
        Scale::Full => 40,
    };
    // Cap hidden width per scale to keep CPU trials affordable; the full
    // scale searches the paper's entire range.
    let mut space = SearchSpace::paper_gcn();
    if cli.scale != Scale::Full {
        space.hidden.hi = 48;
        space.layers.hi = 10;
    }

    let mut evaluated = 0usize;
    let results = random_search(&space, trials, cli.seed, |candidate| {
        evaluated += 1;
        let config = GcnConfig {
            embed_dim: cli.scale.embed(),
            hidden: candidate.hidden,
            layers: candidate.layers,
            activation: Activation::Relu,
        };
        let pipeline = cli.pipeline(EncoderConfig::Gcn(config));
        let accuracy = pipeline.run_on_dataset(ds.clone()).test_accuracy;
        eprintln!(
            "[trial {evaluated}/{trials}] layers={:<2} hidden={:<3} → {:.3}",
            candidate.layers, candidate.hidden, accuracy
        );
        accuracy
    });

    println!("{:>5} {:>7} {:>10}", "rank", "layers", "hidden");
    println!("{:>5} {:>7} {:>10} {:>10}", "", "", "", "accuracy");
    rule(36);
    for (rank, trial) in results.iter().enumerate().take(10) {
        println!(
            "{:>5} {:>7} {:>10} {:>10}",
            rank + 1,
            trial.candidate.layers,
            trial.candidate.hidden,
            fmt_acc(trial.accuracy)
        );
    }
    rule(36);
    println!("paper: Optuna picked layers=6, hidden=117 at accuracy 0.685.");
}
