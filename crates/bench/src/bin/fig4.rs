//! Figure 4 — ROC curve of the multi-layer alternating tree-LSTM on
//! problem A.
//!
//! Prints the (FPR, TPR) staircase at 5 % FPR steps plus the exact AUC.
//! Paper reference: AUC ≈ 0.85.

use ccsa_bench::{header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;

fn main() {
    let cli = Cli::parse();
    header(
        "Figure 4 — ROC on problem A (3-layer alternating tree-LSTM)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();
    let ds = cache.curated(ProblemTag::A, &corpus).clone();

    let pipeline = cli.pipeline(EncoderConfig::TreeLstm(cli.treelstm_config()));
    let outcome = pipeline.run_on_dataset(ds);
    let curve = outcome.eval.roc();

    println!("{:>6} {:>6}", "FPR", "TPR");
    rule(16);
    // Down-sample the staircase to ~21 readable points.
    let mut next_fpr = 0.0;
    for &(fpr, tpr) in &curve.points {
        if fpr + 1e-12 >= next_fpr {
            println!("{fpr:>6.2} {tpr:>6.2}");
            next_fpr += 0.05;
        }
    }
    rule(16);
    println!("accuracy @0.5 = {:.3}", outcome.test_accuracy);
    println!("AUC           = {:.3}   (paper: 0.85)", curve.auc);
}
