//! Multi-threaded serving contention benchmark: the sharded engine
//! (striped embedding cache + per-model encode shards + `RwLock`
//! registry) against the pre-sharding global-lock layout (1 cache
//! stripe + single FIFO encode queue), under a 90/10 hot/cold two-route
//! skew.
//!
//! Two measurements:
//!
//! 1. **Throughput grid** — warm-cache compare traffic at
//!    `threads ∈ {1, 4, 8}` through both engine layouts. On the hot
//!    path every request resolves the registry and performs two cache
//!    lookups; with one global cache mutex those serialize across all
//!    client threads, with stripes they do not. Before any timing, the
//!    same request stream is replayed through both engines
//!    single-threaded and asserted bit-identical — sharding is a
//!    locking change, never a numeric one.
//! 2. **Starvation probe** — cache disabled, a hot model flooded from
//!    7 threads while 1 thread issues cold-model requests. In the
//!    single FIFO queue the cold jobs wait behind the whole hot
//!    backlog; with per-model shards + work stealing the cold shard is
//!    visited every rotation. Reported as cold-route p99 latency for
//!    both layouts, plus steal counts and the maximum per-shard queue
//!    depths observed mid-flood.
//!
//! Writes `BENCH_shard.json`. CI gates on the `shard_not_slower` line
//! (the sharded engine must not regress against the global-lock
//! baseline beyond measurement noise); the 1.5× line records how much
//! headroom the hardware allows (lock convoys only cost real wall time
//! when threads actually run in parallel, so single-core machines hover
//! near 1×).
//!
//! ```sh
//! cargo run --release --bin shard_contention -- --scale quick
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::json::Json;
use ccsa_serve::{
    BatchConfig, ModelRegistry, ModelSelector, PoolSharding, ServeConfig, ServeEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOT: &str = "hot";
const COLD: &str = "cold";

/// Untrained comparator — throughput does not depend on accuracy, and a
/// fixed seed keeps both engine layouts bit-identical.
fn model(seed: u64) -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 16,
        hidden: 16,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
    TrainedModel { comparator, params }
}

/// Structurally distinct tiny sources (statement-count varies, so the
/// canonical hashes differ — literal tweaks alone would collapse).
fn variants(n: usize, salt: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let mut body = String::from("int s = 0;");
            for k in 0..=(i + salt) % n {
                body.push_str(&format!(" s += {k};"));
            }
            format!("int main() {{ {body} return s; }}")
        })
        .collect()
}

struct Layout {
    cache_stripes: usize,
    sharding: PoolSharding,
}

const GLOBAL: Layout = Layout {
    cache_stripes: 1,
    sharding: PoolSharding::Single,
};
const SHARDED: Layout = Layout {
    cache_stripes: 0, // default stripe count
    sharding: PoolSharding::PerModel,
};

fn build_engine(layout: &Layout, cache_capacity: usize, workers: usize) -> Arc<ServeEngine> {
    let mut registry = ModelRegistry::new();
    registry.register(HOT, 1, model(1));
    registry.register(COLD, 1, model(2));
    Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity,
            cache_stripes: layout.cache_stripes,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers,
                max_batch: 8,
                sharding: layout.sharding,
                shard_capacity: 0, // the flood phase must queue, not shed
            },
        },
    ))
}

fn selector(name: &str) -> ModelSelector {
    ModelSelector {
        name: Some(name.to_string()),
        version: None,
    }
}

/// The deterministic 90/10 request mix: request `i` is cold iff
/// `i % 10 == 9`; pair indices rotate through the variant sets.
fn request(i: usize, hot_srcs: &[String], cold_srcs: &[String]) -> (ModelSelector, String, String) {
    let (name, srcs) = if i % 10 == 9 {
        (COLD, cold_srcs)
    } else {
        (HOT, hot_srcs)
    };
    let a = &srcs[i % srcs.len()];
    let b = &srcs[(i * 7 + 3) % srcs.len()];
    (selector(name), a.clone(), b.clone())
}

/// Replays `total` mixed requests across `threads` client threads,
/// returning pairs/sec.
fn run_grid_cell(
    engine: &Arc<ServeEngine>,
    threads: usize,
    total: usize,
    hot_srcs: &[String],
    cold_srcs: &[String],
) -> f64 {
    let per_thread = total / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(engine);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let (sel, a, b) = request(t * per_thread + i, hot_srcs, cold_srcs);
                    engine.compare(&sel, &a, &b).expect("serving failed");
                }
            });
        }
    });
    (per_thread * threads) as f64 / start.elapsed().as_secs_f64()
}

/// Percentile over unsorted samples (nearest-rank).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

struct SkewResult {
    cold_p99_ms: f64,
    cold_p50_ms: f64,
    cold_samples: usize,
    steals: u64,
    max_depths: Vec<(String, usize)>,
}

/// The starvation probe: 7 threads flood the hot model (cache disabled,
/// so every request encodes), 1 thread measures cold-model latency until
/// the flood drains.
fn run_skew(layout: &Layout, flood_requests: usize) -> SkewResult {
    let engine = build_engine(layout, 0, 2);
    let hot_srcs = variants(12, 0);
    let cold_srcs = variants(12, 5);
    let steals_before = engine.stats().batch.steals;
    let flood_done = Arc::new(AtomicBool::new(false));
    let mut cold_latencies: Vec<f64> = Vec::new();
    let mut max_depths: std::collections::HashMap<String, usize> = std::collections::HashMap::new();

    std::thread::scope(|scope| {
        // Flooders replay the bulk-scoring pattern (compare_batch with
        // 16-pair chunks), so each in-flight request parks 32 hot trees
        // in the queue — in FIFO order a cold tree waits behind all of
        // them; in the sharded pool it waits behind at most one batch.
        let chunk = 16usize;
        let flooders: Vec<_> = (0..7)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let hot_srcs = &hot_srcs;
                scope.spawn(move || {
                    let mut pairs_left = flood_requests / 7;
                    let mut i = t;
                    while pairs_left > 0 {
                        let n = chunk.min(pairs_left);
                        let pairs: Vec<(&str, &str)> = (0..n)
                            .map(|k| {
                                (
                                    hot_srcs[(i + k) % hot_srcs.len()].as_str(),
                                    hot_srcs[(i + k * 7 + 3) % hot_srcs.len()].as_str(),
                                )
                            })
                            .collect();
                        engine
                            .compare_batch(&selector(HOT), &pairs)
                            .expect("hot flood failed");
                        pairs_left -= n;
                        i += n;
                    }
                })
            })
            .collect();
        // Depth sampler: records the deepest backlog each shard reached.
        let sampler = {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&flood_done);
            scope.spawn(move || {
                let mut maxima = std::collections::HashMap::new();
                // SeqCst: the flood-done flag, stored once by the driver.
                while !done.load(Ordering::SeqCst) {
                    for (label, depth) in engine.stats().queue_depths {
                        let slot = maxima.entry(label).or_insert(0usize);
                        *slot = (*slot).max(depth);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                maxima
            })
        };
        // Cold prober: sequential cold requests while the flood lasts —
        // always at least one, so the p99 comparison can never pass
        // vacuously on an empty sample set.
        let sel_cold = selector(COLD);
        let mut i = 0usize;
        loop {
            let a = &cold_srcs[i % cold_srcs.len()];
            let b = &cold_srcs[(i * 7 + 3) % cold_srcs.len()];
            let t0 = Instant::now();
            engine.compare(&sel_cold, a, b).expect("cold probe failed");
            cold_latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            i += 1;
            if flooders.iter().all(|f| f.is_finished()) {
                break;
            }
        }
        flood_done.store(true, Ordering::SeqCst); // SeqCst: stop the sampler
        for f in flooders {
            f.join().expect("flooder panicked");
        }
        let mut maxima: Vec<(String, usize)> = sampler
            .join()
            .expect("sampler panicked")
            .into_iter()
            .collect();
        maxima.sort();
        max_depths.extend(maxima);
    });

    let cold_samples = cold_latencies.len();
    let cold_p50_ms = percentile(&mut cold_latencies, 0.50);
    let cold_p99_ms = percentile(&mut cold_latencies, 0.99);
    let mut max_depths: Vec<(String, usize)> = max_depths.into_iter().collect();
    max_depths.sort();
    SkewResult {
        cold_p99_ms,
        cold_p50_ms,
        cold_samples,
        steals: engine.stats().batch.steals - steals_before,
        max_depths,
    }
}

fn main() {
    let cli = Cli::parse();
    header(
        "shard_contention — sharded serving core vs global-lock baseline",
        &cli,
    );

    let hot_srcs = variants(12, 0);
    let cold_srcs = variants(12, 5);
    let workers = ccsa_nn::parallel::default_threads();

    // ── Equivalence before timing ────────────────────────────────────
    // The identical 90/10 request stream through both layouts must
    // produce bit-identical probabilities (cold AND warm passes).
    let eq_global = build_engine(&GLOBAL, 4096, workers);
    let eq_sharded = build_engine(&SHARDED, 4096, workers);
    let mut worst: f32 = 0.0;
    for i in 0..240 {
        let (sel, a, b) = request(i, &hot_srcs, &cold_srcs);
        let pg = eq_global.compare(&sel, &a, &b).expect("global engine");
        let ps = eq_sharded.compare(&sel, &a, &b).expect("sharded engine");
        assert_eq!(
            pg.prob_first_slower.to_bits(),
            ps.prob_first_slower.to_bits(),
            "sharded engine diverged from global-lock engine on request {i}"
        );
        worst = worst.max((pg.prob_first_slower - ps.prob_first_slower).abs());
    }
    println!(
        "equivalence: 240-request stream bit-identical across layouts (max |Δ| = {worst:.1e})\n"
    );

    // ── Throughput grid ──────────────────────────────────────────────
    let total = match cli.scale {
        Scale::Tiny => 1_600,
        Scale::Quick => 4_800,
        Scale::Default => 16_000,
        Scale::Full => 64_000,
    };
    let thread_counts = [1usize, 4, 8];
    println!(
        "{:<10} {:>18} {:>18} {:>9}",
        "threads", "global pairs/s", "sharded pairs/s", "speedup"
    );
    rule(60);
    let mut grid: Vec<(usize, f64, f64)> = Vec::new();
    for &threads in &thread_counts {
        let mut cells = [0.0f64; 2];
        for (slot, layout) in [GLOBAL, SHARDED].iter().enumerate() {
            let engine = build_engine(layout, 4096, workers);
            // Warm pass (untimed): every variant pair lands in cache.
            run_grid_cell(&engine, threads, total.min(1_200), &hot_srcs, &cold_srcs);
            // Best of 3 timed reps damps scheduler noise.
            for _ in 0..3 {
                cells[slot] = cells[slot].max(run_grid_cell(
                    &engine, threads, total, &hot_srcs, &cold_srcs,
                ));
            }
        }
        println!(
            "{:<10} {:>18.0} {:>18.0} {:>8.2}×",
            threads,
            cells[0],
            cells[1],
            cells[1] / cells[0]
        );
        grid.push((threads, cells[0], cells[1]));
    }
    rule(60);
    let (_, global_8t, sharded_8t) = *grid.last().expect("8-thread cell");
    let speedup_8t = sharded_8t / global_8t;

    // ── Starvation probe ─────────────────────────────────────────────
    let flood = match cli.scale {
        Scale::Tiny => 280,
        Scale::Quick => 700,
        Scale::Default => 2_100,
        Scale::Full => 7_000,
    };
    let skew_global = run_skew(&GLOBAL, flood);
    let skew_sharded = run_skew(&SHARDED, flood);
    println!("\nstarvation probe (cache off, 7 hot flooders + 1 cold prober, workers=2):");
    for (name, skew) in [("global_lock", &skew_global), ("sharded", &skew_sharded)] {
        println!(
            "  {:<12} cold p50 {:>8.2} ms  p99 {:>8.2} ms  ({} samples, {} steals, max depths {:?})",
            name, skew.cold_p50_ms, skew.cold_p99_ms, skew.cold_samples, skew.steals,
            skew.max_depths
        );
    }
    let p99_improvement = skew_global.cold_p99_ms / skew_sharded.cold_p99_ms.max(1e-9);

    // ── Acceptance ───────────────────────────────────────────────────
    // Regression tripwire (CI-gated): the sharded layout must not be
    // slower than the global-lock layout at 8 threads beyond a 5%
    // measurement-noise allowance.
    println!();
    println!(
        "shard_not_slower: {}",
        if speedup_8t >= 0.95 { "PASS" } else { "FAIL" }
    );
    println!(
        "acceptance (sharded ≥ 1.5× global-lock at 8 threads): {}",
        if speedup_8t >= 1.5 { "PASS" } else { "FAIL" }
    );
    // Like shard_not_slower, allow measurement noise (10%) — the real
    // effect is multi-fold, so a regression still trips this.
    let cold_p99_ok = skew_sharded.cold_p99_ms <= 1.10 * skew_global.cold_p99_ms;
    println!(
        "cold_p99_improved: {}",
        if cold_p99_ok { "PASS" } else { "FAIL" }
    );

    let grid_json: Vec<Json> = grid
        .iter()
        .map(|&(threads, global, sharded)| {
            Json::obj(vec![
                ("threads", Json::num(threads as f64)),
                ("global_pairs_per_sec", Json::num(global)),
                ("sharded_pairs_per_sec", Json::num(sharded)),
                ("speedup_sharded_vs_global", Json::num(sharded / global)),
            ])
        })
        .collect();
    let depths_json = |depths: &[(String, usize)]| {
        Json::Obj(
            depths
                .iter()
                .map(|(label, d)| (label.clone(), Json::num(*d as f64)))
                .collect(),
        )
    };
    let skew_json = |skew: &SkewResult| {
        Json::obj(vec![
            ("cold_p50_ms", Json::num(skew.cold_p50_ms)),
            ("cold_p99_ms", Json::num(skew.cold_p99_ms)),
            ("cold_samples", Json::num(skew.cold_samples as f64)),
            ("steals", Json::num(skew.steals as f64)),
            ("max_shard_depths", depths_json(&skew.max_depths)),
        ])
    };
    let doc = Json::obj(vec![
        ("bench", Json::str("shard_contention")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("hot_share", Json::num(0.9)),
        ("requests_per_cell", Json::num(total as f64)),
        ("threads", Json::Arr(grid_json)),
        ("speedup_sharded_vs_global_8t", Json::num(speedup_8t)),
        (
            "skew",
            Json::obj(vec![
                ("client_threads", Json::num(8.0)),
                ("flood_requests", Json::num(flood as f64)),
                ("global_lock", skew_json(&skew_global)),
                ("sharded", skew_json(&skew_sharded)),
                ("cold_p99_improvement", Json::num(p99_improvement)),
            ]),
        ),
        (
            "acceptance",
            Json::obj(vec![
                ("shard_not_slower", Json::Bool(speedup_8t >= 0.95)),
                ("sharded_ge_1_5x_at_8t", Json::Bool(speedup_8t >= 1.5)),
                ("cold_p99_improved", Json::Bool(cold_p99_ok)),
            ]),
        ),
    ]);
    let path = "BENCH_shard.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_shard.json");
    println!("\nwrote {path}");
}
