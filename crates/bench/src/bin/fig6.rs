//! Figure 6 — prediction sensitivity to the runtime gap (problems A, B, C).
//!
//! Evaluation pairs are filtered to those whose true runtime difference is
//! at least a threshold; accuracy is recomputed as the threshold sweeps
//! upward. Paper shape: accuracy rises monotonically toward ~1.0 as only
//! far-apart pairs remain — large gaps come from structurally obvious
//! differences.

use ccsa_bench::{fmt_acc, header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;
use ccsa_model::pair::{sample_pairs, split_indices};
use ccsa_model::sensitivity::sensitivity_curve;
use ccsa_model::trainer::evaluate;

fn main() {
    let cli = Cli::parse();
    header(
        "Figure 6 — accuracy vs minimum runtime difference (A, B, C)",
        &cli,
    );
    let corpus = cli.corpus_config();
    let mut cache = DatasetCache::new();

    for tag in [ProblemTag::A, ProblemTag::B, ProblemTag::C] {
        let ds = cache.curated(tag, &corpus).clone();
        let pipeline = cli.pipeline(EncoderConfig::TreeLstm(cli.treelstm_config()));
        let outcome = pipeline.run_on_dataset(ds);
        let subs = &outcome.dataset.submissions;

        // A fresh, larger held-out pair set for a smooth curve.
        let (_, test_ix) = split_indices(subs.len(), pipeline.config().test_fraction, cli.seed);
        let pairs = sample_pairs(
            subs,
            &test_ix,
            &ccsa_model::pair::PairConfig {
                max_pairs: 800,
                symmetric: false,
                exclude_self: true,
            },
            cli.seed ^ 0x6f16,
        );
        let eval = evaluate(
            &outcome.model.comparator,
            &outcome.model.params,
            subs,
            &pairs,
            cli.threads,
        );
        let curve = sensitivity_curve(subs, &pairs, &eval.scored, 8);

        println!("\nproblem {tag}:");
        println!("{:>12} {:>8} {:>10}", "minΔt (ms)", "pairs", "accuracy");
        rule(34);
        for point in &curve {
            println!(
                "{:>12.1} {:>8} {:>10}",
                point.min_diff_ms,
                point.pairs,
                fmt_acc(point.accuracy)
            );
        }
    }
    rule(34);
    println!(
        "\npaper shape: accuracy increases monotonically with the minimum gap,\n\
         approaching ~1.0 when only second-scale differences remain."
    );
}
