//! Gateway throughput benchmark: a multi-threaded load generator driving
//! the gateway over two weighted routes — first over the TCP JSON-lines
//! fast path, then the identical workload over the HTTP/1.1 front door
//! (keep-alive `POST /v1/compare`).
//!
//! The rig: one in-process `ServeEngine` serving `default` v1 and v2,
//! fronted by a real `Gateway` on ephemeral ports with a 75/25 route
//! split. N client threads hold keep-alive connections and replay a
//! realistic mix (heavy source repetition, many distinct *virtual*
//! clients multiplexed over the connections — each request carries a
//! `"client"` key, which is what sticky routing hashes). The embedding
//! cache is warmed before either timed phase so the two transports face
//! the same engine state and the comparison measures transport framing,
//! not cache luck.
//!
//! Reports end-to-end requests/sec per transport (HTTP must hold ≥ 0.7×
//! TCP) plus, per route, the gateway's own rolling stats (p50/p99
//! latency, cache hit rate) and the observed traffic split, which must
//! land within 5 % of the configured weights. Writes
//! `BENCH_gateway.json` with the two transports side by side.
//!
//! ```sh
//! cargo run --release -p ccsa-bench --bin gateway_throughput -- --scale quick
//! ```

use std::sync::Arc;
use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_gateway::{Gateway, GatewayClient, GatewayConfig, HttpGatewayClient, Route, Router};
use ccsa_model::pipeline::{Pipeline, PipelineConfig};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};

/// Distinct sticky-routing identities in the workload. The observed
/// split equals the hash-assignment split of these keys exactly when the
/// request count divides evenly, so the tolerance check measures the
/// router, not sampling noise.
const VIRTUAL_CLIENTS: usize = 512;

const WEIGHTS: [f64; 2] = [0.75, 0.25];
const SPLIT_TOLERANCE: f64 = 0.05;

/// The HTTP front door must hold at least this fraction of the TCP
/// fast path's throughput on the same warm workload.
const HTTP_RATIO_FLOOR: f64 = 0.7;

fn main() {
    let cli = Cli::parse();
    header(
        "gateway_throughput — weighted A/B gateway, TCP vs HTTP front door",
        &cli,
    );

    let (clients, requests_per_client) = match cli.scale {
        Scale::Tiny => (2, 64),
        Scale::Quick => (4, 256),
        Scale::Default => (8, 512),
        Scale::Full => (16, 1024),
    };
    let total_requests = clients * requests_per_client;

    // A tiny trained model (throughput does not depend on accuracy);
    // registered twice so the two routes are distinct registrations with
    // their own cache space and stats, like a real A/B pair.
    let outcome = Pipeline::new(PipelineConfig::tiny(cli.seed))
        .run_single(ccsa_corpus::ProblemTag::E)
        .expect("corpus generation");
    let sources: Vec<String> = outcome
        .dataset
        .submissions
        .iter()
        .map(|s| s.source.clone())
        .collect();
    let mut registry = ModelRegistry::new();
    registry.register("default", 1, outcome.model.clone());
    registry.register("default", 2, outcome.model);

    let engine = Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 4096,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: ccsa_nn::parallel::default_threads(),
                max_batch: 16,
                ..BatchConfig::default()
            },
        },
    ));

    let router = Router::new(
        vec![
            Route {
                selector: ModelSelector {
                    name: Some("default".into()),
                    version: Some(1),
                },
                weight: WEIGHTS[0],
            },
            Route {
                selector: ModelSelector {
                    name: Some("default".into()),
                    version: Some(2),
                },
                weight: WEIGHTS[1],
            },
        ],
        None,
    )
    .expect("static table is valid");

    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        router,
        GatewayConfig {
            max_connections: clients + 4,
            http_addr: Some("127.0.0.1:0".to_string()),
            ..GatewayConfig::default()
        },
    )
    .expect("gateway spawn");
    let addr = gateway.addr();
    let http_addr = gateway.http_addr().expect("http front door bound");
    println!(
        "gateway on {addr} (http {http_addr}): {clients} client threads × \
         {requests_per_client} requests per transport, {VIRTUAL_CLIENTS} virtual clients, \
         weights {:?}\n",
        WEIGHTS
    );

    // Warm the embedding cache over every source once, so the TCP and
    // HTTP phases run against the same engine state and the ratio below
    // compares transports, not cache luck.
    {
        let mut warm = GatewayClient::connect(addr).expect("warmup connect");
        for (i, a) in sources.iter().enumerate() {
            let b = &sources[(i + 1) % sources.len()];
            let key = format!("vc{}", i % VIRTUAL_CLIENTS);
            warm.compare(a, b, Some(&key)).expect("warmup compare");
        }
    }
    let warmup_requests = sources.len();

    let tcp_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sources = &sources;
                scope.spawn(move || {
                    let mut client = GatewayClient::connect(addr).expect("connect");
                    for j in 0..requests_per_client {
                        let g = c * requests_per_client + j;
                        let key = format!("vc{}", g % VIRTUAL_CLIENTS);
                        let a = &sources[g % sources.len()];
                        let b = &sources[(g * 7 + 3) % sources.len()];
                        client
                            .compare(a, b, Some(&key))
                            .expect("compare over the wire");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    let tcp_elapsed = tcp_start.elapsed();
    let tcp_rps = total_requests as f64 / tcp_elapsed.as_secs_f64();

    // The identical workload over keep-alive HTTP.
    let http_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sources = &sources;
                scope.spawn(move || {
                    let mut client = HttpGatewayClient::connect(http_addr).expect("http connect");
                    for j in 0..requests_per_client {
                        let g = c * requests_per_client + j;
                        let key = format!("vc{}", g % VIRTUAL_CLIENTS);
                        let a = &sources[g % sources.len()];
                        let b = &sources[(g * 7 + 3) % sources.len()];
                        let body = Json::obj(vec![
                            ("first", Json::str(a.as_str())),
                            ("second", Json::str(b.as_str())),
                            ("client", Json::str(key)),
                        ])
                        .to_string();
                        let reply = client
                            .post("/v1/compare", &body, None)
                            .expect("compare over http");
                        assert_eq!(reply.status, 200, "http compare failed: {}", reply.body);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("http client thread");
        }
    });
    let http_elapsed = http_start.elapsed();
    let http_rps = total_requests as f64 / http_elapsed.as_secs_f64();
    let http_ratio = http_rps / tcp_rps;
    let http_ok = http_ratio >= HTTP_RATIO_FLOOR;

    // Per-route truth from the gateway itself.
    let mut probe = GatewayClient::connect(addr).expect("stats connect");
    let routes_doc = probe.routes().expect("routes verb");
    let stats_doc = probe.stats().expect("stats verb");
    gateway.shutdown_and_join().expect("clean drain");

    let routes = routes_doc.get("routes").unwrap().as_arr().unwrap().to_vec();
    let routed_total: u64 = routes
        .iter()
        .map(|r| r.get("requests").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(
        routed_total,
        (warmup_requests + 2 * total_requests) as u64,
        "every request (warmup + TCP + HTTP) must be routed and counted"
    );

    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>7}",
        "route", "weight", "observed", "requests", "hit rate", "p50 ms", "p99 ms", "errors"
    );
    rule(80);
    let mut split_ok = true;
    let mut route_json = Vec::new();
    for (ix, route) in routes.iter().enumerate() {
        let requests = route.get("requests").unwrap().as_u64().unwrap();
        let observed = requests as f64 / routed_total as f64;
        let configured = route.get("share").unwrap().as_f64().unwrap();
        let hit_rate = route.get("cache_hit_rate").unwrap().as_f64().unwrap();
        let p50 = route.get("p50_ms").unwrap().as_f64().unwrap();
        let p99 = route.get("p99_ms").unwrap().as_f64().unwrap();
        let errors = route.get("errors").unwrap().as_u64().unwrap();
        let within = (observed - configured).abs() <= SPLIT_TOLERANCE;
        split_ok &= within && errors == 0;
        println!(
            "v{:<9} {:>6.0}% {:>8.1}% {:>10} {:>9.0}% {:>9.2} {:>9.2} {:>7}",
            route.get("version").unwrap().as_u64().unwrap(),
            configured * 100.0,
            observed * 100.0,
            requests,
            hit_rate * 100.0,
            p50,
            p99,
            errors
        );
        route_json.push(Json::obj(vec![
            ("model", route.get("model").unwrap().clone()),
            ("version", route.get("version").unwrap().clone()),
            ("weight", Json::num(WEIGHTS[ix])),
            ("share_configured", Json::num(configured)),
            ("share_observed", Json::num(observed)),
            ("requests", Json::num(requests as f64)),
            ("errors", Json::num(errors as f64)),
            ("cache_hit_rate", Json::num(hit_rate)),
            ("p50_ms", Json::num(p50)),
            ("p99_ms", Json::num(p99)),
            ("split_within_tolerance", Json::Bool(within)),
        ]));
    }
    rule(80);
    println!(
        "tcp:  {total_requests} requests over {clients} connections in {:.1} ms → {tcp_rps:.0} req/s",
        tcp_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "http: {total_requests} requests over {clients} connections in {:.1} ms → {http_rps:.0} req/s \
         ({:.0}% of tcp)",
        http_elapsed.as_secs_f64() * 1e3,
        http_ratio * 100.0
    );
    println!(
        "acceptance (≥4 concurrent clients, split within {:.0}%, http ≥ {:.0}% of tcp): {}",
        SPLIT_TOLERANCE * 100.0,
        HTTP_RATIO_FLOOR * 100.0,
        if clients >= 4 && split_ok && http_ok {
            "PASS"
        } else {
            "FAIL"
        }
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("gateway_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("clients", Json::num(clients as f64)),
        ("virtual_clients", Json::num(VIRTUAL_CLIENTS as f64)),
        ("requests_per_transport", Json::num(total_requests as f64)),
        ("warmup_requests", Json::num(warmup_requests as f64)),
        ("distinct_sources", Json::num(sources.len() as f64)),
        ("tcp_elapsed_ms", Json::num(tcp_elapsed.as_secs_f64() * 1e3)),
        ("tcp_requests_per_sec", Json::num(tcp_rps)),
        (
            "http_elapsed_ms",
            Json::num(http_elapsed.as_secs_f64() * 1e3),
        ),
        ("http_requests_per_sec", Json::num(http_rps)),
        ("http_vs_tcp_ratio", Json::num(http_ratio)),
        ("http_ratio_floor", Json::num(HTTP_RATIO_FLOOR)),
        ("http_within_ratio_floor", Json::Bool(http_ok)),
        ("routes", Json::Arr(route_json)),
        ("split_within_tolerance", Json::Bool(split_ok)),
        (
            "cache_hit_rate_global",
            stats_doc.get("cache_hit_rate").unwrap().clone(),
        ),
        (
            "mean_batch_size",
            stats_doc.get("mean_batch_size").unwrap().clone(),
        ),
    ]);
    let path = "BENCH_gateway.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_gateway.json");
    println!("\nwrote {path}");
    if !(clients >= 4 && split_ok && http_ok) {
        std::process::exit(1);
    }
}
