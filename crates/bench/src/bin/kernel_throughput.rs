//! Kernel throughput benchmark: the explicit-SIMD dispatch layer
//! (`ccsa_tensor::kernels`) measured against the blocked scalar
//! reference at the encoder's real working shapes, plus the quantized
//! embedding cache's read-latency/capacity trade-off.
//!
//! Three sections:
//!
//! 1. **matmul / matvec / segment-sum GFLOP/s** per backend at the
//!    level-fused encoder shapes — `[rows, h] × [h, 4h]` gate
//!    projections for h ∈ {64, 128} — with the `simd_not_slower`
//!    acceptance line CI greps for.
//! 2. **Prefetch before/after**: the blocked scalar kernel ships with a
//!    paced `_mm_prefetch` of the next A-row block; this bench keeps a
//!    local copy of the identical kernel *without* the prefetch so the
//!    delta stays measured, not folklore.
//! 3. **Quantized cache reads**: ns/read and bytes/entry for f32, f16
//!    and int8 cache precisions at a serving-sized embedding width.
//!
//! Reports aligned text and writes `BENCH_kernels.json` so future
//! kernel changes have a perf trajectory to compare against.
//!
//! ```sh
//! cargo run --release --bin kernel_throughput -- --scale quick
//! ```

use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_serve::json::Json;
use ccsa_serve::{CachePrecision, EmbeddingCache};
use ccsa_tensor::kernels::{self, KernelBackend, MatmulFn};
use ccsa_tensor::Tensor;

/// Deterministic data fill (xorshift64*) — no RNG dependency, and the
/// same inputs on every run so numbers are comparable across builds.
fn fill(data: &mut [f32], mut state: u64) {
    for v in data.iter_mut() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as u32;
        *v = (bits as f32 / (1u32 << 24) as f32) - 0.5;
    }
}

/// The blocked scalar kernel with the prefetch hints stripped — the
/// "before" side of the prefetch measurement. Must stay structurally
/// identical to `kernels::scalar` matmul apart from the prefetch call.
fn scalar_matmul_noprefetch(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + 4 <= m {
        let (r01, r23) = out[i * n..(i + 4) * n].split_at_mut(2 * n);
        let (r0, r1) = r01.split_at_mut(n);
        let (r2, r3) = r23.split_at_mut(n);
        for kk in 0..k {
            let a0 = a[i * k + kk];
            let a1 = a[(i + 1) * k + kk];
            let a2 = a[(i + 2) * k + kk];
            let a3 = a[(i + 3) * k + kk];
            let brow = &b[kk * n..(kk + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let (b0, b1, b2, b3) = (brow[j], brow[j + 1], brow[j + 2], brow[j + 3]);
                r0[j] += a0 * b0;
                r0[j + 1] += a0 * b1;
                r0[j + 2] += a0 * b2;
                r0[j + 3] += a0 * b3;
                r1[j] += a1 * b0;
                r1[j + 1] += a1 * b1;
                r1[j + 2] += a1 * b2;
                r1[j + 3] += a1 * b3;
                r2[j] += a2 * b0;
                r2[j + 1] += a2 * b1;
                r2[j + 2] += a2 * b2;
                r2[j + 3] += a2 * b3;
                r3[j] += a3 * b0;
                r3[j + 1] += a3 * b1;
                r3[j + 2] += a3 * b2;
                r3[j + 3] += a3 * b3;
                j += 4;
            }
            while j < n {
                let bv = brow[j];
                r0[j] += a0 * bv;
                r1[j] += a1 * bv;
                r2[j] += a2 * bv;
                r3[j] += a3 * bv;
                j += 1;
            }
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
        i += 1;
    }
}

/// GFLOP/s of one matmul fn at `(m, k, n)` over `reps` repetitions.
fn matmul_gflops(f: MatmulFn, m: usize, k: usize, n: usize, reps: usize) -> f64 {
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut out = vec![0.0f32; m * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    f(&a, &b, &mut out, m, k, n); // warm: page in + branch-train
    let start = Instant::now();
    for _ in 0..reps {
        out.fill(0.0);
        f(&a, &b, &mut out, m, k, n);
    }
    let flops = 2.0 * (m * k * n) as f64 * reps as f64;
    flops / start.elapsed().as_secs_f64() / 1e9
}

/// GFLOP/s of one backend's matvec at `(m, k)` over `reps` repetitions.
fn matvec_gflops(backend: &'static kernels::Kernels, m: usize, k: usize, reps: usize) -> f64 {
    let mut a = vec![0.0f32; m * k];
    let mut x = vec![0.0f32; k];
    let mut out = vec![0.0f32; m];
    fill(&mut a, 0xA076_1D64_78BD_642F);
    fill(&mut x, 0xE703_7ED1_A0B4_28DB);
    (backend.matvec)(&a, &x, &mut out, m, k);
    let start = Instant::now();
    for _ in 0..reps {
        (backend.matvec)(&a, &x, &mut out, m, k);
    }
    let flops = 2.0 * (m * k) as f64 * reps as f64;
    flops / start.elapsed().as_secs_f64() / 1e9
}

/// GFLOP/s of one backend's segment-sum row accumulation: `rows` rows
/// of width `d` folded into one accumulator, `reps` times.
fn seg_accum_gflops(backend: &'static kernels::Kernels, rows: usize, d: usize, reps: usize) -> f64 {
    let mut src = vec![0.0f32; rows * d];
    let mut dst = vec![0.0f32; d];
    fill(&mut src, 0x2B1F_56DD_4C1A_33D7);
    let start = Instant::now();
    for _ in 0..reps {
        dst.fill(0.0);
        for r in 0..rows {
            (backend.seg_accum)(&mut dst, &src[r * d..(r + 1) * d]);
        }
    }
    let flops = (rows * d) as f64 * reps as f64;
    flops / start.elapsed().as_secs_f64() / 1e9
}

struct CacheRead {
    precision: CachePrecision,
    ns_per_read: f64,
    bytes: usize,
}

/// Mean `get` latency and at-rest footprint of a warm cache holding
/// `entries` codes of width `d` at the given precision.
fn cache_read_bench(
    precision: CachePrecision,
    entries: usize,
    d: usize,
    reads: usize,
) -> CacheRead {
    let mut cache = EmbeddingCache::with_precision(entries, precision);
    let mut code = vec![0.0f32; d];
    for key in 0..entries as u64 {
        fill(&mut code, 0xC0FF_EE00 + key);
        cache.insert(key, Tensor::from_vec(code.clone(), [d]));
    }
    let bytes = cache.bytes();
    let mut sink = 0.0f32;
    let start = Instant::now();
    for i in 0..reads {
        let key = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % entries as u64;
        let t = cache.get(key).expect("warm cache read");
        sink += t.as_slice()[0];
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    CacheRead {
        precision,
        ns_per_read: elapsed.as_secs_f64() * 1e9 / reads as f64,
        bytes,
    }
}

fn main() {
    let cli = Cli::parse();
    header(
        "kernel_throughput — SIMD dispatch vs scalar reference",
        &cli,
    );

    let reps = match cli.scale {
        Scale::Tiny => 4,
        Scale::Quick => 12,
        Scale::Default => 50,
        Scale::Full => 200,
    };
    let scalar = kernels::kernels_for(KernelBackend::Scalar).expect("scalar backend");
    let dispatched = kernels::active();
    println!(
        "dispatched backend: {} (avx2 supported: {}, CCSA_KERNEL={})\n",
        dispatched.backend,
        kernels::avx2_supported(),
        std::env::var("CCSA_KERNEL").unwrap_or_else(|_| "unset".to_string()),
    );

    // ── matmul at the level-fused encoder shapes ─────────────────────
    // The fused encoder's hot matmul is [rows, h] × [h, 4h]: all gate
    // pre-activations for one tree level in one call. rows=256 models a
    // well-batched level; h is the hidden width.
    let mut simd_ratios: Vec<f64> = Vec::new();
    let mut matmul_json: Vec<Json> = Vec::new();
    println!(
        "{:<26} {:>14} {:>14} {:>9}",
        "matmul shape", "scalar GF/s", "dispatch GF/s", "ratio"
    );
    rule(68);
    for &h in &[64usize, 128] {
        let (m, k, n) = (256, h, 4 * h);
        let s = matmul_gflops(scalar.matmul, m, k, n, reps);
        let d = matmul_gflops(dispatched.matmul, m, k, n, reps);
        let ratio = d / s;
        simd_ratios.push(ratio);
        println!(
            "{:<26} {:>14.2} {:>14.2} {:>8.2}×",
            format!("[{m},{k}]x[{k},{n}] (h={h})"),
            s,
            d,
            ratio
        );
        matmul_json.push(Json::obj(vec![
            ("m", Json::num(m as f64)),
            ("k", Json::num(k as f64)),
            ("n", Json::num(n as f64)),
            ("scalar_gflops", Json::num(s)),
            ("dispatched_gflops", Json::num(d)),
            ("speedup", Json::num(ratio)),
        ]));
    }
    rule(68);

    // ── matvec + segment-sum at serving shapes ───────────────────────
    // matvec is the single-tree gate projection ([4h, h] · [h]);
    // segment-sum is the child-state fold (64 children rows of width h).
    let mut other_json: Vec<(&str, Json)> = Vec::new();
    for &h in &[64usize, 128] {
        let mv_s = matvec_gflops(scalar, 4 * h, h, reps * 64);
        let mv_d = matvec_gflops(dispatched, 4 * h, h, reps * 64);
        let sa_s = seg_accum_gflops(scalar, 64, h, reps * 64);
        let sa_d = seg_accum_gflops(dispatched, 64, h, reps * 64);
        simd_ratios.push(mv_d / mv_s);
        println!(
            "matvec [{m},{h}]·[{h}]  scalar {mv_s:.2} vs dispatched {mv_d:.2} GF/s ({:.2}×)",
            mv_d / mv_s,
            m = 4 * h,
        );
        println!(
            "segsum 64×[{h}]      scalar {sa_s:.2} vs dispatched {sa_d:.2} GF/s ({:.2}×)",
            sa_d / sa_s
        );
        other_json.push((
            if h == 64 { "matvec_h64" } else { "matvec_h128" },
            Json::obj(vec![
                ("scalar_gflops", Json::num(mv_s)),
                ("dispatched_gflops", Json::num(mv_d)),
                ("speedup", Json::num(mv_d / mv_s)),
            ]),
        ));
        other_json.push((
            if h == 64 {
                "seg_accum_h64"
            } else {
                "seg_accum_h128"
            },
            Json::obj(vec![
                ("scalar_gflops", Json::num(sa_s)),
                ("dispatched_gflops", Json::num(sa_d)),
                ("speedup", Json::num(sa_d / sa_s)),
            ]),
        ));
    }

    // The acceptance gate: geometric mean of the dispatched/scalar
    // ratios, with a small noise floor so a tie (no AVX2 host, or
    // CCSA_KERNEL=scalar) still passes — "not slower", not "faster".
    let geomean =
        (simd_ratios.iter().map(|r| r.ln()).sum::<f64>() / simd_ratios.len() as f64).exp();
    let simd_pass = geomean >= 0.95;
    println!("\ndispatched vs scalar geomean: {geomean:.2}×");
    println!(
        "simd_not_slower: {}",
        if simd_pass { "PASS" } else { "FAIL" }
    );

    // ── prefetch before/after (scalar kernel only) ───────────────────
    // Same blocked kernel, identical arithmetic, prefetch stripped.
    // Two regimes: the encoder shape (operands L2-resident — the hint
    // should be ~free) and a larger-than-L2 shape (streaming A rows —
    // where the hint can actually pay).
    let mut prefetch_json: Vec<Json> = Vec::new();
    println!();
    for (label, pm, pk, pn, r) in [
        ("encoder shape", 256usize, 128usize, 512usize, reps),
        ("streaming shape", 512, 1024, 512, reps.div_ceil(4)),
    ] {
        let pre_off = matmul_gflops(scalar_matmul_noprefetch, pm, pk, pn, r);
        let pre_on = matmul_gflops(scalar.matmul, pm, pk, pn, r);
        println!(
            "prefetch {label} (scalar [{pm},{pk}]x[{pk},{pn}]): off {pre_off:.2} → on {pre_on:.2} GF/s ({:.2}×)",
            pre_on / pre_off
        );
        prefetch_json.push(Json::obj(vec![
            ("shape", Json::str(format!("[{pm},{pk}]x[{pk},{pn}]"))),
            ("off_gflops", Json::num(pre_off)),
            ("on_gflops", Json::num(pre_on)),
            ("speedup", Json::num(pre_on / pre_off)),
        ]));
    }

    // ── quantized cache reads ────────────────────────────────────────
    let (entries, d) = (2048usize, 128usize);
    let reads = match cli.scale {
        Scale::Tiny => 20_000,
        Scale::Quick => 50_000,
        Scale::Default => 200_000,
        Scale::Full => 1_000_000,
    };
    let cache_runs: Vec<CacheRead> = [
        CachePrecision::F32,
        CachePrecision::F16,
        CachePrecision::Int8,
    ]
    .into_iter()
    .map(|p| cache_read_bench(p, entries, d, reads))
    .collect();
    let f32_bytes = cache_runs[0].bytes as f64;
    let f32_ns = cache_runs[0].ns_per_read;
    println!("\ncache reads ({entries} codes × {d} dims, {reads} reads):");
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "precision", "ns/read", "bytes", "capacity ratio"
    );
    rule(54);
    for r in &cache_runs {
        println!(
            "{:<10} {:>12.0} {:>12} {:>15.2}×",
            r.precision.to_string(),
            r.ns_per_read,
            r.bytes,
            f32_bytes / r.bytes as f64
        );
    }
    rule(54);

    let doc = Json::obj(vec![
        ("bench", Json::str("kernel_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        (
            "dispatched_backend",
            Json::str(dispatched.backend.to_string()),
        ),
        ("avx2_supported", Json::Bool(kernels::avx2_supported())),
        ("matmul", Json::Arr(matmul_json)),
        (
            "simd_vs_scalar",
            Json::obj(
                other_json
                    .into_iter()
                    .chain([("geomean_speedup", Json::num(geomean))])
                    .collect(),
            ),
        ),
        (
            "simd_not_slower",
            Json::str(if simd_pass { "PASS" } else { "FAIL" }),
        ),
        ("prefetch", Json::Arr(prefetch_json)),
        (
            "cache_reads",
            Json::Arr(
                cache_runs
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("precision", Json::str(r.precision.to_string())),
                            ("ns_per_read", Json::num(r.ns_per_read)),
                            ("bytes", Json::num(r.bytes as f64)),
                            ("latency_vs_f32", Json::num(r.ns_per_read / f32_ns)),
                            (
                                "capacity_ratio_vs_f32",
                                Json::num(f32_bytes / r.bytes as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = "BENCH_kernels.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_kernels.json");
    println!("\nwrote {path}");
}
