//! Table I — dataset statistics for the nine curated problems.
//!
//! Regenerates each problem's corpus, judges it, and prints measured
//! count/min/median/max/σ next to the paper's values. Absolute agreement
//! at the median is by construction (calibration); min/max/σ show how well
//! the generated runtime *spread* matches the real submission population.

use ccsa_bench::{header, rule, Cli, DatasetCache};
use ccsa_corpus::ProblemTag;

fn main() {
    let cli = Cli::parse();
    header("Table I — problem statistics (measured vs paper)", &cli);
    let config = cli.corpus_config();
    let mut cache = DatasetCache::new();

    println!(
        "{:<4} {:<8} {:>5}  {:>8} {:>8} {:>8} {:>8}   {:<38}",
        "Tag", "Contest", "Count", "Min(ms)", "Med(ms)", "Max(ms)", "σ(ms)", "Algorithms"
    );
    rule(100);
    for tag in ProblemTag::ALL {
        let ds = cache.curated(tag, &config);
        let m = ds.stats();
        let p = tag.paper_stats();
        println!(
            "{:<4} {:<8} {:>5}  {:>8.0} {:>8.0} {:>8.0} {:>8.0}   {:<38}",
            tag.to_string(),
            tag.contest(),
            m.count,
            m.min_ms,
            m.median_ms,
            m.max_ms,
            m.stddev_ms,
            tag.algorithms(),
        );
        println!(
            "{:<4} {:<8} {:>5}  {:>8.0} {:>8.0} {:>8.0} {:>8.0}   (paper)",
            "", "", p.count, p.min_ms, p.median_ms, p.max_ms, p.stddev_ms,
        );
    }
    rule(100);
    println!(
        "note: measured counts reflect --scale (={} per problem); medians match by\n\
         calibration, min/max/σ are emergent from strategy mix + noise.",
        config.submissions_per_problem
    );
}
