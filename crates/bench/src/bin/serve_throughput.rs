//! Serving throughput benchmark: batched vs. unbatched, cache-warm vs.
//! cold, against the naive one-at-a-time baseline — on one workload.
//!
//! The workload replays a realistic serving mix: a corpus of generated
//! submissions compared pairwise, with heavy source repetition (the same
//! implementations keep getting re-scored against new rivals), which is
//! exactly what the embedding cache exploits.
//!
//! Reports pairs/sec per mode and writes `BENCH_serve.json` so future
//! changes have a perf trajectory to compare against.
//!
//! ```sh
//! cargo run --release --bin serve_throughput -- --scale quick
//! ```

use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_model::pipeline::{Pipeline, PipelineConfig, TrainedModel};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, ModelSelector, ServeConfig, ServeEngine};

struct ModeResult {
    name: &'static str,
    pairs_per_sec: f64,
    total_ms: f64,
    cache_hit_rate: f64,
    mean_batch: f64,
}

fn run_engine_mode(
    name: &'static str,
    model: &TrainedModel,
    pairs: &[(String, String)],
    chunk: usize,
    max_batch: usize,
    warm: bool,
) -> ModeResult {
    let engine = ServeEngine::with_model(
        model.clone(),
        &ServeConfig {
            cache_capacity: 4096,
            batch: BatchConfig {
                workers: ccsa_nn::parallel::default_threads(),
                max_batch,
            },
        },
    );
    let sel = ModelSelector::default();
    let run = |engine: &ServeEngine| {
        for block in pairs.chunks(chunk) {
            let refs: Vec<(&str, &str)> = block
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            engine.compare_batch(&sel, &refs).expect("serving failed");
        }
    };
    if warm {
        run(&engine); // populate the cache, untimed
    } else {
        engine.clear_cache();
    }
    let before = engine.stats();
    let start = Instant::now();
    run(&engine);
    let elapsed = start.elapsed();
    let after = engine.stats();

    let lookups =
        (after.cache.hits - before.cache.hits) + (after.cache.misses - before.cache.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.cache.hits - before.cache.hits) as f64 / lookups as f64
    };
    let batches = after.batch.batches - before.batch.batches;
    let jobs = after.batch.jobs - before.batch.jobs;
    ModeResult {
        name,
        pairs_per_sec: pairs.len() as f64 / elapsed.as_secs_f64(),
        total_ms: elapsed.as_secs_f64() * 1e3,
        cache_hit_rate: hit_rate,
        mean_batch: if batches == 0 {
            0.0
        } else {
            jobs as f64 / batches as f64
        },
    }
}

fn main() {
    let cli = Cli::parse();
    header(
        "serve_throughput — serving engine vs. naive inference",
        &cli,
    );

    // A tiny trained model: throughput characteristics do not depend on
    // accuracy, and this keeps the bench in CI-friendly time.
    let outcome = Pipeline::new(PipelineConfig::tiny(cli.seed))
        .run_single(ccsa_corpus::ProblemTag::E)
        .expect("corpus generation");
    let model = outcome.model;
    let sources: Vec<String> = outcome
        .dataset
        .submissions
        .iter()
        .map(|s| s.source.clone())
        .collect();

    let n_pairs = match cli.scale {
        Scale::Quick => 150,
        Scale::Default => 400,
        Scale::Full => 1500,
    };
    let pairs: Vec<(String, String)> = (0..n_pairs)
        .map(|m| {
            let a = &sources[m % sources.len()];
            let b = &sources[(m * 7 + 3) % sources.len()];
            (a.clone(), b.clone())
        })
        .collect();
    println!(
        "workload: {} pairs over {} distinct submissions (heavy repetition)\n",
        pairs.len(),
        sources.len()
    );

    // Baseline: parse + full encoder forward per pair, one at a time.
    let start = Instant::now();
    for (a, b) in &pairs {
        model
            .compare_sources(a, b)
            .expect("baseline inference failed");
    }
    let naive_elapsed = start.elapsed();
    let naive = ModeResult {
        name: "naive_direct",
        pairs_per_sec: pairs.len() as f64 / naive_elapsed.as_secs_f64(),
        total_ms: naive_elapsed.as_secs_f64() * 1e3,
        cache_hit_rate: 0.0,
        mean_batch: 1.0,
    };

    let modes = vec![
        naive,
        run_engine_mode("engine_unbatched_cold", &model, &pairs, 1, 1, false),
        run_engine_mode("engine_batched_cold", &model, &pairs, 16, 16, false),
        run_engine_mode("engine_unbatched_warm", &model, &pairs, 1, 1, true),
        run_engine_mode("engine_batched_warm", &model, &pairs, 16, 16, true),
    ];

    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>11}",
        "mode", "pairs/sec", "total ms", "hit rate", "mean batch"
    );
    rule(72);
    for m in &modes {
        println!(
            "{:<24} {:>12.1} {:>10.1} {:>9.0}% {:>11.1}",
            m.name,
            m.pairs_per_sec,
            m.total_ms,
            100.0 * m.cache_hit_rate,
            m.mean_batch
        );
    }
    rule(72);

    let naive_pps = modes[0].pairs_per_sec;
    let batched_cold = modes
        .iter()
        .find(|m| m.name == "engine_batched_cold")
        .unwrap();
    let batched_warm = modes
        .iter()
        .find(|m| m.name == "engine_batched_warm")
        .unwrap();
    let cold_speedup = batched_cold.pairs_per_sec / naive_pps;
    let warm_speedup = batched_warm.pairs_per_sec / naive_pps;
    println!("batched cold vs naive: {cold_speedup:.1}×");
    println!("batched warm vs naive: {warm_speedup:.1}×");
    println!(
        "acceptance (batched+warm ≥ 2× naive): {}",
        if warm_speedup >= 2.0 { "PASS" } else { "FAIL" }
    );

    let mode_json: Vec<Json> = modes
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("mode", Json::str(m.name)),
                ("pairs_per_sec", Json::num(m.pairs_per_sec)),
                ("total_ms", Json::num(m.total_ms)),
                ("cache_hit_rate", Json::num(m.cache_hit_rate)),
                ("mean_batch_size", Json::num(m.mean_batch)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::str("serve_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("pairs", Json::num(pairs.len() as f64)),
        ("distinct_sources", Json::num(sources.len() as f64)),
        (
            "threads",
            Json::num(ccsa_nn::parallel::default_threads() as f64),
        ),
        ("modes", Json::Arr(mode_json)),
        ("speedup_batched_cold_vs_naive", Json::num(cold_speedup)),
        ("speedup_batched_warm_vs_naive", Json::num(warm_speedup)),
    ]);
    let path = "BENCH_serve.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_serve.json");
    println!("\nwrote {path}");
}
