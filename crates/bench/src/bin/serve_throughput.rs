//! Serving throughput benchmark: batched vs. unbatched, cache-warm vs.
//! cold, against the naive one-at-a-time baseline — on one workload —
//! plus a head-to-head of the level-fused encoder against the per-node
//! reference path on cold batches.
//!
//! The workload replays a realistic serving mix: a corpus of generated
//! submissions compared pairwise, with heavy source repetition (the same
//! implementations keep getting re-scored against new rivals), which is
//! exactly what the embedding cache exploits.
//!
//! Reports pairs/sec per mode and writes `BENCH_serve.json` so future
//! changes have a perf trajectory to compare against.
//!
//! ```sh
//! cargo run --release --bin serve_throughput -- --scale quick
//! ```

use std::time::Instant;

use ccsa_bench::{header, rule, Cli, Scale};
use ccsa_cppast::{parse_program, AstGraph};
use ccsa_model::pipeline::{Pipeline, PipelineConfig, TrainedModel};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, ModelSelector, ServeConfig, ServeEngine};

/// Cold-cache encode throughput of one path over repeated batches.
fn encode_trees_per_sec(
    model: &TrainedModel,
    batches: &[Vec<&AstGraph>],
    reps: usize,
    fused: bool,
) -> f64 {
    let trees: usize = batches.iter().map(Vec::len).sum();
    let start = Instant::now();
    for _ in 0..reps {
        for batch in batches {
            if fused {
                let _ = model.comparator.encode_codes(&model.params, batch);
            } else {
                let _ = model
                    .comparator
                    .encode_codes_sequential(&model.params, batch);
            }
        }
    }
    (trees * reps) as f64 / start.elapsed().as_secs_f64()
}

struct ModeResult {
    name: &'static str,
    pairs_per_sec: f64,
    total_ms: f64,
    cache_hit_rate: f64,
    mean_batch: f64,
}

fn run_engine_mode(
    name: &'static str,
    model: &TrainedModel,
    pairs: &[(String, String)],
    chunk: usize,
    max_batch: usize,
    warm: bool,
) -> ModeResult {
    let engine = ServeEngine::with_model(
        model.clone(),
        &ServeConfig {
            cache_capacity: 4096,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: ccsa_nn::parallel::default_threads(),
                max_batch,
                ..BatchConfig::default()
            },
        },
    );
    let sel = ModelSelector::default();
    let run = |engine: &ServeEngine| {
        for block in pairs.chunks(chunk) {
            let refs: Vec<(&str, &str)> = block
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            engine.compare_batch(&sel, &refs).expect("serving failed");
        }
    };
    if warm {
        run(&engine); // populate the cache, untimed
    } else {
        engine.clear_cache();
    }
    let before = engine.stats();
    let start = Instant::now();
    run(&engine);
    let elapsed = start.elapsed();
    let after = engine.stats();

    let lookups =
        (after.cache.hits - before.cache.hits) + (after.cache.misses - before.cache.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.cache.hits - before.cache.hits) as f64 / lookups as f64
    };
    let batches = after.batch.batches - before.batch.batches;
    let jobs = after.batch.jobs - before.batch.jobs;
    ModeResult {
        name,
        pairs_per_sec: pairs.len() as f64 / elapsed.as_secs_f64(),
        total_ms: elapsed.as_secs_f64() * 1e3,
        cache_hit_rate: hit_rate,
        mean_batch: if batches == 0 {
            0.0
        } else {
            jobs as f64 / batches as f64
        },
    }
}

fn main() {
    let cli = Cli::parse();
    header(
        "serve_throughput — serving engine vs. naive inference",
        &cli,
    );

    // A tiny trained model: throughput characteristics do not depend on
    // accuracy, and this keeps the bench in CI-friendly time.
    let outcome = Pipeline::new(PipelineConfig::tiny(cli.seed))
        .run_single(ccsa_corpus::ProblemTag::E)
        .expect("corpus generation");
    let model = outcome.model;
    let sources: Vec<String> = outcome
        .dataset
        .submissions
        .iter()
        .map(|s| s.source.clone())
        .collect();

    let n_pairs = match cli.scale {
        Scale::Tiny => 60,
        Scale::Quick => 150,
        Scale::Default => 400,
        Scale::Full => 1500,
    };
    let pairs: Vec<(String, String)> = (0..n_pairs)
        .map(|m| {
            let a = &sources[m % sources.len()];
            let b = &sources[(m * 7 + 3) % sources.len()];
            (a.clone(), b.clone())
        })
        .collect();
    println!(
        "workload: {} pairs over {} distinct submissions (heavy repetition)\n",
        pairs.len(),
        sources.len()
    );

    // ── Level-fused vs. per-node encode, cold batches ────────────────
    // The tentpole measurement: same trees, same tape amortisation, the
    // only difference is cross-tree level fusion (batched matmuls per
    // level) versus one matvec chain per node.
    let encode_batch_size = 16usize;
    let distinct: Vec<AstGraph> = sources
        .iter()
        .map(|s| AstGraph::from_program(&parse_program(s).expect("corpus source parses")))
        .collect();
    let batches: Vec<Vec<&AstGraph>> = distinct
        .chunks(encode_batch_size)
        .map(|c| c.iter().collect())
        .collect();
    let encode_reps = match cli.scale {
        Scale::Tiny => 10,
        Scale::Quick => 30,
        Scale::Default => 80,
        Scale::Full => 250,
    };
    // Equivalence sanity: the two paths must agree before we time them.
    {
        let refs: Vec<&AstGraph> = distinct.iter().take(encode_batch_size).collect();
        let fused = model.comparator.encode_codes(&model.params, &refs);
        let sequential = model
            .comparator
            .encode_codes_sequential(&model.params, &refs);
        let worst = fused
            .iter()
            .zip(&sequential)
            .map(|(f, s)| f.max_abs_diff(s))
            .fold(0.0f32, f32::max);
        assert!(
            worst <= 1e-5,
            "fused encode diverged from per-node path by {worst}"
        );
        println!("fused vs per-node equivalence: max |Δ| = {worst:.2e} (≤ 1e-5)");
    }
    // Warm both paths once (page in code/allocator), then measure.
    let _ = encode_trees_per_sec(&model, &batches, 1, true);
    let _ = encode_trees_per_sec(&model, &batches, 1, false);
    let pernode_tps = encode_trees_per_sec(&model, &batches, encode_reps, false);
    let fused_tps = encode_trees_per_sec(&model, &batches, encode_reps, true);
    let fused_speedup = fused_tps / pernode_tps;
    println!(
        "cold encode, batch {encode_batch_size}: fused {fused_tps:.0} trees/s vs per-node {pernode_tps:.0} trees/s ({fused_speedup:.2}×)"
    );
    println!(
        "fused_not_slower: {}",
        if fused_speedup >= 1.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "acceptance (fused ≥ 2× per-node, batch ≥ 8): {}\n",
        if fused_speedup >= 2.0 { "PASS" } else { "FAIL" }
    );

    // Baseline: parse + full encoder forward per pair, one at a time.
    let start = Instant::now();
    for (a, b) in &pairs {
        model
            .compare_sources(a, b)
            .expect("baseline inference failed");
    }
    let naive_elapsed = start.elapsed();
    let naive = ModeResult {
        name: "naive_direct",
        pairs_per_sec: pairs.len() as f64 / naive_elapsed.as_secs_f64(),
        total_ms: naive_elapsed.as_secs_f64() * 1e3,
        cache_hit_rate: 0.0,
        mean_batch: 1.0,
    };

    let modes = vec![
        naive,
        run_engine_mode("engine_unbatched_cold", &model, &pairs, 1, 1, false),
        run_engine_mode("engine_batched_cold", &model, &pairs, 16, 16, false),
        run_engine_mode("engine_unbatched_warm", &model, &pairs, 1, 1, true),
        run_engine_mode("engine_batched_warm", &model, &pairs, 16, 16, true),
    ];

    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>11}",
        "mode", "pairs/sec", "total ms", "hit rate", "mean batch"
    );
    rule(72);
    for m in &modes {
        println!(
            "{:<24} {:>12.1} {:>10.1} {:>9.0}% {:>11.1}",
            m.name,
            m.pairs_per_sec,
            m.total_ms,
            100.0 * m.cache_hit_rate,
            m.mean_batch
        );
    }
    rule(72);

    // ── Multi-threaded section ───────────────────────────────────────
    // The single-thread modes above can never show lock contention; this
    // section replays the warm batched workload from 4 concurrent client
    // threads through one engine (striped cache + sharded pool), so
    // BENCH_serve.json tracks multi-threaded scaling over time.
    let mt_threads = 4usize;
    let mt_engine = ServeEngine::with_model(
        model.clone(),
        &ServeConfig {
            cache_capacity: 4096,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: ccsa_nn::parallel::default_threads(),
                max_batch: 16,
                ..BatchConfig::default()
            },
        },
    );
    let sel = ModelSelector::default();
    let run_threaded = |threads: usize| {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let engine = &mt_engine;
                let pairs = &pairs;
                let sel = &sel;
                scope.spawn(move || {
                    let share: Vec<_> = pairs.iter().skip(t).step_by(threads).collect();
                    for block in share.chunks(16) {
                        let refs: Vec<(&str, &str)> = block
                            .iter()
                            .map(|(a, b)| (a.as_str(), b.as_str()))
                            .collect();
                        engine.compare_batch(sel, &refs).expect("serving failed");
                    }
                });
            }
        });
        pairs.len() as f64 / start.elapsed().as_secs_f64()
    };
    let _ = run_threaded(mt_threads); // warm the cache, untimed
    let single_warm_pps = modes
        .iter()
        .find(|m| m.name == "engine_batched_warm")
        .unwrap()
        .pairs_per_sec;
    let mt_pps = (0..2).map(|_| run_threaded(mt_threads)).fold(0.0, f64::max);
    println!(
        "\nwarm batched at {mt_threads} client threads: {mt_pps:.0} pairs/s \
         ({:.2}× the 1-thread warm mode)",
        mt_pps / single_warm_pps
    );

    let naive_pps = modes[0].pairs_per_sec;
    let batched_cold = modes
        .iter()
        .find(|m| m.name == "engine_batched_cold")
        .unwrap();
    let batched_warm = modes
        .iter()
        .find(|m| m.name == "engine_batched_warm")
        .unwrap();
    let cold_speedup = batched_cold.pairs_per_sec / naive_pps;
    let warm_speedup = batched_warm.pairs_per_sec / naive_pps;
    println!("batched cold vs naive: {cold_speedup:.1}×");
    println!("batched warm vs naive: {warm_speedup:.1}×");
    println!(
        "acceptance (batched+warm ≥ 2× naive): {}",
        if warm_speedup >= 2.0 { "PASS" } else { "FAIL" }
    );

    let mode_json: Vec<Json> = modes
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("mode", Json::str(m.name)),
                ("pairs_per_sec", Json::num(m.pairs_per_sec)),
                ("total_ms", Json::num(m.total_ms)),
                ("cache_hit_rate", Json::num(m.cache_hit_rate)),
                ("mean_batch_size", Json::num(m.mean_batch)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::str("serve_throughput")),
        (
            "scale",
            Json::str(format!("{:?}", cli.scale).to_lowercase()),
        ),
        ("seed", Json::num(cli.seed as f64)),
        ("pairs", Json::num(pairs.len() as f64)),
        ("distinct_sources", Json::num(sources.len() as f64)),
        (
            "threads",
            Json::num(ccsa_nn::parallel::default_threads() as f64),
        ),
        ("modes", Json::Arr(mode_json)),
        (
            "multi_thread",
            Json::obj(vec![
                ("threads", Json::num(mt_threads as f64)),
                ("mode", Json::str("engine_batched_warm")),
                ("pairs_per_sec", Json::num(mt_pps)),
                (
                    "speedup_vs_single_thread",
                    Json::num(mt_pps / single_warm_pps),
                ),
            ]),
        ),
        ("speedup_batched_cold_vs_naive", Json::num(cold_speedup)),
        ("speedup_batched_warm_vs_naive", Json::num(warm_speedup)),
        (
            "encode",
            Json::obj(vec![
                ("batch_size", Json::num(encode_batch_size as f64)),
                ("fused_trees_per_sec", Json::num(fused_tps)),
                ("pernode_trees_per_sec", Json::num(pernode_tps)),
                ("speedup_fused_vs_pernode", Json::num(fused_speedup)),
            ]),
        ),
    ]);
    let path = "BENCH_serve.json";
    std::fs::write(path, format!("{doc}\n")).expect("writing BENCH_serve.json");
    println!("\nwrote {path}");
}
