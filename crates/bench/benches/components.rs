//! Criterion micro-benchmarks for every substrate on the critical path:
//! parsing, interpretation, encoders (forward and backward), pair
//! sampling and t-SNE. These are the per-component performance numbers
//! behind the experiment binaries' wall-clock times, and double as
//! regression guards for the hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ccsa_corpus::dataset::{CorpusConfig, ProblemDataset};
use ccsa_corpus::gen::Style;
use ccsa_corpus::interp::{run_program, CostModel, Limits};
use ccsa_corpus::spec::{ProblemSpec, ProblemTag};
use ccsa_cppast::{parse_program, print_program, AstGraph};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pair::{sample_pairs, PairConfig};
use ccsa_model::tsne::{tsne, TsneConfig};
use ccsa_nn::gcn::{Activation, GcnConfig};
use ccsa_nn::param::{Ctx, Params};
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_tensor::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_source() -> String {
    let spec = ProblemSpec::curated(ProblemTag::E);
    let program = ccsa_corpus::problems::build(ProblemTag::E, 1, &Style::plain(), &spec.input);
    print_program(&program)
}

fn bench_frontend(c: &mut Criterion) {
    let src = sample_source();
    c.bench_function("parse_program", |b| {
        b.iter(|| parse_program(black_box(&src)).unwrap());
    });
    let program = parse_program(&src).unwrap();
    c.bench_function("ast_graph_flatten", |b| {
        b.iter(|| AstGraph::from_program(black_box(&program)));
    });
    c.bench_function("print_program", |b| {
        b.iter(|| print_program(black_box(&program)));
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let spec = ProblemSpec::curated(ProblemTag::E);
    let program = ccsa_corpus::problems::build(ProblemTag::E, 1, &Style::plain(), &spec.input);
    let mut rng = StdRng::seed_from_u64(1);
    let input = spec.generate_input(&mut rng);
    c.bench_function("interpret_problem_e", |b| {
        b.iter(|| {
            run_program(
                black_box(&program),
                black_box(&input),
                &CostModel::default(),
                &Limits::default(),
            )
            .unwrap()
        });
    });
}

#[allow(clippy::type_complexity)]
fn encoders() -> (Params, Comparator, Params, Comparator, AstGraph, AstGraph) {
    let tree_cfg = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 16,
        hidden: 16,
        layers: 3,
        direction: Direction::Alternating,
        sigmoid_candidate: false,
    });
    let gcn_cfg = EncoderConfig::Gcn(GcnConfig {
        embed_dim: 16,
        hidden: 16,
        layers: 6,
        activation: Activation::Relu,
    });
    let mut tree_params = Params::new();
    let tree = Comparator::new(&tree_cfg, &mut tree_params, &mut StdRng::seed_from_u64(2));
    let mut gcn_params = Params::new();
    let gcn = Comparator::new(&gcn_cfg, &mut gcn_params, &mut StdRng::seed_from_u64(2));
    let a = AstGraph::from_program(&parse_program(&sample_source()).unwrap());
    let spec = ProblemSpec::curated(ProblemTag::E);
    let slow = ccsa_corpus::problems::build(ProblemTag::E, 2, &Style::plain(), &spec.input);
    let b = AstGraph::from_program(&parse_program(&print_program(&slow)).unwrap());
    (tree_params, tree, gcn_params, gcn, a, b)
}

fn bench_encoders(c: &mut Criterion) {
    let (tree_params, tree, gcn_params, gcn, a, b) = encoders();
    c.bench_function("treelstm_pair_forward", |b2| {
        b2.iter(|| tree.predict(&tree_params, black_box(&a), black_box(&b)));
    });
    c.bench_function("treelstm_pair_forward_backward", |b2| {
        b2.iter(|| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &tree_params);
            let loss = tree.loss(&ctx, &a, &b, 1.0);
            let grads = tape.backward(loss);
            black_box(ctx.grads(&grads))
        });
    });
    c.bench_function("gcn_pair_forward", |b2| {
        b2.iter(|| gcn.predict(&gcn_params, black_box(&a), black_box(&b)));
    });
    c.bench_function("gcn_pair_forward_backward", |b2| {
        b2.iter(|| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &gcn_params);
            let loss = gcn.loss(&ctx, &a, &b, 0.0);
            let grads = tape.backward(loss);
            black_box(ctx.grads(&grads))
        });
    });
}

fn bench_pairs_and_tsne(c: &mut Criterion) {
    let ds = ProblemDataset::generate(ProblemSpec::curated(ProblemTag::H), &CorpusConfig::tiny(3))
        .unwrap();
    let indices: Vec<usize> = (0..ds.submissions.len()).collect();
    c.bench_function("sample_pairs_2000", |b| {
        b.iter(|| {
            sample_pairs(
                black_box(&ds.submissions),
                &indices,
                &PairConfig::default(),
                7,
            )
        });
    });

    let data: Vec<Vec<f32>> = (0..60)
        .map(|i| (0..16).map(|j| ((i * j) % 13) as f32 / 13.0).collect())
        .collect();
    c.bench_function("tsne_60pts_100iters", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                tsne(
                    &d,
                    &TsneConfig {
                        iterations: 100,
                        perplexity: 10.0,
                        ..TsneConfig::default()
                    },
                )
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_judging(c: &mut Criterion) {
    let spec = ProblemSpec::curated(ProblemTag::H);
    let program = ccsa_corpus::problems::build(ProblemTag::H, 0, &Style::plain(), &spec.input);
    let cfg = ccsa_corpus::judge::JudgeConfig {
        test_cases: 2,
        ..Default::default()
    };
    c.bench_function("judge_problem_h", |b| {
        b.iter(|| ccsa_corpus::judge::judge(black_box(&program), &spec, 5, &cfg).unwrap());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_interpreter, bench_encoders, bench_pairs_and_tsne, bench_judging
);
criterion_main!(benches);
