//! End-to-end smoke test of the experiment-sweep path.
//!
//! The `--scale full` sweeps had not been re-validated since the
//! workspace became hermetic (the vendored rand/proptest shims changed
//! every random stream). This pins the exact code path the sweep
//! binaries drive — `Cli::pipeline` → corpus generation → pair sampling
//! → fused-batch training of the 3-layer alternating tree-LSTM →
//! held-out evaluation — at `Scale::Tiny`, asserting the trained model
//! beats chance. If a shim/RNG change breaks the sweeps again, this
//! fails in CI instead of at paper-scale runtime.

use ccsa_bench::{Cli, Scale};
use ccsa_corpus::ProblemTag;
use ccsa_model::comparator::EncoderConfig;

#[test]
fn tiny_scale_sweep_path_trains_above_chance() {
    let cli = Cli {
        scale: Scale::Tiny,
        seed: 42,
        threads: 0,
    };
    let pipeline = cli.pipeline(EncoderConfig::TreeLstm(cli.treelstm_config()));
    let outcome = pipeline
        .run_single(ProblemTag::E)
        .expect("corpus generation");
    assert!(
        outcome.test_accuracy > 0.5,
        "sweep-path tiny run must beat chance, got {}",
        outcome.test_accuracy
    );
    assert!(
        outcome
            .report
            .epoch_loss
            .iter()
            .all(|l| l.is_finite() && *l > 0.0),
        "losses must stay finite: {:?}",
        outcome.report.epoch_loss
    );
}

#[test]
fn tiny_scale_gcn_baseline_runs_end_to_end() {
    // The GCN baseline shares the fused trainer (block-diagonal
    // union-graph encode_batch); a tiny run must stay finite and
    // produce probabilities.
    let cli = Cli {
        scale: Scale::Tiny,
        seed: 7,
        threads: 0,
    };
    let pipeline = cli.pipeline(EncoderConfig::Gcn(cli.gcn_config()));
    let outcome = pipeline
        .run_single(ProblemTag::H)
        .expect("corpus generation");
    assert!((0.0..=1.0).contains(&outcome.test_accuracy));
    assert!(outcome.report.epoch_loss.iter().all(|l| l.is_finite()));
}
