//! Family H — "Given Length and Sum of Digits" (Codeforces 489 C): find
//! the largest m-digit number with digit sum s. Algorithm group:
//! **dynamic programming**.
//!
//! Strategies (fastest → slowest):
//! 0. `greedy` — place the largest feasible digit at each position; O(m).
//! 1. `memo-recursion` — top-down reachability with memoisation.
//! 2. `dp-table` — full bottom-up table over (position, remaining sum).

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Function, Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        // Under the interpreter's honest call-frame costs the memoised
        // recursion is the slowest approach: every state pays ~10 call
        // dispatches, where the bottom-up table pays plain loop iterations.
        Strategy {
            name: "greedy",
            weight: 0.45,
            cost_rank: 0,
        },
        Strategy {
            name: "memo-recursion",
            weight: 0.30,
            cost_rank: 2,
        },
        Strategy {
            name: "dp-table",
            weight: 0.25,
            cost_rank: 1,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let m_max = input.n.clamp(4, 14) as i64;
    let s_cap = input.m.clamp(16, 60) as i64;
    let m = rng.random_range(4..=m_max);
    // Keep the digit sum in the dense regime (s ≥ 4m): tiny sums make the
    // memoised recursion's `left < 0` prune dominate and the strategy
    // ordering input-dependent.
    let s = rng.random_range((4 * m).min(s_cap - 1)..=(9 * m).min(s_cap));
    vec![InputTok::Int(m), InputTok::Int(s)]
}

/// Emit the digits of the greedy maximal number and a checksum.
///
/// All strategies print `sum of digit·(index+1)` so outputs are comparable
/// across approaches without printing m-digit numbers.
fn checksum_output(style: &Style) -> Vec<Stmt> {
    vec![
        b::decl(Type::Int, "chk", Some(b::int(0))),
        b::for_i(
            "i",
            b::int(0),
            b::size_of(b::var("digits")),
            vec![b::expr(b::add_assign(
                b::var("chk"),
                b::mul(
                    b::idx(b::var("digits"), b::var("i")),
                    b::add(b::var("i"), b::int(1)),
                ),
            ))],
        ),
        out(b::var("chk"), style),
    ]
}

/// `long long best(long long pos, long long left)` — memoised feasibility:
/// can `pos` remaining digits sum to `left`? Memo table flattened to
/// `memo[pos * (S + 1) + left]` with 0 = unknown, 1 = yes, 2 = no.
fn memo_function() -> Function {
    b::func(
        Type::Int,
        "feasible",
        vec![
            (Type::vec_int(), "memo"),
            (Type::Int, "S"),
            (Type::Int, "pos"),
            (Type::Int, "left"),
        ],
        vec![
            // No 9·pos upper-bound prune: the textbook memo explores every
            // (pos, left) state, paying full call-dispatch costs — which is
            // what makes this approach measurably slower than the table.
            b::if_then(
                b::lt(b::var("left"), b::int(0)),
                vec![b::ret(Some(b::int(0)))],
            ),
            b::if_then(
                b::eq(b::var("pos"), b::int(0)),
                vec![b::ret(Some(b::ternary(
                    b::eq(b::var("left"), b::int(0)),
                    b::int(1),
                    b::int(0),
                )))],
            ),
            b::decl(
                Type::Int,
                "key",
                Some(b::add(
                    b::mul(b::var("pos"), b::add(b::var("S"), b::int(1))),
                    b::var("left"),
                )),
            ),
            b::if_then(
                b::ne(b::idx(b::var("memo"), b::var("key")), b::int(0)),
                vec![b::ret(Some(b::sub(
                    b::idx(b::var("memo"), b::var("key")),
                    b::int(1),
                )))],
            ),
            b::decl(Type::Int, "found", Some(b::int(0))),
            b::for_i_incl(
                "d",
                b::int(0),
                b::int(9),
                vec![b::if_then(
                    b::eq(
                        b::call(
                            "feasible",
                            vec![
                                b::var("memo"),
                                b::var("S"),
                                b::sub(b::var("pos"), b::int(1)),
                                b::sub(b::var("left"), b::var("d")),
                            ],
                        ),
                        b::int(1),
                    ),
                    vec![b::expr(b::assign(b::var("found"), b::int(1)))],
                )],
            ),
            b::expr(b::assign(
                b::idx(b::var("memo"), b::var("key")),
                b::add(b::var("found"), b::int(1)),
            )),
            b::ret(Some(b::var("found"))),
        ],
    )
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut body: Vec<Stmt> = vec![
        b::decl(Type::Int, "m", None),
        b::decl(Type::Int, "s", None),
        b::cin(vec![b::var("m"), b::var("s")]),
        b::decl(Type::vec_int(), "digits", None),
    ];

    let mut functions: Vec<Function> = Vec::new();

    match strategy {
        0 => {
            // Greedy: digit = min(9, left), but keep enough for the rest
            // (each remaining position contributes ≥ 0, so no constraint
            // for the maximal number).
            body.extend([
                b::decl(Type::Int, "left", Some(b::var("s"))),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("m"),
                    vec![
                        b::decl(
                            Type::Int,
                            "d",
                            Some(b::call("min", vec![b::int(9), b::var("left")])),
                        ),
                        b::expr(b::push_back(b::var("digits"), b::var("d"))),
                        b::expr(b::sub_assign(b::var("left"), b::var("d"))),
                    ],
                ),
            ]);
        }
        1 => {
            functions.push(memo_function());
            body.extend([
                b::decl_ctor(
                    Type::vec_int(),
                    "memo",
                    vec![
                        b::mul(
                            b::add(b::var("m"), b::int(1)),
                            b::add(b::var("s"), b::int(1)),
                        ),
                        b::int(0),
                    ],
                ),
                b::decl(Type::Int, "left", Some(b::var("s"))),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("m"),
                    vec![
                        b::decl(Type::Int, "chosen", Some(b::int(0))),
                        b::for_desc(
                            "d",
                            b::int(9),
                            b::int(0),
                            vec![b::if_then(
                                b::and(
                                    b::eq(b::var("chosen"), b::int(0)),
                                    b::and(
                                        b::ge(b::sub(b::var("left"), b::var("d")), b::int(0)),
                                        b::eq(
                                            b::call(
                                                "feasible",
                                                vec![
                                                    b::var("memo"),
                                                    b::var("s"),
                                                    b::sub(
                                                        b::sub(b::var("m"), b::var("i")),
                                                        b::int(1),
                                                    ),
                                                    b::sub(b::var("left"), b::var("d")),
                                                ],
                                            ),
                                            b::int(1),
                                        ),
                                    ),
                                ),
                                vec![
                                    b::expr(b::push_back(b::var("digits"), b::var("d"))),
                                    b::expr(b::sub_assign(b::var("left"), b::var("d"))),
                                    b::expr(b::assign(b::var("chosen"), b::int(1))),
                                ],
                            )],
                        ),
                    ],
                ),
            ]);
        }
        2 => {
            // Bottom-up reachability table dp[pos][sum] then reconstruct.
            body.extend([
                b::decl_ctor(
                    Type::vec_vec_int(),
                    "dp",
                    vec![b::add(b::var("m"), b::int(1))],
                ),
                b::for_i_incl(
                    "i",
                    b::int(0),
                    b::var("m"),
                    vec![b::expr(b::method(
                        b::idx(b::var("dp"), b::var("i")),
                        "resize",
                        vec![b::add(b::var("s"), b::int(1))],
                    ))],
                ),
                b::expr(b::assign(
                    b::idx2(b::var("dp"), b::int(0), b::int(0)),
                    b::int(1),
                )),
                b::for_i_incl(
                    "i",
                    b::int(1),
                    b::var("m"),
                    vec![b::for_i_incl(
                        "t",
                        b::int(0),
                        b::var("s"),
                        vec![b::for_i_incl(
                            "d",
                            b::int(0),
                            b::int(9),
                            vec![b::if_then(
                                b::and(
                                    b::ge(b::sub(b::var("t"), b::var("d")), b::int(0)),
                                    b::eq(
                                        b::idx2(
                                            b::var("dp"),
                                            b::sub(b::var("i"), b::int(1)),
                                            b::sub(b::var("t"), b::var("d")),
                                        ),
                                        b::int(1),
                                    ),
                                ),
                                vec![b::expr(b::assign(
                                    b::idx2(b::var("dp"), b::var("i"), b::var("t")),
                                    b::int(1),
                                ))],
                            )],
                        )],
                    )],
                ),
                b::decl(Type::Int, "left", Some(b::var("s"))),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("m"),
                    vec![
                        b::decl(Type::Int, "chosen", Some(b::int(0))),
                        b::for_desc(
                            "d",
                            b::int(9),
                            b::int(0),
                            vec![b::if_then(
                                b::and(
                                    b::eq(b::var("chosen"), b::int(0)),
                                    b::and(
                                        b::ge(b::sub(b::var("left"), b::var("d")), b::int(0)),
                                        b::eq(
                                            b::idx2(
                                                b::var("dp"),
                                                b::sub(b::sub(b::var("m"), b::var("i")), b::int(1)),
                                                b::sub(b::var("left"), b::var("d")),
                                            ),
                                            b::int(1),
                                        ),
                                    ),
                                ),
                                vec![
                                    b::expr(b::push_back(b::var("digits"), b::var("d"))),
                                    b::expr(b::sub_assign(b::var("left"), b::var("d"))),
                                    b::expr(b::assign(b::var("chosen"), b::int(1))),
                                ],
                            )],
                        ),
                    ],
                ),
            ]);
        }
        other => panic!("family H has no strategy {other}"),
    }

    body.extend(checksum_output(style));
    body.push(b::ret(Some(b::int(0))));

    functions.push(b::func(Type::Int, "main", vec![], body));
    b::program(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};

    fn greedy_checksum(m: i64, s: i64) -> i64 {
        let mut left = s;
        let mut chk = 0;
        for i in 0..m {
            let d = left.min(9);
            left -= d;
            chk += d * (i + 1);
        }
        chk
    }

    #[test]
    fn strategies_agree_with_greedy_construction() {
        for (m, s) in [(2, 11), (5, 1), (6, 54), (9, 30), (3, 27)] {
            let toks = vec![InputTok::Int(m), InputTok::Int(s)];
            let spec = InputSpec {
                n: 14,
                m: 60,
                max_value: 0,
                word_len: 0,
            };
            let expected = greedy_checksum(m, s).to_string();
            for strat in 0..3 {
                let p = build(strat, &Style::plain(), &spec);
                let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                    .unwrap_or_else(|e| panic!("m={m} s={s} strategy {strat}: {e}"));
                assert_eq!(got.output.trim(), expected, "m={m} s={s} strategy {strat}");
            }
        }
    }
}
