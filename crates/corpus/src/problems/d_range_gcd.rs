//! Family D — range-GCD queries ("Bash and a Tough Math Puzzle",
//! Codeforces 914 D flavour). Algorithm group: **data structures and
//! number theory**.
//!
//! Strategies (fastest → slowest at judged input sizes):
//! 0. `sqrt-blocks` — block GCDs, queries touch ≤ 2B + n/B elements.
//! 1. `segment-tree` — recursive build + O(log n) queries. Asymptotically
//!    the winner, but at n ≈ 100 the recursion constant (call frames,
//!    midpoint divisions) leaves it behind the flat block loops — the same
//!    crossover real machines exhibit for small inputs.
//! 2. `naive-scan` — recompute the GCD over the full range per query.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Function, Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::{out, read_int_array};

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "segment-tree",
            weight: 0.35,
            cost_rank: 1,
        },
        Strategy {
            name: "sqrt-blocks",
            weight: 0.35,
            cost_rank: 0,
        },
        Strategy {
            name: "naive-scan",
            weight: 0.30,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n.max(4);
    let q = input.m.max(1);
    let max = input.max_value.max(8);
    let mut toks = vec![InputTok::Int(n as i64)];
    for _ in 0..n {
        // Plant a common factor so GCD chains stay non-trivial.
        let g = [2, 3, 4, 6][rng.random_range(0..4)];
        toks.push(InputTok::Int(g * rng.random_range(1..=max / 2)));
    }
    toks.push(InputTok::Int(q as i64));
    for _ in 0..q {
        let l = rng.random_range(0..n as i64 - 1);
        let span = rng.random_range(1..=(n as i64 - l - 1).max(1));
        toks.push(InputTok::Int(l));
        toks.push(InputTok::Int((l + span).min(n as i64 - 1)));
    }
    toks
}

/// The Euclid helper `long long g(long long a, long long b)`.
fn gcd_function() -> Function {
    b::func(
        Type::Int,
        "g",
        vec![(Type::Int, "x"), (Type::Int, "y")],
        vec![
            b::while_loop(
                b::ne(b::var("y"), b::int(0)),
                vec![
                    b::decl(Type::Int, "t", Some(b::rem(b::var("x"), b::var("y")))),
                    b::expr(b::assign(b::var("x"), b::var("y"))),
                    b::expr(b::assign(b::var("y"), b::var("t"))),
                ],
            ),
            b::ret(Some(b::ternary(
                b::lt(b::var("x"), b::int(0)),
                b::neg(b::var("x")),
                b::var("x"),
            ))),
        ],
    )
}

fn segment_tree_functions() -> Vec<Function> {
    let build = b::func(
        Type::Void,
        "buildTree",
        vec![
            (Type::vec_int(), "t"),
            (Type::vec_int(), "a"),
            (Type::Int, "node"),
            (Type::Int, "l"),
            (Type::Int, "r"),
        ],
        vec![
            b::if_then(
                b::eq(b::var("l"), b::var("r")),
                vec![
                    b::expr(b::assign(
                        b::idx(b::var("t"), b::var("node")),
                        b::idx(b::var("a"), b::var("l")),
                    )),
                    b::ret(None),
                ],
            ),
            b::decl(
                Type::Int,
                "m",
                Some(b::div(b::add(b::var("l"), b::var("r")), b::int(2))),
            ),
            b::expr(b::call(
                "buildTree",
                vec![
                    b::var("t"),
                    b::var("a"),
                    b::mul(b::var("node"), b::int(2)),
                    b::var("l"),
                    b::var("m"),
                ],
            )),
            b::expr(b::call(
                "buildTree",
                vec![
                    b::var("t"),
                    b::var("a"),
                    b::add(b::mul(b::var("node"), b::int(2)), b::int(1)),
                    b::add(b::var("m"), b::int(1)),
                    b::var("r"),
                ],
            )),
            b::expr(b::assign(
                b::idx(b::var("t"), b::var("node")),
                b::call(
                    "g",
                    vec![
                        b::idx(b::var("t"), b::mul(b::var("node"), b::int(2))),
                        b::idx(
                            b::var("t"),
                            b::add(b::mul(b::var("node"), b::int(2)), b::int(1)),
                        ),
                    ],
                ),
            )),
        ],
    );
    let query = b::func(
        Type::Int,
        "queryTree",
        vec![
            (Type::vec_int(), "t"),
            (Type::Int, "node"),
            (Type::Int, "l"),
            (Type::Int, "r"),
            (Type::Int, "ql"),
            (Type::Int, "qr"),
        ],
        vec![
            b::if_then(
                b::or(
                    b::lt(b::var("qr"), b::var("l")),
                    b::lt(b::var("r"), b::var("ql")),
                ),
                vec![b::ret(Some(b::int(0)))],
            ),
            b::if_then(
                b::and(
                    b::le(b::var("ql"), b::var("l")),
                    b::le(b::var("r"), b::var("qr")),
                ),
                vec![b::ret(Some(b::idx(b::var("t"), b::var("node"))))],
            ),
            b::decl(
                Type::Int,
                "m",
                Some(b::div(b::add(b::var("l"), b::var("r")), b::int(2))),
            ),
            b::ret(Some(b::call(
                "g",
                vec![
                    b::call(
                        "queryTree",
                        vec![
                            b::var("t"),
                            b::mul(b::var("node"), b::int(2)),
                            b::var("l"),
                            b::var("m"),
                            b::var("ql"),
                            b::var("qr"),
                        ],
                    ),
                    b::call(
                        "queryTree",
                        vec![
                            b::var("t"),
                            b::add(b::mul(b::var("node"), b::int(2)), b::int(1)),
                            b::add(b::var("m"), b::int(1)),
                            b::var("r"),
                            b::var("ql"),
                            b::var("qr"),
                        ],
                    ),
                ],
            ))),
        ],
    );
    vec![build, query]
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut body: Vec<Stmt> = read_int_array(style);
    body.push(b::decl(Type::Int, "q", None));
    body.push(b::cin(vec![b::var("q")]));
    body.push(b::decl(Type::Int, "ans", Some(b::int(0))));

    let mut per_query: Vec<Stmt> = vec![
        b::decl(Type::Int, "l", None),
        b::decl(Type::Int, "r", None),
        b::cin(vec![b::var("l"), b::var("r")]),
    ];

    let mut functions: Vec<Function> = vec![gcd_function()];

    match strategy {
        0 => {
            functions.extend(segment_tree_functions());
            body.push(b::decl_ctor(
                Type::vec_int(),
                "t",
                vec![b::mul(b::var("n"), b::int(4)), b::int(0)],
            ));
            body.push(b::expr(b::call(
                "buildTree",
                vec![
                    b::var("t"),
                    b::var("a"),
                    b::int(1),
                    b::int(0),
                    b::sub(b::var("n"), b::int(1)),
                ],
            )));
            per_query.push(b::expr(b::add_assign(
                b::var("ans"),
                b::call(
                    "queryTree",
                    vec![
                        b::var("t"),
                        b::int(1),
                        b::int(0),
                        b::sub(b::var("n"), b::int(1)),
                        b::var("l"),
                        b::var("r"),
                    ],
                ),
            )));
        }
        1 => {
            body.extend([
                b::decl(Type::Int, "B", Some(b::int(10))),
                b::decl(
                    Type::Int,
                    "nb",
                    Some(b::div(
                        b::add(b::var("n"), b::sub(b::var("B"), b::int(1))),
                        b::var("B"),
                    )),
                ),
                b::decl_ctor(Type::vec_int(), "bg", vec![b::var("nb"), b::int(0)]),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![b::expr(b::assign(
                        b::idx(b::var("bg"), b::div(b::var("i"), b::var("B"))),
                        b::call(
                            "g",
                            vec![
                                b::idx(b::var("bg"), b::div(b::var("i"), b::var("B"))),
                                b::idx(b::var("a"), b::var("i")),
                            ],
                        ),
                    ))],
                ),
            ]);
            per_query.extend([
                b::decl(Type::Int, "res", Some(b::int(0))),
                b::decl(Type::Int, "i", Some(b::var("l"))),
                b::while_loop(
                    b::le(b::var("i"), b::var("r")),
                    vec![b::if_else(
                        b::and(
                            b::eq(b::rem(b::var("i"), b::var("B")), b::int(0)),
                            b::le(
                                b::sub(b::add(b::var("i"), b::var("B")), b::int(1)),
                                b::var("r"),
                            ),
                        ),
                        vec![
                            b::expr(b::assign(
                                b::var("res"),
                                b::call(
                                    "g",
                                    vec![
                                        b::var("res"),
                                        b::idx(b::var("bg"), b::div(b::var("i"), b::var("B"))),
                                    ],
                                ),
                            )),
                            b::expr(b::add_assign(b::var("i"), b::var("B"))),
                        ],
                        vec![
                            b::expr(b::assign(
                                b::var("res"),
                                b::call("g", vec![b::var("res"), b::idx(b::var("a"), b::var("i"))]),
                            )),
                            b::expr(b::post_inc(b::var("i"))),
                        ],
                    )],
                ),
                b::expr(b::add_assign(b::var("ans"), b::var("res"))),
            ]);
        }
        2 => {
            per_query.extend([
                b::decl(Type::Int, "res", Some(b::int(0))),
                b::for_custom(
                    "i",
                    b::var("l"),
                    b::le(b::var("i"), b::var("r")),
                    b::post_inc(b::var("i")),
                    vec![b::expr(b::assign(
                        b::var("res"),
                        b::call("g", vec![b::var("res"), b::idx(b::var("a"), b::var("i"))]),
                    ))],
                ),
                b::expr(b::add_assign(b::var("ans"), b::var("res"))),
            ]);
        }
        other => panic!("family D has no strategy {other}"),
    }

    body.push(b::for_i("qq", b::int(0), b::var("q"), per_query));
    body.push(out(b::var("ans"), style));
    body.push(b::ret(Some(b::int(0))));

    functions.push(b::func(Type::Int, "main", vec![], body));
    b::program(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn ground_truth(toks: &[InputTok]) -> i64 {
        let ints: Vec<i64> = toks
            .iter()
            .map(|t| match t {
                InputTok::Int(v) => *v,
                InputTok::Str(_) => panic!(),
            })
            .collect();
        let n = ints[0] as usize;
        let a = &ints[1..1 + n];
        let q = ints[1 + n] as usize;
        let mut ans = 0;
        for k in 0..q {
            let l = ints[2 + n + 2 * k] as usize;
            let r = ints[3 + n + 2 * k] as usize;
            let mut g = 0i64;
            for &v in &a[l..=r] {
                g = gcd(g, v);
            }
            ans += g;
        }
        ans
    }

    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a.abs()
        } else {
            gcd(b, a % b)
        }
    }

    #[test]
    fn strategies_agree_on_gcd_sums() {
        let spec = InputSpec {
            n: 30,
            m: 12,
            max_value: 40,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let toks = generate_input(&spec, &mut rng);
        let expected = ground_truth(&toks).to_string();
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), expected, "strategy {s} wrong");
        }
    }

    #[test]
    fn single_element_ranges() {
        let toks = vec![
            InputTok::Int(3),
            InputTok::Int(6),
            InputTok::Int(10),
            InputTok::Int(15),
            InputTok::Int(2),
            InputTok::Int(1),
            InputTok::Int(1),
            InputTok::Int(0),
            InputTok::Int(2),
        ];
        let spec = InputSpec {
            n: 3,
            m: 2,
            max_value: 20,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            // gcd(10)=10; gcd(6,10,15)=1 → 11.
            assert_eq!(got.output.trim(), "11", "strategy {s}");
        }
    }
}
