//! Family B — "T-Prime" (Codeforces 230 B): decide for each query number
//! whether it is the square of a prime. Algorithm group: **binary search
//! and number theory**.
//!
//! Strategies (fastest → slowest):
//! 0. `sieve+table` — sieve primes once, mark their squares in a direct
//!    lookup table, O(1) per query.
//! 1. `sqrt-trial` — integer square root, then trial division of the root.
//! 2. `incremental` — find the root by counting up, then naive primality.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "sieve+table",
            weight: 0.30,
            cost_rank: 0,
        },
        Strategy {
            name: "sqrt-trial",
            weight: 0.45,
            cost_rank: 1,
        },
        Strategy {
            name: "incremental",
            weight: 0.25,
            cost_rank: 2,
        },
    ]
}

fn isqrt(v: i64) -> i64 {
    (v as f64).sqrt() as i64
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n;
    let max = input.max_value.max(100);
    let root_max = isqrt(max).max(10);
    // Small primes up to root_max for planting true t-primes.
    let primes: Vec<i64> = (2..=root_max)
        .filter(|&p| (2..p).all(|d| p % d != 0))
        .collect();
    let mut toks = vec![InputTok::Int(n as i64)];
    for _ in 0..n {
        let x = if rng.random_bool(0.4) && !primes.is_empty() {
            let p = primes[rng.random_range(0..primes.len())];
            p * p
        } else {
            rng.random_range(1..=max)
        };
        toks.push(InputTok::Int(x));
    }
    toks
}

pub(crate) fn build(strategy: usize, style: &Style, input: &InputSpec) -> Program {
    let lim = isqrt(input.max_value.max(100)).max(10);
    let mut body: Vec<Stmt> = vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl(Type::Int, "cnt", Some(b::int(0))),
    ];

    let mut per_query: Vec<Stmt> = vec![b::decl(Type::Int, "x", None), b::cin(vec![b::var("x")])];

    match strategy {
        0 => {
            // Sieve of Eratosthenes up to √max, squares of primes, then a
            // binary search per query.
            body.splice(
                2..2,
                [
                    b::decl(Type::Int, "LIM", Some(b::int(lim))),
                    b::decl_ctor(
                        Type::vec_int(),
                        "pr",
                        vec![b::add(b::var("LIM"), b::int(1)), b::int(1)],
                    ),
                    b::expr(b::assign(b::idx(b::var("pr"), b::int(0)), b::int(0))),
                    b::expr(b::assign(b::idx(b::var("pr"), b::int(1)), b::int(0))),
                    b::for_custom(
                        "i",
                        b::int(2),
                        b::le(b::mul(b::var("i"), b::var("i")), b::var("LIM")),
                        b::post_inc(b::var("i")),
                        vec![b::if_then(
                            b::eq(b::idx(b::var("pr"), b::var("i")), b::int(1)),
                            vec![b::for_custom(
                                "j",
                                b::mul(b::var("i"), b::var("i")),
                                b::le(b::var("j"), b::var("LIM")),
                                b::assign(b::var("j"), b::add(b::var("j"), b::var("i"))),
                                vec![b::expr(b::assign(
                                    b::idx(b::var("pr"), b::var("j")),
                                    b::int(0),
                                ))],
                            )],
                        )],
                    ),
                    b::decl(Type::Int, "MAXV", Some(b::int(input.max_value.max(100)))),
                    b::decl_ctor(
                        Type::vec_int(),
                        "isTp",
                        vec![b::add(b::var("MAXV"), b::int(1)), b::int(0)],
                    ),
                    b::for_i_incl(
                        "i",
                        b::int(2),
                        b::var("LIM"),
                        vec![b::if_then(
                            b::eq(b::idx(b::var("pr"), b::var("i")), b::int(1)),
                            vec![b::expr(b::assign(
                                b::idx(b::var("isTp"), b::mul(b::var("i"), b::var("i"))),
                                b::int(1),
                            ))],
                        )],
                    ),
                ],
            );
            per_query.push(b::expr(b::add_assign(
                b::var("cnt"),
                b::idx(b::var("isTp"), b::var("x")),
            )));
        }
        1 => {
            // r = (long long)sqrt((double)x), adjust, then trial-divide r.
            per_query.extend([
                b::decl(
                    Type::Int,
                    "r",
                    Some(b::cast(
                        Type::Int,
                        b::call("sqrt", vec![b::cast(Type::Double, b::var("x"))]),
                    )),
                ),
                b::while_loop(
                    b::gt(b::mul(b::var("r"), b::var("r")), b::var("x")),
                    vec![b::expr(b::post_dec(b::var("r")))],
                ),
                b::while_loop(
                    b::le(
                        b::mul(
                            b::add(b::var("r"), b::int(1)),
                            b::add(b::var("r"), b::int(1)),
                        ),
                        b::var("x"),
                    ),
                    vec![b::expr(b::post_inc(b::var("r")))],
                ),
                b::decl(Type::Int, "ok", Some(b::int(0))),
                b::if_then(
                    b::and(
                        b::eq(b::mul(b::var("r"), b::var("r")), b::var("x")),
                        b::ge(b::var("r"), b::int(2)),
                    ),
                    vec![
                        b::expr(b::assign(b::var("ok"), b::int(1))),
                        b::for_custom(
                            "d",
                            b::int(2),
                            b::le(b::mul(b::var("d"), b::var("d")), b::var("r")),
                            b::post_inc(b::var("d")),
                            vec![b::if_then(
                                b::eq(b::rem(b::var("r"), b::var("d")), b::int(0)),
                                vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                            )],
                        ),
                    ],
                ),
                b::expr(b::add_assign(b::var("cnt"), b::var("ok"))),
            ]);
        }
        2 => {
            // Find the root by incrementing, then check primality with a
            // full scan of divisors below r.
            per_query.extend([
                b::decl(Type::Int, "r", Some(b::int(0))),
                b::while_loop(
                    b::lt(b::mul(b::var("r"), b::var("r")), b::var("x")),
                    vec![b::expr(b::post_inc(b::var("r")))],
                ),
                b::decl(Type::Int, "ok", Some(b::int(0))),
                b::if_then(
                    b::and(
                        b::eq(b::mul(b::var("r"), b::var("r")), b::var("x")),
                        b::ge(b::var("r"), b::int(2)),
                    ),
                    vec![
                        b::expr(b::assign(b::var("ok"), b::int(1))),
                        b::for_i(
                            "d",
                            b::int(2),
                            b::var("r"),
                            vec![b::if_then(
                                b::eq(b::rem(b::var("r"), b::var("d")), b::int(0)),
                                vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                            )],
                        ),
                    ],
                ),
                b::expr(b::add_assign(b::var("cnt"), b::var("ok"))),
            ]);
        }
        other => panic!("family B has no strategy {other}"),
    }

    if style.temp_var {
        per_query.push(b::decl(Type::Int, "snapshot", Some(b::var("cnt"))));
        per_query.push(b::if_then(
            b::lt(b::var("snapshot"), b::int(0)),
            vec![b::cout(vec![b::str_lit("")])],
        ));
    }

    body.push(b::for_i("q", b::int(0), b::var("n"), per_query));
    body.push(out(b::var("cnt"), style));
    body.push(b::ret(Some(b::int(0))));
    b::program(vec![b::func(Type::Int, "main", vec![], body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn tprime_count(toks: &[InputTok]) -> i64 {
        toks[1..]
            .iter()
            .filter(|t| {
                let InputTok::Int(x) = t else { return false };
                let r = isqrt(*x);
                r >= 2 && r * r == *x && (2..r).all(|d| r % d != 0)
            })
            .count() as i64
    }

    #[test]
    fn strategies_agree_with_ground_truth() {
        let spec = InputSpec {
            n: 25,
            m: 0,
            max_value: 10_000,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let toks = generate_input(&spec, &mut rng);
        let truth = tprime_count(&toks);
        assert!(truth > 0, "test input should contain t-primes");
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), truth.to_string(), "strategy {s} wrong");
        }
    }

    #[test]
    fn edge_values_handled() {
        // x = 1 (not a t-prime), x = 4 (t-prime), x = 9 (t-prime),
        // x = 16 (square of composite).
        let toks = vec![
            InputTok::Int(4),
            InputTok::Int(1),
            InputTok::Int(4),
            InputTok::Int(9),
            InputTok::Int(16),
        ];
        let spec = InputSpec {
            n: 4,
            m: 0,
            max_value: 100,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(got.output.trim(), "2", "strategy {s}");
        }
    }
}
