//! Family A — "Registration" (Codeforces 4 C): online deduplication of a
//! stream of names. Algorithm group: **hashing**.
//!
//! Strategies (fastest → slowest):
//! 0. `buckets` — hash each name, chain into 97 buckets, scan one bucket.
//! 1. `sorted-insert` — hash, binary-search a sorted vector, bubble-insert.
//! 2. `linear-strings` — no hashing; linearly compare full strings.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Expr, Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "buckets",
            weight: 0.40,
            cost_rank: 0,
        },
        Strategy {
            name: "sorted-insert",
            weight: 0.35,
            cost_rank: 1,
        },
        Strategy {
            name: "linear-strings",
            weight: 0.25,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n;
    let pool: Vec<String> = (0..(n * 3 / 5).max(1))
        .map(|_| {
            (0..input.word_len)
                .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
                .collect()
        })
        .collect();
    let mut toks = vec![InputTok::Int(n as i64)];
    for _ in 0..n {
        let w = pool[rng.random_range(0..pool.len())].clone();
        toks.push(InputTok::Str(w));
    }
    toks
}

/// The inline rolling-hash loop `for (i …) h = h * 131 + s[i];`.
fn hash_loop(src: &str, dst: &str) -> Vec<Stmt> {
    vec![
        b::decl(Type::Int, dst, Some(b::int(0))),
        b::for_i(
            "hi",
            b::int(0),
            b::method(b::var(src), "length", vec![]),
            vec![b::expr(b::assign(
                b::var(dst),
                b::add(
                    b::mul(b::var(dst), b::int(131)),
                    b::idx(b::var(src), b::var("hi")),
                ),
            ))],
        ),
    ]
}

/// Hash via helper function when the style asks for one.
fn hash_of(style: &Style, word_stmts: &mut Vec<Stmt>) -> Expr {
    if style.helper_fn {
        word_stmts.push(b::decl(
            Type::Int,
            "h",
            Some(b::call("hashWord", vec![b::var("s")])),
        ));
    } else {
        word_stmts.extend(hash_loop("s", "h"));
    }
    b::var("h")
}

fn helper_function() -> ccsa_cppast::ast::Function {
    let mut body = hash_loop("w", "acc");
    body.push(b::ret(Some(b::var("acc"))));
    b::func(Type::Int, "hashWord", vec![(Type::Str, "w")], body)
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut main_body: Vec<Stmt> = vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl(Type::Int, "dups", Some(b::int(0))),
    ];

    let mut per_word: Vec<Stmt> = vec![b::decl(Type::Str, "s", None), b::cin(vec![b::var("s")])];

    match strategy {
        0 => {
            main_body.insert(
                0,
                b::decl_ctor(Type::vec_vec_int(), "buckets", vec![b::int(97)]),
            );
            let h = hash_of(style, &mut per_word);
            per_word.extend([
                b::decl(Type::Int, "bk", Some(b::rem(h, b::int(97)))),
                b::decl(Type::Int, "found", Some(b::int(0))),
                b::for_i(
                    "j",
                    b::int(0),
                    b::size_of(b::idx(b::var("buckets"), b::var("bk"))),
                    vec![b::if_then(
                        b::eq(
                            b::idx2(b::var("buckets"), b::var("bk"), b::var("j")),
                            b::var("h"),
                        ),
                        vec![b::expr(b::assign(b::var("found"), b::int(1)))],
                    )],
                ),
                b::if_else(
                    b::eq(b::var("found"), b::int(1)),
                    vec![b::expr(b::post_inc(b::var("dups")))],
                    vec![b::expr(b::push_back(
                        b::idx(b::var("buckets"), b::var("bk")),
                        b::var("h"),
                    ))],
                ),
            ]);
        }
        1 => {
            main_body.insert(0, b::decl(Type::vec_int(), "seen", None));
            let h = hash_of(style, &mut per_word);
            per_word.extend([
                b::decl(Type::Int, "lo", Some(b::int(0))),
                b::decl(Type::Int, "hi", Some(b::size_of(b::var("seen")))),
                b::while_loop(
                    b::lt(b::var("lo"), b::var("hi")),
                    vec![
                        b::decl(
                            Type::Int,
                            "mid",
                            Some(b::div(b::add(b::var("lo"), b::var("hi")), b::int(2))),
                        ),
                        b::if_else(
                            b::lt(b::idx(b::var("seen"), b::var("mid")), h.clone()),
                            vec![b::expr(b::assign(
                                b::var("lo"),
                                b::add(b::var("mid"), b::int(1)),
                            ))],
                            vec![b::expr(b::assign(b::var("hi"), b::var("mid")))],
                        ),
                    ],
                ),
                b::decl(Type::Int, "found", Some(b::int(0))),
                b::if_then(
                    b::lt(b::var("lo"), b::size_of(b::var("seen"))),
                    vec![b::if_then(
                        b::eq(b::idx(b::var("seen"), b::var("lo")), b::var("h")),
                        vec![b::expr(b::assign(b::var("found"), b::int(1)))],
                    )],
                ),
                b::if_else(
                    b::eq(b::var("found"), b::int(1)),
                    vec![b::expr(b::post_inc(b::var("dups")))],
                    vec![
                        b::expr(b::push_back(b::var("seen"), b::var("h"))),
                        b::decl(
                            Type::Int,
                            "j",
                            Some(b::sub(b::size_of(b::var("seen")), b::int(1))),
                        ),
                        b::while_loop(
                            b::and(
                                b::gt(b::var("j"), b::int(0)),
                                b::gt(
                                    b::idx(b::var("seen"), b::sub(b::var("j"), b::int(1))),
                                    b::idx(b::var("seen"), b::var("j")),
                                ),
                            ),
                            vec![
                                b::decl(
                                    Type::Int,
                                    "t",
                                    Some(b::idx(b::var("seen"), b::sub(b::var("j"), b::int(1)))),
                                ),
                                b::expr(b::assign(
                                    b::idx(b::var("seen"), b::sub(b::var("j"), b::int(1))),
                                    b::idx(b::var("seen"), b::var("j")),
                                )),
                                b::expr(b::assign(
                                    b::idx(b::var("seen"), b::var("j")),
                                    b::var("t"),
                                )),
                                b::expr(b::post_dec(b::var("j"))),
                            ],
                        ),
                    ],
                ),
            ]);
        }
        2 => {
            main_body.insert(0, b::decl(Type::Vec(Box::new(Type::Str)), "names", None));
            per_word.extend([
                b::decl(Type::Int, "found", Some(b::int(0))),
                b::for_i(
                    "j",
                    b::int(0),
                    b::size_of(b::var("names")),
                    vec![b::if_then(
                        b::eq(b::idx(b::var("names"), b::var("j")), b::var("s")),
                        vec![b::expr(b::assign(b::var("found"), b::int(1)))],
                    )],
                ),
                b::if_else(
                    b::eq(b::var("found"), b::int(1)),
                    vec![b::expr(b::post_inc(b::var("dups")))],
                    vec![b::expr(b::push_back(b::var("names"), b::var("s")))],
                ),
            ]);
        }
        other => panic!("family A has no strategy {other}"),
    }

    main_body.push(b::for_i("q", b::int(0), b::var("n"), per_word));
    if style.extra_scan && strategy != 2 {
        // Bookkeeping pass over whatever integer store the strategy keeps.
        let store = if strategy == 0 { "dupsAudit" } else { "seen" };
        if strategy == 1 {
            main_body.push(b::decl(Type::Int, "audit", Some(b::int(0))));
            main_body.push(b::for_i(
                "sx",
                b::int(0),
                b::size_of(b::var(store)),
                vec![b::expr(b::add_assign(
                    b::var("audit"),
                    b::idx(b::var(store), b::var("sx")),
                ))],
            ));
            main_body.push(b::if_then(
                b::lt(b::var("audit"), b::int(0)),
                vec![b::cout(vec![b::str_lit("")])],
            ));
        }
    }
    main_body.push(out(b::var("dups"), style));
    main_body.push(b::ret(Some(b::int(0))));

    let mut functions = Vec::new();
    if style.helper_fn {
        functions.push(helper_function());
    }
    functions.push(b::func(Type::Int, "main", vec![], main_body));
    b::program(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    #[test]
    fn all_strategies_agree_on_duplicate_count() {
        let input_spec = InputSpec {
            n: 30,
            m: 0,
            max_value: 0,
            word_len: 5,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let toks = generate_input(&input_spec, &mut rng);
        // Ground truth duplicate count.
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for t in &toks[1..] {
            if let InputTok::Str(s) = t {
                if !seen.insert(s.clone()) {
                    dups += 1;
                }
            }
        }
        for s in 0..3 {
            let p = build(s, &Style::plain(), &input_spec);
            let outp = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(
                outp.output.trim(),
                dups.to_string(),
                "strategy {s} wrong answer"
            );
        }
    }

    #[test]
    fn helper_fn_style_emits_function() {
        let style = Style {
            helper_fn: true,
            ..Style::plain()
        };
        let input = InputSpec {
            n: 10,
            m: 0,
            max_value: 0,
            word_len: 4,
        };
        let p = build(0, &style, &input);
        assert!(p.function("hashWord").is_some());
        assert_eq!(p.functions.len(), 2);
    }
}
