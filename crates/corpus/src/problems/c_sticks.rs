//! Family C — "Minimum Value Rectangle" flavour (Codeforces 1027 C): pair
//! up equal-length sticks. Algorithm group: **greedy**.
//!
//! Strategies (fastest → slowest):
//! 0. `bucket-count` — count occurrences per length, one pass over lengths.
//! 1. `sort-scan` — sort the sticks, pair adjacent equals.
//! 2. `nested-match` — for each stick scan for an unused partner.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::{bound, out, read_int_array};

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "bucket-count",
            weight: 0.35,
            cost_rank: 0,
        },
        Strategy {
            name: "sort-scan",
            weight: 0.40,
            cost_rank: 1,
        },
        Strategy {
            name: "nested-match",
            weight: 0.25,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n;
    let max = input.max_value.max(4);
    let mut toks = vec![InputTok::Int(n as i64)];
    for _ in 0..n {
        toks.push(InputTok::Int(rng.random_range(1..=max)));
    }
    toks
}

pub(crate) fn build(strategy: usize, style: &Style, input: &InputSpec) -> Program {
    let vmax = input.max_value.max(4);
    let mut body: Vec<Stmt> = read_int_array(style);

    match strategy {
        0 => {
            body.extend([
                b::decl(Type::Int, "V", Some(b::int(vmax))),
                b::decl_ctor(
                    Type::vec_int(),
                    "cnt",
                    vec![b::add(b::var("V"), b::int(1)), b::int(0)],
                ),
                b::for_i(
                    "i",
                    b::int(0),
                    bound("a", style),
                    vec![b::expr(b::post_inc(b::idx(
                        b::var("cnt"),
                        b::idx(b::var("a"), b::var("i")),
                    )))],
                ),
                b::decl(Type::Int, "pairs", Some(b::int(0))),
                b::decl(Type::Int, "total", Some(b::int(0))),
                b::for_i_incl(
                    "v",
                    b::int(1),
                    b::var("V"),
                    vec![
                        b::decl(
                            Type::Int,
                            "p",
                            Some(b::div(b::idx(b::var("cnt"), b::var("v")), b::int(2))),
                        ),
                        b::expr(b::add_assign(b::var("pairs"), b::var("p"))),
                        b::expr(b::add_assign(
                            b::var("total"),
                            b::mul(b::var("p"), b::var("v")),
                        )),
                    ],
                ),
            ]);
        }
        1 => {
            body.extend([
                b::expr(b::sort_call("a")),
                b::decl(Type::Int, "pairs", Some(b::int(0))),
                b::decl(Type::Int, "total", Some(b::int(0))),
                b::decl(Type::Int, "i", Some(b::int(0))),
                b::while_loop(
                    b::lt(b::add(b::var("i"), b::int(1)), bound("a", style)),
                    vec![b::if_else(
                        b::eq(
                            b::idx(b::var("a"), b::var("i")),
                            b::idx(b::var("a"), b::add(b::var("i"), b::int(1))),
                        ),
                        vec![
                            b::expr(b::post_inc(b::var("pairs"))),
                            b::expr(b::add_assign(
                                b::var("total"),
                                b::idx(b::var("a"), b::var("i")),
                            )),
                            b::expr(b::add_assign(b::var("i"), b::int(2))),
                        ],
                        vec![b::expr(b::post_inc(b::var("i")))],
                    )],
                ),
            ]);
        }
        2 => {
            body.extend([
                b::decl_ctor(Type::vec_int(), "used", vec![b::var("n"), b::int(0)]),
                b::decl(Type::Int, "pairs", Some(b::int(0))),
                b::decl(Type::Int, "total", Some(b::int(0))),
                b::for_i(
                    "i",
                    b::int(0),
                    bound("a", style),
                    vec![b::if_then(
                        b::eq(b::idx(b::var("used"), b::var("i")), b::int(0)),
                        vec![b::for_custom(
                            "j",
                            b::add(b::var("i"), b::int(1)),
                            b::lt(b::var("j"), bound("a", style)),
                            b::post_inc(b::var("j")),
                            vec![b::if_then(
                                b::and(
                                    b::eq(b::idx(b::var("used"), b::var("j")), b::int(0)),
                                    b::eq(
                                        b::idx(b::var("a"), b::var("j")),
                                        b::idx(b::var("a"), b::var("i")),
                                    ),
                                ),
                                vec![
                                    b::expr(b::assign(
                                        b::idx(b::var("used"), b::var("i")),
                                        b::int(1),
                                    )),
                                    b::expr(b::assign(
                                        b::idx(b::var("used"), b::var("j")),
                                        b::int(1),
                                    )),
                                    b::expr(b::post_inc(b::var("pairs"))),
                                    b::expr(b::add_assign(
                                        b::var("total"),
                                        b::idx(b::var("a"), b::var("i")),
                                    )),
                                    b::brk(),
                                ],
                            )],
                        )],
                    )],
                ),
            ]);
        }
        other => panic!("family C has no strategy {other}"),
    }

    body.push(out(
        b::add(b::mul(b::var("pairs"), b::int(1000)), b::var("total")),
        style,
    ));
    body.push(b::ret(Some(b::int(0))));
    b::program(vec![b::func(Type::Int, "main", vec![], body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn ground_truth(toks: &[InputTok]) -> (i64, i64) {
        let mut counts = std::collections::HashMap::new();
        for t in &toks[1..] {
            if let InputTok::Int(v) = t {
                *counts.entry(*v).or_insert(0i64) += 1;
            }
        }
        let mut pairs = 0;
        let mut total = 0;
        for (v, c) in counts {
            pairs += c / 2;
            total += (c / 2) * v;
        }
        (pairs, total)
    }

    #[test]
    fn strategies_agree_on_pairing() {
        let spec = InputSpec {
            n: 40,
            m: 0,
            max_value: 12,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let toks = generate_input(&spec, &mut rng);
        let (pairs, total) = ground_truth(&toks);
        assert!(pairs > 0, "input should contain pairs");
        let expected = (pairs * 1000 + total).to_string();
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), expected, "strategy {s} wrong");
        }
    }

    #[test]
    fn no_pairs_case() {
        let toks = vec![
            InputTok::Int(3),
            InputTok::Int(1),
            InputTok::Int(2),
            InputTok::Int(3),
        ];
        let spec = InputSpec {
            n: 3,
            m: 0,
            max_value: 3,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(got.output.trim(), "0", "strategy {s}");
        }
    }
}
