//! Family F — subtree-size queries ("Military Problem", Codeforces 1006 E
//! flavour): given a rooted tree and queries `u`, report subtree sizes.
//! Algorithm group: **DFS, graphs, and trees**.
//!
//! Strategies (fastest → slowest):
//! 0. `parent-accumulate` — children have larger indices, so one reverse
//!    sweep accumulates sizes; O(n + q).
//! 1. `recursive-dfs` — classic recursive size computation; same
//!    asymptotics, heavier constants (call frames).
//! 2. `per-query-walk` — explicit-stack traversal from `u` for each query;
//!    O(q·n).

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Function, Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "parent-accumulate",
            weight: 0.30,
            cost_rank: 0,
        },
        Strategy {
            name: "recursive-dfs",
            weight: 0.40,
            cost_rank: 1,
        },
        Strategy {
            name: "per-query-walk",
            weight: 0.30,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n.max(2);
    let q = input.m.max(1);
    let mut toks = vec![InputTok::Int(n as i64)];
    // Random recursive tree: parent of i ∈ [1, i-1] (1-indexed nodes).
    for i in 2..=n {
        toks.push(InputTok::Int(rng.random_range(1..i as i64)));
    }
    toks.push(InputTok::Int(q as i64));
    for _ in 0..q {
        toks.push(InputTok::Int(rng.random_range(1..=n as i64)));
    }
    toks
}

/// Shared prologue: read n, parent array `par` (1-indexed), adjacency `g`.
fn read_tree() -> Vec<Stmt> {
    vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl_ctor(
            Type::vec_int(),
            "par",
            vec![b::add(b::var("n"), b::int(1)), b::int(0)],
        ),
        b::decl_ctor(
            Type::vec_vec_int(),
            "g",
            vec![b::add(b::var("n"), b::int(1))],
        ),
        b::for_i_incl(
            "i",
            b::int(2),
            b::var("n"),
            vec![
                b::cin(vec![b::idx(b::var("par"), b::var("i"))]),
                b::expr(b::push_back(
                    b::idx(b::var("g"), b::idx(b::var("par"), b::var("i"))),
                    b::var("i"),
                )),
            ],
        ),
    ]
}

fn dfs_function() -> Function {
    b::func(
        Type::Int,
        "dfs",
        vec![
            (Type::vec_vec_int(), "g"),
            (Type::vec_int(), "sz"),
            (Type::Int, "u"),
        ],
        vec![
            b::decl(Type::Int, "s", Some(b::int(1))),
            b::for_i(
                "k",
                b::int(0),
                b::size_of(b::idx(b::var("g"), b::var("u"))),
                vec![b::expr(b::add_assign(
                    b::var("s"),
                    b::call(
                        "dfs",
                        vec![
                            b::var("g"),
                            b::var("sz"),
                            b::idx2(b::var("g"), b::var("u"), b::var("k")),
                        ],
                    ),
                ))],
            ),
            b::expr(b::assign(b::idx(b::var("sz"), b::var("u")), b::var("s"))),
            b::ret(Some(b::var("s"))),
        ],
    )
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut body = read_tree();
    body.push(b::decl(Type::Int, "q", None));
    body.push(b::cin(vec![b::var("q")]));
    body.push(b::decl(Type::Int, "ans", Some(b::int(0))));

    let mut functions: Vec<Function> = Vec::new();

    let mut per_query: Vec<Stmt> = vec![b::decl(Type::Int, "u", None), b::cin(vec![b::var("u")])];

    match strategy {
        0 => {
            body.push(b::decl_ctor(
                Type::vec_int(),
                "sz",
                vec![b::add(b::var("n"), b::int(1)), b::int(1)],
            ));
            body.push(b::for_desc(
                "i",
                b::var("n"),
                b::int(2),
                vec![b::expr(b::add_assign(
                    b::idx(b::var("sz"), b::idx(b::var("par"), b::var("i"))),
                    b::idx(b::var("sz"), b::var("i")),
                ))],
            ));
            per_query.push(b::expr(b::add_assign(
                b::var("ans"),
                b::idx(b::var("sz"), b::var("u")),
            )));
        }
        1 => {
            functions.push(dfs_function());
            body.push(b::decl_ctor(
                Type::vec_int(),
                "sz",
                vec![b::add(b::var("n"), b::int(1)), b::int(0)],
            ));
            body.push(b::expr(b::call(
                "dfs",
                vec![b::var("g"), b::var("sz"), b::int(1)],
            )));
            per_query.push(b::expr(b::add_assign(
                b::var("ans"),
                b::idx(b::var("sz"), b::var("u")),
            )));
        }
        2 => {
            per_query.extend([
                b::decl(Type::vec_int(), "stk", None),
                b::expr(b::push_back(b::var("stk"), b::var("u"))),
                b::decl(Type::Int, "cnt", Some(b::int(0))),
                b::while_loop(
                    b::gt(b::size_of(b::var("stk")), b::int(0)),
                    vec![
                        b::decl(
                            Type::Int,
                            "v",
                            Some(b::method(b::var("stk"), "back", vec![])),
                        ),
                        b::expr(b::method(b::var("stk"), "pop_back", vec![])),
                        b::expr(b::post_inc(b::var("cnt"))),
                        b::for_i(
                            "k",
                            b::int(0),
                            b::size_of(b::idx(b::var("g"), b::var("v"))),
                            vec![b::expr(b::push_back(
                                b::var("stk"),
                                b::idx2(b::var("g"), b::var("v"), b::var("k")),
                            ))],
                        ),
                    ],
                ),
                b::expr(b::add_assign(b::var("ans"), b::var("cnt"))),
            ]);
        }
        other => panic!("family F has no strategy {other}"),
    }

    body.push(b::for_i("qq", b::int(0), b::var("q"), per_query));
    body.push(out(b::var("ans"), style));
    body.push(b::ret(Some(b::int(0))));

    functions.push(b::func(Type::Int, "main", vec![], body));
    b::program(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn ground_truth(toks: &[InputTok]) -> i64 {
        let ints: Vec<i64> = toks
            .iter()
            .map(|t| match t {
                InputTok::Int(v) => *v,
                InputTok::Str(_) => panic!(),
            })
            .collect();
        let n = ints[0] as usize;
        let mut size = vec![1i64; n + 1];
        let parents = &ints[1..n]; // parent of node i+2 at index i
        for i in (2..=n).rev() {
            let p = parents[i - 2] as usize;
            size[p] += size[i];
        }
        let q = ints[n] as usize;
        ints[n + 1..n + 1 + q]
            .iter()
            .map(|&u| size[u as usize])
            .sum()
    }

    #[test]
    fn strategies_agree_on_subtree_sizes() {
        let spec = InputSpec {
            n: 20,
            m: 8,
            max_value: 0,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let toks = generate_input(&spec, &mut rng);
        let expected = ground_truth(&toks).to_string();
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), expected, "strategy {s} wrong");
        }
    }

    #[test]
    fn root_query_counts_whole_tree() {
        // Star: 1 is the root, 2..=4 its children; query root.
        let toks = vec![
            InputTok::Int(4),
            InputTok::Int(1),
            InputTok::Int(1),
            InputTok::Int(1),
            InputTok::Int(1),
            InputTok::Int(1),
        ];
        let spec = InputSpec {
            n: 4,
            m: 1,
            max_value: 0,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(got.output.trim(), "4", "strategy {s}");
        }
    }
}
