//! Family G — BFS-order validation ("Valid BFS?", Codeforces 1037 D
//! flavour): is a given vertex sequence a breadth-first order of a tree?
//! Algorithm group: **DFS, graphs, and trees**.
//!
//! Strategies (fastest → slowest):
//! 0. `position-check` — positions + depths validated in two O(n) passes.
//! 1. `level-rescan` — recompute each depth level by scanning the whole
//!    sequence once per level; O(n · depth).
//! 2. `pairwise` — quadratic pairwise ordering validation.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "position-check",
            weight: 0.30,
            cost_rank: 0,
        },
        Strategy {
            name: "level-rescan",
            weight: 0.40,
            cost_rank: 1,
        },
        Strategy {
            name: "pairwise",
            weight: 0.30,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n.max(2);
    let mut toks = vec![InputTok::Int(n as i64)];
    let mut parent = vec![0usize; n + 1];
    for (i, p) in parent.iter_mut().enumerate().skip(2) {
        *p = rng.random_range(1..i);
        toks.push(InputTok::Int(*p as i64));
    }
    // Half the time emit a genuine BFS order, otherwise a random
    // permutation starting at the root (usually invalid).
    if rng.random_bool(0.5) {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for i in 2..=n {
            children[parent[i]].push(i);
        }
        let mut queue = std::collections::VecDeque::from([1usize]);
        while let Some(u) = queue.pop_front() {
            toks.push(InputTok::Int(u as i64));
            let mut kids = children[u].clone();
            // BFS visits children in any order; shuffle for realism.
            for k in (1..kids.len()).rev() {
                kids.swap(k, rng.random_range(0..=k));
            }
            queue.extend(kids);
        }
    } else {
        let mut perm: Vec<usize> = (2..=n).collect();
        for k in (1..perm.len()).rev() {
            perm.swap(k, rng.random_range(0..=k));
        }
        toks.push(InputTok::Int(1));
        toks.extend(perm.into_iter().map(|v| InputTok::Int(v as i64)));
    }
    toks
}

/// Prologue: read n, parents into `par`, sequence into `seq`, and compute
/// node depths `dep` (root = 0).
fn read_all() -> Vec<Stmt> {
    vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl_ctor(
            Type::vec_int(),
            "par",
            vec![b::add(b::var("n"), b::int(1)), b::int(0)],
        ),
        b::for_i_incl(
            "i",
            b::int(2),
            b::var("n"),
            vec![b::cin(vec![b::idx(b::var("par"), b::var("i"))])],
        ),
        b::decl_ctor(Type::vec_int(), "seq", vec![b::var("n"), b::int(0)]),
        b::for_i(
            "i",
            b::int(0),
            b::var("n"),
            vec![b::cin(vec![b::idx(b::var("seq"), b::var("i"))])],
        ),
        b::decl_ctor(
            Type::vec_int(),
            "dep",
            vec![b::add(b::var("n"), b::int(1)), b::int(0)],
        ),
        b::for_i_incl(
            "i",
            b::int(2),
            b::var("n"),
            vec![b::expr(b::assign(
                b::idx(b::var("dep"), b::var("i")),
                b::add(
                    b::idx(b::var("dep"), b::idx(b::var("par"), b::var("i"))),
                    b::int(1),
                ),
            ))],
        ),
    ]
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut body = read_all();
    body.push(b::decl(Type::Int, "ok", Some(b::int(1))));
    body.push(b::if_then(
        b::ne(b::idx(b::var("seq"), b::int(0)), b::int(1)),
        vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
    ));

    match strategy {
        0 => {
            body.extend([
                b::decl_ctor(
                    Type::vec_int(),
                    "pos",
                    vec![b::add(b::var("n"), b::int(1)), b::int(0)],
                ),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![b::expr(b::assign(
                        b::idx(b::var("pos"), b::idx(b::var("seq"), b::var("i"))),
                        b::var("i"),
                    ))],
                ),
                // Parents appear before children.
                b::for_i_incl(
                    "v",
                    b::int(2),
                    b::var("n"),
                    vec![b::if_then(
                        b::ge(
                            b::idx(b::var("pos"), b::idx(b::var("par"), b::var("v"))),
                            b::idx(b::var("pos"), b::var("v")),
                        ),
                        vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                    )],
                ),
                // Depths are non-decreasing along the sequence.
                b::for_i(
                    "i",
                    b::int(1),
                    b::var("n"),
                    vec![b::if_then(
                        b::lt(
                            b::idx(b::var("dep"), b::idx(b::var("seq"), b::var("i"))),
                            b::idx(
                                b::var("dep"),
                                b::idx(b::var("seq"), b::sub(b::var("i"), b::int(1))),
                            ),
                        ),
                        vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                    )],
                ),
            ]);
        }
        1 => {
            body.extend([
                // Maximum depth.
                b::decl(Type::Int, "maxd", Some(b::int(0))),
                b::for_i_incl(
                    "v",
                    b::int(1),
                    b::var("n"),
                    vec![b::expr(b::assign(
                        b::var("maxd"),
                        b::call(
                            "max",
                            vec![b::var("maxd"), b::idx(b::var("dep"), b::var("v"))],
                        ),
                    ))],
                ),
                // For each level, the sequence positions of that level must
                // form one contiguous block after all shallower levels;
                // rescan the whole sequence per level.
                b::decl(Type::Int, "cursor", Some(b::int(0))),
                b::for_i_incl(
                    "d",
                    b::int(0),
                    b::var("maxd"),
                    vec![
                        b::decl(Type::Int, "levelCount", Some(b::int(0))),
                        b::for_i_incl(
                            "v",
                            b::int(1),
                            b::var("n"),
                            vec![b::if_then(
                                b::eq(b::idx(b::var("dep"), b::var("v")), b::var("d")),
                                vec![b::expr(b::post_inc(b::var("levelCount")))],
                            )],
                        ),
                        b::for_custom(
                            "i",
                            b::var("cursor"),
                            b::lt(b::var("i"), b::add(b::var("cursor"), b::var("levelCount"))),
                            b::post_inc(b::var("i")),
                            vec![b::if_then(
                                b::ne(
                                    b::idx(b::var("dep"), b::idx(b::var("seq"), b::var("i"))),
                                    b::var("d"),
                                ),
                                vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                            )],
                        ),
                        b::expr(b::add_assign(b::var("cursor"), b::var("levelCount"))),
                    ],
                ),
                // Parents before children (still required).
                b::decl_ctor(
                    Type::vec_int(),
                    "pos",
                    vec![b::add(b::var("n"), b::int(1)), b::int(0)],
                ),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![b::expr(b::assign(
                        b::idx(b::var("pos"), b::idx(b::var("seq"), b::var("i"))),
                        b::var("i"),
                    ))],
                ),
                b::for_i_incl(
                    "v",
                    b::int(2),
                    b::var("n"),
                    vec![b::if_then(
                        b::ge(
                            b::idx(b::var("pos"), b::idx(b::var("par"), b::var("v"))),
                            b::idx(b::var("pos"), b::var("v")),
                        ),
                        vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                    )],
                ),
            ]);
        }
        2 => {
            body.extend([
                // Quadratic: every pair (i < j) must satisfy depth
                // monotonicity, and each vertex must appear after its
                // parent — found by scanning the sequence for the parent.
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![b::for_custom(
                        "j",
                        b::add(b::var("i"), b::int(1)),
                        b::lt(b::var("j"), b::var("n")),
                        b::post_inc(b::var("j")),
                        vec![b::if_then(
                            b::gt(
                                b::idx(b::var("dep"), b::idx(b::var("seq"), b::var("i"))),
                                b::idx(b::var("dep"), b::idx(b::var("seq"), b::var("j"))),
                            ),
                            vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                        )],
                    )],
                ),
                b::for_i(
                    "i",
                    b::int(1),
                    b::var("n"),
                    vec![
                        b::decl(Type::Int, "sawParent", Some(b::int(0))),
                        b::for_i(
                            "j",
                            b::int(0),
                            b::var("i"),
                            vec![b::if_then(
                                b::eq(
                                    b::idx(b::var("seq"), b::var("j")),
                                    b::idx(b::var("par"), b::idx(b::var("seq"), b::var("i"))),
                                ),
                                vec![b::expr(b::assign(b::var("sawParent"), b::int(1)))],
                            )],
                        ),
                        b::if_then(
                            b::eq(b::var("sawParent"), b::int(0)),
                            vec![b::expr(b::assign(b::var("ok"), b::int(0)))],
                        ),
                    ],
                ),
            ]);
        }
        other => panic!("family G has no strategy {other}"),
    }

    body.push(out(b::var("ok"), style));
    body.push(b::ret(Some(b::int(0))));
    b::program(vec![b::func(Type::Int, "main", vec![], body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    /// The three strategies implement the same *necessary-condition* check
    /// (root first, parents before children, depths monotone), so they
    /// must agree on every input.
    #[test]
    fn strategies_agree() {
        let spec = InputSpec {
            n: 18,
            m: 0,
            max_value: 0,
            word_len: 0,
        };
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let toks = generate_input(&spec, &mut rng);
            let mut outputs = Vec::new();
            for s in 0..3 {
                let p = build(s, &Style::plain(), &spec);
                let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                    .unwrap_or_else(|e| panic!("seed {seed} strategy {s}: {e}"));
                outputs.push(got.output.trim().to_string());
            }
            assert_eq!(outputs[0], outputs[1], "seed {seed}: s0 vs s1");
            assert_eq!(outputs[0], outputs[2], "seed {seed}: s0 vs s2");
        }
    }

    #[test]
    fn genuine_bfs_accepted_and_garbage_rejected() {
        // Path 1-2-3: parents [1, 2]; BFS order 1 2 3 valid.
        let valid = vec![
            InputTok::Int(3),
            InputTok::Int(1),
            InputTok::Int(2),
            InputTok::Int(1),
            InputTok::Int(2),
            InputTok::Int(3),
        ];
        // Order 1 3 2 violates depth monotonicity.
        let invalid = vec![
            InputTok::Int(3),
            InputTok::Int(1),
            InputTok::Int(2),
            InputTok::Int(1),
            InputTok::Int(3),
            InputTok::Int(2),
        ];
        let spec = InputSpec {
            n: 3,
            m: 0,
            max_value: 0,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let ok = run_program(&p, &valid, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(ok.output.trim(), "1", "strategy {s} rejected a valid BFS");
            let bad = run_program(&p, &invalid, &CostModel::default(), &Limits::default()).unwrap();
            assert_eq!(
                bad.output.trim(),
                "0",
                "strategy {s} accepted an invalid BFS"
            );
        }
    }
}
