//! The nine solution-template families of Table I.
//!
//! Each family module provides the strategies (algorithmic approaches with
//! distinct asymptotic cost) that real submissions to that problem used,
//! expressed as mini-C++ program templates, plus a judge input generator.
//! Templates consult [`Style`](crate::gen::Style) flags to emit
//! author-style variation (helper functions, redundant scans, temporaries).

mod a_registration;
mod b_tprime;
mod c_sticks;
mod d_range_gcd;
mod e_prefix_distinct;
mod f_subtree;
mod g_bfs_check;
mod h_digit_sum;
mod i_dag_letters;

use rand::rngs::StdRng;

use ccsa_cppast::ast::Program;

use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, ProblemTag, Strategy};

/// The strategies available for a family, with popularity weights and
/// coarse cost ranks (0 = asymptotically fastest).
pub fn strategies(family: ProblemTag) -> Vec<Strategy> {
    match family {
        ProblemTag::A => a_registration::strategies(),
        ProblemTag::B => b_tprime::strategies(),
        ProblemTag::C => c_sticks::strategies(),
        ProblemTag::D => d_range_gcd::strategies(),
        ProblemTag::E => e_prefix_distinct::strategies(),
        ProblemTag::F => f_subtree::strategies(),
        ProblemTag::G => g_bfs_check::strategies(),
        ProblemTag::H => h_digit_sum::strategies(),
        ProblemTag::I => i_dag_letters::strategies(),
    }
}

/// Builds the solution program for `family` strategy `strategy` in the
/// given authoring style.
///
/// # Panics
///
/// Panics if `strategy` is out of range for the family.
pub fn build(family: ProblemTag, strategy: usize, style: &Style, input: &InputSpec) -> Program {
    match family {
        ProblemTag::A => a_registration::build(strategy, style, input),
        ProblemTag::B => b_tprime::build(strategy, style, input),
        ProblemTag::C => c_sticks::build(strategy, style, input),
        ProblemTag::D => d_range_gcd::build(strategy, style, input),
        ProblemTag::E => e_prefix_distinct::build(strategy, style, input),
        ProblemTag::F => f_subtree::build(strategy, style, input),
        ProblemTag::G => g_bfs_check::build(strategy, style, input),
        ProblemTag::H => h_digit_sum::build(strategy, style, input),
        ProblemTag::I => i_dag_letters::build(strategy, style, input),
    }
}

/// Samples one judge test case for `family` with the given sizes.
pub fn generate_input(family: ProblemTag, input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    match family {
        ProblemTag::A => a_registration::generate_input(input, rng),
        ProblemTag::B => b_tprime::generate_input(input, rng),
        ProblemTag::C => c_sticks::generate_input(input, rng),
        ProblemTag::D => d_range_gcd::generate_input(input, rng),
        ProblemTag::E => e_prefix_distinct::generate_input(input, rng),
        ProblemTag::F => f_subtree::generate_input(input, rng),
        ProblemTag::G => g_bfs_check::generate_input(input, rng),
        ProblemTag::H => h_digit_sum::generate_input(input, rng),
        ProblemTag::I => i_dag_letters::generate_input(input, rng),
    }
}

/// Shared template fragment: the opening `int n; cin >> n;` and a read loop
/// filling `vector<long long> a(n)`.
pub(crate) fn read_int_array(style: &Style) -> Vec<ccsa_cppast::ast::Stmt> {
    use crate::builder as b;
    use ccsa_cppast::ast::Type;
    let mut stmts = vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl_ctor(Type::vec_int(), "a", vec![b::var("n")]),
        b::for_i(
            "i",
            b::int(0),
            bound("a", style),
            vec![b::cin(vec![b::idx(b::var("a"), b::var("i"))])],
        ),
    ];
    if style.extra_scan {
        stmts.extend(extra_scan_pass("a", "chk", style));
    }
    if style.second_extra_scan {
        stmts.extend(extra_scan_pass("a", "chk2", style));
    }
    stmts
}

/// Loop bound: `n` (cached) or `v.size()` (recomputed per iteration).
pub(crate) fn bound(vec_name: &str, style: &Style) -> ccsa_cppast::ast::Expr {
    use crate::builder as b;
    if style.recompute_size {
        b::size_of(b::var(vec_name))
    } else {
        b::var("n")
    }
}

/// A harmless O(n) bookkeeping pass over `vec_name` accumulating into a
/// fresh variable — real cost, no effect on the answer.
pub(crate) fn extra_scan_pass(
    vec_name: &str,
    acc: &str,
    style: &Style,
) -> Vec<ccsa_cppast::ast::Stmt> {
    use crate::builder as b;
    use ccsa_cppast::ast::Type;
    vec![
        b::decl(Type::Int, acc, Some(b::int(0))),
        b::for_i(
            "sx",
            b::int(0),
            bound(vec_name, style),
            vec![b::expr(b::add_assign(
                b::var(acc),
                b::idx(b::var(vec_name), b::var("sx")),
            ))],
        ),
        b::if_then(
            b::lt(b::var(acc), b::int(0)),
            vec![b::cout(vec![b::str_lit("")])],
        ),
    ]
}

/// Final output statement honouring the `use_endl` style flag.
pub(crate) fn out(value: ccsa_cppast::ast::Expr, style: &Style) -> ccsa_cppast::ast::Stmt {
    use crate::builder as b;
    if style.use_endl {
        b::coutln(value)
    } else {
        b::cout(vec![value])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    /// Every (family, strategy) pair must parse, print, re-parse and run to
    /// completion on generated inputs — and strategies must be ordered by
    /// their declared cost rank *in the mean over judge inputs*, which is
    /// exactly the quantity the judge averages into runtime labels. (A
    /// single draw can invert marginally-separated strategies — problem H's
    /// memo recursion vs. DP table — so the mean, not one sample, is the
    /// contract.)
    #[test]
    fn all_strategies_run_and_rank_costs() {
        let trials = 6u64;
        for tag in ProblemTag::ALL {
            let spec = crate::spec::ProblemSpec::curated(tag);
            let mut mean_costs = vec![0.0f64; spec.strategies.len()];
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(tag as u64 + 100 + seed * 17);
                let input = spec.generate_input(&mut rng);
                for (s, strat) in spec.strategies.iter().enumerate() {
                    let program = build(tag, s, &Style::plain(), &spec.input);
                    let printed = ccsa_cppast::print_program(&program);
                    let reparsed = ccsa_cppast::parse_program(&printed)
                        .unwrap_or_else(|e| panic!("{tag} s{s} reparse: {e}\n{printed}"));
                    let out =
                        run_program(&reparsed, &input, &CostModel::default(), &Limits::default())
                            .unwrap_or_else(|e| {
                                panic!("{tag} s{s} ({}) run failed: {e}\n{printed}", strat.name)
                            });
                    mean_costs[s] += out.cost as f64 / trials as f64;
                }
            }
            let mut ranked: Vec<(u8, f64, &str)> = spec
                .strategies
                .iter()
                .zip(&mean_costs)
                .map(|(strat, &cost)| (strat.cost_rank, cost, strat.name))
                .collect();
            ranked.sort_by_key(|&(rank, _, _)| rank);
            for w in ranked.windows(2) {
                assert!(
                    w[0].1 < w[1].1,
                    "{tag}: strategy '{}' (rank {}) mean cost {:.0} not below '{}' (rank {}) mean cost {:.0}",
                    w[0].2,
                    w[0].0,
                    w[0].1,
                    w[1].2,
                    w[1].0,
                    w[1].1
                );
            }
        }
    }

    /// Style flags that claim to add cost must actually add cost.
    #[test]
    fn extra_scan_costs_more() {
        for tag in [ProblemTag::C, ProblemTag::E] {
            let spec = crate::spec::ProblemSpec::curated(tag);
            let mut rng = StdRng::seed_from_u64(7);
            let input = spec.generate_input(&mut rng);
            let plain = build(tag, 0, &Style::plain(), &spec.input);
            let scan_style = Style {
                extra_scan: true,
                ..Style::plain()
            };
            let scanned = build(tag, 0, &scan_style, &spec.input);
            let c0 = run_program(&plain, &input, &CostModel::default(), &Limits::default())
                .unwrap()
                .cost;
            let c1 = run_program(&scanned, &input, &CostModel::default(), &Limits::default())
                .unwrap()
                .cost;
            assert!(
                c1 > c0,
                "{tag}: extra_scan did not increase cost ({c0} vs {c1})"
            );
        }
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    /// Strategy cost ordering must hold across many judge seeds — the
    /// Strategy cost ordering must hold in the mean across many judge
    /// inputs and on the large majority of individual inputs. (Individual
    /// draws may invert marginally-separated strategies — e.g. problem H
    /// at its smallest digit sums — which the judge's multi-test averaging
    /// smooths out; the corpus labels depend on the mean.)
    #[test]
    fn strategy_ranks_are_stable_across_seeds() {
        let trials = 8u64;
        for tag in ProblemTag::ALL {
            let spec = crate::spec::ProblemSpec::curated(tag);
            let mut wins = 0u64;
            let mut mean_by_rank: std::collections::BTreeMap<u8, f64> = Default::default();
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(1000 + seed);
                let input = spec.generate_input(&mut rng);
                let mut costs: Vec<(u8, u64)> = Vec::new();
                for (s, strat) in spec.strategies.iter().enumerate() {
                    let program = build(tag, s, &Style::plain(), &spec.input);
                    let out =
                        run_program(&program, &input, &CostModel::default(), &Limits::default())
                            .unwrap_or_else(|e| panic!("{tag} s{s} seed {seed}: {e}"));
                    costs.push((strat.cost_rank, out.cost));
                    *mean_by_rank.entry(strat.cost_rank).or_default() +=
                        out.cost as f64 / trials as f64;
                }
                costs.sort_by_key(|&(rank, _)| rank);
                if costs.windows(2).all(|w| w[0].1 < w[1].1) {
                    wins += 1;
                }
            }
            let means: Vec<f64> = mean_by_rank.values().copied().collect();
            for w in means.windows(2) {
                assert!(w[0] < w[1], "{tag}: mean costs not rank-ordered: {means:?}");
            }
            // Strict ordering of *every* adjacent strategy pair on one
            // draw is a strong event; a clear majority is the robust
            // contract (problem H sits closest to the margin — its memo
            // recursion and DP table trade places on small-digit-sum
            // draws).
            assert!(
                wins * 2 > trials,
                "{tag}: rank ordering held on only {wins}/{trials} individual inputs"
            );
        }
    }
}
