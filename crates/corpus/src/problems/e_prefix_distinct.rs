//! Family E — prefix/suffix distinct counting ("Sonya and Robots",
//! Codeforces 1004 C flavour): count pairs (first occurrence on the left,
//! distinct value on the right). Algorithm group: **constructive**.
//!
//! Strategies (fastest → slowest):
//! 0. `bucket-two-pass` — seen-arrays, O(n + V).
//! 1. `scan-two-pass` — replace the seen-arrays by backward scans, O(n²).
//! 2. `recount-per-first` — recount the suffix for every first occurrence.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::{out, read_int_array};

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "bucket-two-pass",
            weight: 0.35,
            cost_rank: 0,
        },
        Strategy {
            name: "scan-two-pass",
            weight: 0.40,
            cost_rank: 1,
        },
        Strategy {
            name: "recount-per-first",
            weight: 0.25,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n;
    let max = input.max_value.max(4);
    let mut toks = vec![InputTok::Int(n as i64)];
    for _ in 0..n {
        toks.push(InputTok::Int(rng.random_range(1..=max)));
    }
    toks
}

pub(crate) fn build(strategy: usize, style: &Style, input: &InputSpec) -> Program {
    let vmax = input.max_value.max(4);
    let mut body: Vec<Stmt> = read_int_array(style);
    body.push(b::decl(Type::Int, "ans", Some(b::int(0))));
    // sufCnt[i] = number of distinct values in a[i..n); sufCnt[n] = 0.
    body.push(b::decl_ctor(
        Type::vec_int(),
        "sufCnt",
        vec![b::add(b::var("n"), b::int(1)), b::int(0)],
    ));

    match strategy {
        0 => {
            body.extend([
                b::decl_ctor(
                    Type::vec_int(),
                    "seenSuf",
                    vec![b::int(vmax + 1), b::int(0)],
                ),
                b::for_desc(
                    "i",
                    b::sub(b::var("n"), b::int(1)),
                    b::int(0),
                    vec![
                        b::expr(b::assign(
                            b::idx(b::var("sufCnt"), b::var("i")),
                            b::add(
                                b::idx(b::var("sufCnt"), b::add(b::var("i"), b::int(1))),
                                b::ternary(
                                    b::eq(
                                        b::idx(b::var("seenSuf"), b::idx(b::var("a"), b::var("i"))),
                                        b::int(0),
                                    ),
                                    b::int(1),
                                    b::int(0),
                                ),
                            ),
                        )),
                        b::expr(b::assign(
                            b::idx(b::var("seenSuf"), b::idx(b::var("a"), b::var("i"))),
                            b::int(1),
                        )),
                    ],
                ),
                b::decl_ctor(
                    Type::vec_int(),
                    "seenPre",
                    vec![b::int(vmax + 1), b::int(0)],
                ),
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![b::if_then(
                        b::eq(
                            b::idx(b::var("seenPre"), b::idx(b::var("a"), b::var("i"))),
                            b::int(0),
                        ),
                        vec![
                            b::expr(b::assign(
                                b::idx(b::var("seenPre"), b::idx(b::var("a"), b::var("i"))),
                                b::int(1),
                            )),
                            b::expr(b::add_assign(
                                b::var("ans"),
                                b::idx(b::var("sufCnt"), b::add(b::var("i"), b::int(1))),
                            )),
                        ],
                    )],
                ),
            ]);
        }
        1 => {
            body.extend([
                // sufCnt via backward duplicate scan.
                b::for_desc(
                    "i",
                    b::sub(b::var("n"), b::int(1)),
                    b::int(0),
                    vec![
                        b::decl(Type::Int, "dup", Some(b::int(0))),
                        b::for_custom(
                            "j",
                            b::add(b::var("i"), b::int(1)),
                            b::lt(b::var("j"), b::var("n")),
                            b::post_inc(b::var("j")),
                            vec![b::if_then(
                                b::eq(
                                    b::idx(b::var("a"), b::var("j")),
                                    b::idx(b::var("a"), b::var("i")),
                                ),
                                vec![b::expr(b::assign(b::var("dup"), b::int(1)))],
                            )],
                        ),
                        b::expr(b::assign(
                            b::idx(b::var("sufCnt"), b::var("i")),
                            b::add(
                                b::idx(b::var("sufCnt"), b::add(b::var("i"), b::int(1))),
                                b::ternary(b::eq(b::var("dup"), b::int(0)), b::int(1), b::int(0)),
                            ),
                        )),
                    ],
                ),
                // First-occurrence check via backward scan.
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![
                        b::decl(Type::Int, "first", Some(b::int(1))),
                        b::for_i(
                            "j",
                            b::int(0),
                            b::var("i"),
                            vec![b::if_then(
                                b::eq(
                                    b::idx(b::var("a"), b::var("j")),
                                    b::idx(b::var("a"), b::var("i")),
                                ),
                                vec![b::expr(b::assign(b::var("first"), b::int(0)))],
                            )],
                        ),
                        b::if_then(
                            b::eq(b::var("first"), b::int(1)),
                            vec![b::expr(b::add_assign(
                                b::var("ans"),
                                b::idx(b::var("sufCnt"), b::add(b::var("i"), b::int(1))),
                            ))],
                        ),
                    ],
                ),
            ]);
        }
        2 => {
            body.extend([
                // For every first occurrence, recount the distinct suffix
                // from scratch with a quadratic duplicate test.
                b::for_i(
                    "i",
                    b::int(0),
                    b::var("n"),
                    vec![
                        b::decl(Type::Int, "first", Some(b::int(1))),
                        b::for_i(
                            "j",
                            b::int(0),
                            b::var("i"),
                            vec![b::if_then(
                                b::eq(
                                    b::idx(b::var("a"), b::var("j")),
                                    b::idx(b::var("a"), b::var("i")),
                                ),
                                vec![b::expr(b::assign(b::var("first"), b::int(0)))],
                            )],
                        ),
                        b::if_then(
                            b::eq(b::var("first"), b::int(1)),
                            vec![
                                b::decl(Type::Int, "cnt", Some(b::int(0))),
                                b::for_custom(
                                    "j",
                                    b::add(b::var("i"), b::int(1)),
                                    b::lt(b::var("j"), b::var("n")),
                                    b::post_inc(b::var("j")),
                                    vec![
                                        b::decl(Type::Int, "dup", Some(b::int(0))),
                                        b::for_custom(
                                            "k",
                                            b::add(b::var("i"), b::int(1)),
                                            b::lt(b::var("k"), b::var("j")),
                                            b::post_inc(b::var("k")),
                                            vec![b::if_then(
                                                b::eq(
                                                    b::idx(b::var("a"), b::var("k")),
                                                    b::idx(b::var("a"), b::var("j")),
                                                ),
                                                vec![b::expr(b::assign(b::var("dup"), b::int(1)))],
                                            )],
                                        ),
                                        b::if_then(
                                            b::eq(b::var("dup"), b::int(0)),
                                            vec![b::expr(b::post_inc(b::var("cnt")))],
                                        ),
                                    ],
                                ),
                                b::expr(b::add_assign(b::var("ans"), b::var("cnt"))),
                            ],
                        ),
                    ],
                ),
            ]);
        }
        other => panic!("family E has no strategy {other}"),
    }

    body.push(out(b::var("ans"), style));
    body.push(b::ret(Some(b::int(0))));
    b::program(vec![b::func(Type::Int, "main", vec![], body)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn ground_truth(toks: &[InputTok]) -> i64 {
        let a: Vec<i64> = toks[1..]
            .iter()
            .map(|t| match t {
                InputTok::Int(v) => *v,
                InputTok::Str(_) => panic!(),
            })
            .collect();
        let n = a.len();
        let mut ans = 0i64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            if seen.insert(a[i]) {
                let distinct: std::collections::HashSet<i64> = a[i + 1..].iter().copied().collect();
                ans += distinct.len() as i64;
            }
        }
        ans
    }

    #[test]
    fn strategies_agree() {
        let spec = InputSpec {
            n: 25,
            m: 0,
            max_value: 9,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let toks = generate_input(&spec, &mut rng);
        let expected = ground_truth(&toks).to_string();
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), expected, "strategy {s} wrong");
        }
    }

    #[test]
    fn all_equal_input() {
        let toks = vec![
            InputTok::Int(4),
            InputTok::Int(7),
            InputTok::Int(7),
            InputTok::Int(7),
            InputTok::Int(7),
        ];
        let spec = InputSpec {
            n: 4,
            m: 0,
            max_value: 8,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            // Only index 0 is a first occurrence; suffix has 1 distinct value.
            assert_eq!(got.output.trim(), "1", "strategy {s}");
        }
    }
}
