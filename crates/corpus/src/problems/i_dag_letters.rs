//! Family I — "Substring" (Codeforces 919 D flavour): maximize the count
//! of a tracked letter along any path of a DAG. Algorithm group:
//! **DFS, DP, graphs**.
//!
//! Edges always go from a smaller to a larger node index, so index order is
//! a topological order (and the graph is acyclic by construction).
//!
//! Strategies (fastest → slowest):
//! 0. `topo-dp` — one pass over nodes in index order relaxing in-edges.
//! 1. `memo-dfs` — memoised recursion over predecessors.
//! 2. `edge-sweep` — for every node rescan the entire edge list; O(n·m).

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::{Function, Program, Stmt, Type};

use crate::builder as b;
use crate::gen::Style;
use crate::interp::InputTok;
use crate::spec::{InputSpec, Strategy};

use super::out;

pub(crate) fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "topo-dp",
            weight: 0.35,
            cost_rank: 0,
        },
        Strategy {
            name: "memo-dfs",
            weight: 0.35,
            cost_rank: 1,
        },
        Strategy {
            name: "edge-sweep",
            weight: 0.30,
            cost_rank: 2,
        },
    ]
}

pub(crate) fn generate_input(input: &InputSpec, rng: &mut StdRng) -> Vec<InputTok> {
    let n = input.n.max(3);
    let m = input.m.max(1);
    let mut toks = vec![InputTok::Int(n as i64)];
    let word: String = (0..n)
        .map(|_| (b'a' + rng.random_range(0..3u8)) as char)
        .collect();
    toks.push(InputTok::Str(word));
    toks.push(InputTok::Int(m as i64));
    for _ in 0..m {
        let u = rng.random_range(0..n as i64 - 1);
        let v = rng.random_range(u + 1..n as i64);
        toks.push(InputTok::Int(u));
        toks.push(InputTok::Int(v));
    }
    toks
}

/// Prologue: read n, the letter word, m, and edges into `eu`/`ev`; compute
/// per-node value `val[i] = (word[i] == 'a')`.
fn read_graph() -> Vec<Stmt> {
    vec![
        b::decl(Type::Int, "n", None),
        b::cin(vec![b::var("n")]),
        b::decl(Type::Str, "w", None),
        b::cin(vec![b::var("w")]),
        b::decl_ctor(Type::vec_int(), "val", vec![b::var("n"), b::int(0)]),
        b::for_i(
            "i",
            b::int(0),
            b::var("n"),
            vec![b::if_then(
                b::eq(b::idx(b::var("w"), b::var("i")), b::char_lit('a')),
                vec![b::expr(b::assign(
                    b::idx(b::var("val"), b::var("i")),
                    b::int(1),
                ))],
            )],
        ),
        b::decl(Type::Int, "m", None),
        b::cin(vec![b::var("m")]),
        b::decl(Type::vec_int(), "eu", None),
        b::decl(Type::vec_int(), "ev", None),
        b::for_i(
            "j",
            b::int(0),
            b::var("m"),
            vec![
                b::decl(Type::Int, "u", None),
                b::decl(Type::Int, "v", None),
                b::cin(vec![b::var("u"), b::var("v")]),
                b::expr(b::push_back(b::var("eu"), b::var("u"))),
                b::expr(b::push_back(b::var("ev"), b::var("v"))),
            ],
        ),
    ]
}

/// `long long go(...)` — memoised best count ending at node `u`.
fn memo_dfs_function() -> Function {
    b::func(
        Type::Int,
        "go",
        vec![
            (Type::vec_vec_int(), "pred"),
            (Type::vec_int(), "val"),
            (Type::vec_int(), "memo"),
            (Type::Int, "u"),
        ],
        vec![
            b::if_then(
                b::ge(b::idx(b::var("memo"), b::var("u")), b::int(0)),
                vec![b::ret(Some(b::idx(b::var("memo"), b::var("u"))))],
            ),
            b::decl(Type::Int, "best", Some(b::int(0))),
            b::for_i(
                "k",
                b::int(0),
                b::size_of(b::idx(b::var("pred"), b::var("u"))),
                vec![
                    b::decl(
                        Type::Int,
                        "c",
                        Some(b::call(
                            "go",
                            vec![
                                b::var("pred"),
                                b::var("val"),
                                b::var("memo"),
                                b::idx2(b::var("pred"), b::var("u"), b::var("k")),
                            ],
                        )),
                    ),
                    b::expr(b::assign(
                        b::var("best"),
                        b::call("max", vec![b::var("best"), b::var("c")]),
                    )),
                ],
            ),
            b::expr(b::assign(
                b::idx(b::var("memo"), b::var("u")),
                b::add(b::var("best"), b::idx(b::var("val"), b::var("u"))),
            )),
            b::ret(Some(b::idx(b::var("memo"), b::var("u")))),
        ],
    )
}

pub(crate) fn build(strategy: usize, style: &Style, _input: &InputSpec) -> Program {
    let mut body = read_graph();
    let mut functions: Vec<Function> = Vec::new();

    match strategy {
        0 => {
            body.extend([
                // In-lists, then one index-order pass.
                b::decl_ctor(Type::vec_vec_int(), "pred", vec![b::var("n")]),
                b::for_i(
                    "j",
                    b::int(0),
                    b::var("m"),
                    vec![b::expr(b::push_back(
                        b::idx(b::var("pred"), b::idx(b::var("ev"), b::var("j"))),
                        b::idx(b::var("eu"), b::var("j")),
                    ))],
                ),
                b::decl_ctor(Type::vec_int(), "dp", vec![b::var("n"), b::int(0)]),
                b::for_i(
                    "v",
                    b::int(0),
                    b::var("n"),
                    vec![
                        b::decl(Type::Int, "best", Some(b::int(0))),
                        b::for_i(
                            "k",
                            b::int(0),
                            b::size_of(b::idx(b::var("pred"), b::var("v"))),
                            vec![b::expr(b::assign(
                                b::var("best"),
                                b::call(
                                    "max",
                                    vec![
                                        b::var("best"),
                                        b::idx(
                                            b::var("dp"),
                                            b::idx2(b::var("pred"), b::var("v"), b::var("k")),
                                        ),
                                    ],
                                ),
                            ))],
                        ),
                        b::expr(b::assign(
                            b::idx(b::var("dp"), b::var("v")),
                            b::add(b::var("best"), b::idx(b::var("val"), b::var("v"))),
                        )),
                    ],
                ),
            ]);
        }
        1 => {
            functions.push(memo_dfs_function());
            body.extend([
                b::decl_ctor(Type::vec_vec_int(), "pred", vec![b::var("n")]),
                b::for_i(
                    "j",
                    b::int(0),
                    b::var("m"),
                    vec![b::expr(b::push_back(
                        b::idx(b::var("pred"), b::idx(b::var("ev"), b::var("j"))),
                        b::idx(b::var("eu"), b::var("j")),
                    ))],
                ),
                b::decl_ctor(
                    Type::vec_int(),
                    "memo",
                    vec![b::var("n"), b::neg(b::int(1))],
                ),
                b::decl_ctor(Type::vec_int(), "dp", vec![b::var("n"), b::int(0)]),
                b::for_i(
                    "v",
                    b::int(0),
                    b::var("n"),
                    vec![b::expr(b::assign(
                        b::idx(b::var("dp"), b::var("v")),
                        b::call(
                            "go",
                            vec![b::var("pred"), b::var("val"), b::var("memo"), b::var("v")],
                        ),
                    ))],
                ),
            ]);
        }
        2 => {
            body.extend([
                // No adjacency structure at all: for each node in order,
                // rescan every edge to find its predecessors.
                b::decl_ctor(Type::vec_int(), "dp", vec![b::var("n"), b::int(0)]),
                b::for_i(
                    "v",
                    b::int(0),
                    b::var("n"),
                    vec![
                        b::decl(Type::Int, "best", Some(b::int(0))),
                        b::for_i(
                            "j",
                            b::int(0),
                            b::var("m"),
                            vec![b::if_then(
                                b::eq(b::idx(b::var("ev"), b::var("j")), b::var("v")),
                                vec![b::expr(b::assign(
                                    b::var("best"),
                                    b::call(
                                        "max",
                                        vec![
                                            b::var("best"),
                                            b::idx(b::var("dp"), b::idx(b::var("eu"), b::var("j"))),
                                        ],
                                    ),
                                ))],
                            )],
                        ),
                        b::expr(b::assign(
                            b::idx(b::var("dp"), b::var("v")),
                            b::add(b::var("best"), b::idx(b::var("val"), b::var("v"))),
                        )),
                    ],
                ),
            ]);
        }
        other => panic!("family I has no strategy {other}"),
    }

    body.extend([
        b::decl(Type::Int, "ans", Some(b::int(0))),
        b::for_i(
            "v",
            b::int(0),
            b::var("n"),
            vec![b::expr(b::assign(
                b::var("ans"),
                b::call(
                    "max",
                    vec![b::var("ans"), b::idx(b::var("dp"), b::var("v"))],
                ),
            ))],
        ),
        out(b::var("ans"), style),
        b::ret(Some(b::int(0))),
    ]);

    functions.push(b::func(Type::Int, "main", vec![], body));
    b::program(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, Limits};
    use rand::SeedableRng;

    fn ground_truth(toks: &[InputTok]) -> i64 {
        let InputTok::Int(n) = toks[0] else { panic!() };
        let InputTok::Str(w) = &toks[1] else { panic!() };
        let n = n as usize;
        let val: Vec<i64> = w.bytes().map(|b| (b == b'a') as i64).collect();
        let InputTok::Int(m) = toks[2] else { panic!() };
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
        for k in 0..m as usize {
            let InputTok::Int(u) = toks[3 + 2 * k] else {
                panic!()
            };
            let InputTok::Int(v) = toks[4 + 2 * k] else {
                panic!()
            };
            pred[v as usize].push(u as usize);
        }
        let mut dp = vec![0i64; n];
        for v in 0..n {
            let best = pred[v].iter().map(|&u| dp[u]).max().unwrap_or(0);
            dp[v] = best + val[v];
        }
        dp.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn strategies_agree_on_best_path() {
        let spec = InputSpec {
            n: 18,
            m: 30,
            max_value: 0,
            word_len: 0,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let toks = generate_input(&spec, &mut rng);
        let expected = ground_truth(&toks).to_string();
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default())
                .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert_eq!(got.output.trim(), expected, "strategy {s} wrong");
        }
    }

    #[test]
    fn no_edges_counts_single_best_node() {
        let toks = vec![
            InputTok::Int(3),
            InputTok::Str("aba".into()),
            InputTok::Int(1),
            InputTok::Int(0),
            InputTok::Int(2),
        ];
        let spec = InputSpec {
            n: 3,
            m: 1,
            max_value: 0,
            word_len: 0,
        };
        for s in 0..3 {
            let p = build(s, &Style::plain(), &spec);
            let got = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
            // Path 0→2 collects 'a' at 0 and 'a' at 2 → 2.
            assert_eq!(got.output.trim(), "2", "strategy {s}");
        }
    }
}
