//! The judge: runs a submission on several test cases and reports its cost.
//!
//! Mirrors the Codeforces flow the paper relied on: every submission is
//! executed against a set of generated test cases and "the tests are
//! averaged to obtain a mean runtime". Measurement noise is added
//! downstream (see [`dataset`](crate::dataset)) when costs are converted to
//! milliseconds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ccsa_cppast::ast::Program;

use crate::interp::{run_program, CostModel, InterpError, Limits};
use crate::spec::ProblemSpec;

/// Judge configuration shared across a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct JudgeConfig {
    /// Number of test cases per submission (Codeforces uses 5–13; the
    /// default keeps corpus generation fast).
    pub test_cases: usize,
    /// Cost-unit prices.
    pub cost_model: CostModel,
    /// Fuel / recursion / memory guards.
    pub limits: Limits,
    /// Log-normal measurement-noise σ applied when costs become
    /// milliseconds. `0.0` disables noise.
    pub noise_sigma: f64,
}

impl Default for JudgeConfig {
    fn default() -> JudgeConfig {
        JudgeConfig {
            test_cases: 3,
            cost_model: CostModel::default(),
            limits: Limits::default(),
            noise_sigma: 0.10,
        }
    }
}

/// The judged result of one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Mean cost units across test cases.
    pub mean_cost: f64,
    /// Per-test costs.
    pub test_costs: Vec<u64>,
}

/// Runs `program` on `config.test_cases` generated inputs and averages the
/// interpreter cost.
///
/// Test inputs are derived deterministically from `input_seed`, so two
/// submissions judged with the same seed see the same tests — exactly how
/// an online judge works.
///
/// # Errors
///
/// Propagates the first [`InterpError`] (TLE, runtime error) encountered;
/// a correct generated submission should never fail.
pub fn judge(
    program: &Program,
    spec: &ProblemSpec,
    input_seed: u64,
    config: &JudgeConfig,
) -> Result<Verdict, InterpError> {
    let mut test_costs = Vec::with_capacity(config.test_cases);
    for t in 0..config.test_cases {
        let mut rng =
            StdRng::seed_from_u64(input_seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let input = spec.generate_input(&mut rng);
        let outcome = run_program(program, &input, &config.cost_model, &config.limits)?;
        test_costs.push(outcome.cost);
    }
    let mean_cost = test_costs.iter().sum::<u64>() as f64 / test_costs.len().max(1) as f64;
    Ok(Verdict {
        mean_cost,
        test_costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Style;
    use crate::spec::{ProblemSpec, ProblemTag};

    #[test]
    fn judging_is_deterministic() {
        let spec = ProblemSpec::curated(ProblemTag::C);
        let p = crate::problems::build(ProblemTag::C, 0, &Style::plain(), &spec.input);
        let cfg = JudgeConfig::default();
        let a = judge(&p, &spec, 42, &cfg).unwrap();
        let b = judge(&p, &spec, 42, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn data_dependent_strategies_vary_across_seeds() {
        // Trial division (B, strategy 1) does input-dependent work, so
        // different judge seeds must produce different costs.
        let spec = ProblemSpec::curated(ProblemTag::B);
        let p = crate::problems::build(ProblemTag::B, 1, &Style::plain(), &spec.input);
        let cfg = JudgeConfig::default();
        let a = judge(&p, &spec, 42, &cfg).unwrap();
        let c = judge(&p, &spec, 43, &cfg).unwrap();
        assert_ne!(
            a.test_costs, c.test_costs,
            "different seeds → different tests"
        );
    }

    #[test]
    fn slower_strategy_judged_slower() {
        let spec = ProblemSpec::curated(ProblemTag::E);
        let cfg = JudgeConfig::default();
        let fast = crate::problems::build(ProblemTag::E, 0, &Style::plain(), &spec.input);
        let slow = crate::problems::build(ProblemTag::E, 2, &Style::plain(), &spec.input);
        let vf = judge(&fast, &spec, 7, &cfg).unwrap();
        let vs = judge(&slow, &spec, 7, &cfg).unwrap();
        assert!(
            vs.mean_cost > 2.0 * vf.mean_cost,
            "expected clear separation: fast {} vs slow {}",
            vf.mean_cost,
            vs.mean_cost
        );
    }

    #[test]
    fn test_case_count_is_respected() {
        let spec = ProblemSpec::curated(ProblemTag::H);
        let p = crate::problems::build(ProblemTag::H, 0, &Style::plain(), &spec.input);
        let cfg = JudgeConfig {
            test_cases: 7,
            ..JudgeConfig::default()
        };
        let v = judge(&p, &spec, 1, &cfg).unwrap();
        assert_eq!(v.test_costs.len(), 7);
    }
}
