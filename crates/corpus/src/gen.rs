//! Submission generation: style sampling and structural mutation.
//!
//! Real Codeforces problems attract thousands of *structurally different*
//! correct solutions. We reproduce that diversity along two axes:
//!
//! * **strategy** — which algorithm the author chose (sampled by popularity
//!   weight; determines asymptotic cost, see [`problems`](crate::problems));
//! * **style** — how the author wrote it (loop forms, helper functions,
//!   redundant passes, temporaries, dead locals…). Some style choices add
//!   real cost (an extra scan), most only perturb the AST shape.
//!
//! Style-only variation is what keeps the learning task honest: the model
//! must separate structure that *matters* for runtime from structure that
//! doesn't, rather than memorising one canonical tree per strategy.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_cppast::ast::*;

use crate::spec::ProblemSpec;

/// Authoring-style knobs for one submission.
///
/// Flags in the first group are consulted by the family templates while
/// building the program (they change emitted code, sometimes its cost);
/// the second group drives the post-hoc AST mutators in [`mutate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Style {
    /// Extract the inner computation into a helper function (adds call
    /// overhead per element — a real, if small, cost).
    pub helper_fn: bool,
    /// Add a harmless extra O(n) bookkeeping pass (real cost).
    pub extra_scan: bool,
    /// Add a second bookkeeping pass (more real cost).
    pub second_extra_scan: bool,
    /// Re-evaluate `v.size()` in loop conditions instead of caching it
    /// (small real cost per iteration).
    pub recompute_size: bool,
    /// Print with `endl`.
    pub use_endl: bool,
    /// Introduce temporaries for intermediate expressions (no cost).
    pub temp_var: bool,

    /// Probability of converting a `for` loop into `while` form.
    pub while_prob: f32,
    /// Number of dead local declarations to sprinkle in.
    pub dead_decls: u8,
    /// Number of dead loops (`for (k = 0; k < 0; k++) …`) to insert.
    ///
    /// These contribute full loop subtrees to the AST at (almost) zero
    /// runtime cost, so loop-*count* histograms stop predicting runtime;
    /// a model must attend to the loop *bound structure* (literal-zero
    /// versus variable bound) — exactly the hierarchical signal the paper
    /// credits the tree-LSTM with capturing.
    pub dead_loops: u8,
    /// Probability of flipping comparison operands (`i < n` → `n > i`).
    pub cond_flip_prob: f32,
    /// Use pre-increment in loop steps.
    pub pre_inc: bool,
}

impl Style {
    /// Samples a style. Probabilities are tuned so most submissions carry a
    /// couple of idiosyncrasies, as real contest code does.
    pub fn sample(rng: &mut StdRng) -> Style {
        Style {
            helper_fn: rng.random_bool(0.3),
            extra_scan: rng.random_bool(0.35),
            second_extra_scan: rng.random_bool(0.15),
            recompute_size: rng.random_bool(0.3),
            use_endl: rng.random_bool(0.5),
            temp_var: rng.random_bool(0.4),
            while_prob: if rng.random_bool(0.35) {
                rng.random_range(0.3..1.0)
            } else {
                0.0
            },
            dead_decls: if rng.random_bool(0.3) {
                rng.random_range(1..4)
            } else {
                0
            },
            dead_loops: if rng.random_bool(0.35) {
                rng.random_range(1..3)
            } else {
                0
            },
            cond_flip_prob: if rng.random_bool(0.25) { 1.0 } else { 0.0 },
            pre_inc: rng.random_bool(0.3),
        }
    }

    /// The canonical style: every knob off. Useful for tests that need a
    /// deterministic program for a strategy.
    pub fn plain() -> Style {
        Style {
            helper_fn: false,
            extra_scan: false,
            second_extra_scan: false,
            recompute_size: false,
            use_endl: false,
            temp_var: false,
            while_prob: 0.0,
            dead_decls: 0,
            dead_loops: 0,
            cond_flip_prob: 0.0,
            pre_inc: false,
        }
    }
}

/// Builds one submission program for `spec` using `strategy` and a sampled
/// style, then applies the structural mutators.
pub fn generate_program(spec: &ProblemSpec, strategy: usize, rng: &mut StdRng) -> Program {
    let style = Style::sample(rng);
    generate_program_with(spec, strategy, &style, rng)
}

/// Like [`generate_program`] but with a caller-chosen style.
pub fn generate_program_with(
    spec: &ProblemSpec,
    strategy: usize,
    style: &Style,
    rng: &mut StdRng,
) -> Program {
    let mut program = crate::problems::build(spec.family, strategy, style, &spec.input);
    mutate(&mut program, style, rng);
    program
}

/// Applies the semantics-preserving structural mutations of `style`.
pub fn mutate(program: &mut Program, style: &Style, rng: &mut StdRng) {
    for func in &mut program.functions {
        let body = std::mem::take(&mut func.body);
        func.body = body
            .into_iter()
            .map(|s| mutate_stmt(s, style, rng))
            .collect();
        for k in 0..style.dead_decls {
            let name = format!("_unused{k}");
            let value = rng.random_range(0..100);
            func.body.insert(
                0,
                Stmt::Decl(Decl {
                    ty: Type::Int,
                    declarators: vec![Declarator {
                        name,
                        init: Some(Init::Expr(Expr::Int(value))),
                    }],
                }),
            );
        }
        for k in 0..style.dead_loops {
            let pos = rng.random_range(0..=func.body.len());
            func.body.insert(pos, dead_loop(k, rng));
        }
    }
}

/// A loop whose bound is a literal zero: a full `ForStmt` subtree (decl,
/// comparison, increment, body with an accumulation) that never executes.
fn dead_loop(k: u8, rng: &mut StdRng) -> Stmt {
    let i = format!("_dz{k}");
    let acc = format!("_dacc{k}");
    let body = vec![
        Stmt::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: acc.clone(),
                init: Some(Init::Expr(Expr::Int(rng.random_range(0..50)))),
            }],
        }),
        Stmt::Expr(Expr::CompoundAssign(
            BinOp::Add,
            Box::new(Expr::var(&acc)),
            Box::new(Expr::var(&i)),
        )),
    ];
    Stmt::For {
        init: Some(ForInit::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: i.clone(),
                init: Some(Init::Expr(Expr::Int(0))),
            }],
        })),
        cond: Some(Expr::bin(BinOp::Lt, Expr::var(&i), Expr::Int(0))),
        step: Some(Expr::IncDec {
            pre: false,
            inc: true,
            target: Box::new(Expr::var(&i)),
        }),
        body: Box::new(Stmt::Block(body)),
    }
}

fn mutate_stmt(stmt: Stmt, style: &Style, rng: &mut StdRng) -> Stmt {
    match stmt {
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let body = Box::new(mutate_stmt(*body, style, rng));
            let cond = cond.map(|c| maybe_flip(c, style, rng));
            let step = step.map(|s| maybe_pre_inc(s, style));
            // `for` → `{ init; while (cond) { body; step; } }`, valid only
            // when the loop body has no top-level `continue` (which would
            // skip the step after conversion).
            if style.while_prob > 0.0
                && rng.random_bool(style.while_prob as f64)
                && !has_direct_continue(&body)
            {
                let mut while_body = match *body {
                    Stmt::Block(stmts) => stmts,
                    other => vec![other],
                };
                if let Some(step) = step {
                    while_body.push(Stmt::Expr(step));
                }
                let while_stmt = Stmt::While {
                    cond: cond.unwrap_or(Expr::Bool(true)),
                    body: Box::new(Stmt::Block(while_body)),
                };
                let mut outer = Vec::new();
                match init {
                    Some(ForInit::Decl(d)) => outer.push(Stmt::Decl(d)),
                    Some(ForInit::Expr(e)) => outer.push(Stmt::Expr(e)),
                    None => {}
                }
                outer.push(while_stmt);
                Stmt::Block(outer)
            } else {
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: maybe_flip(cond, style, rng),
            body: Box::new(mutate_stmt(*body, style, rng)),
        },
        Stmt::If { cond, then, els } => Stmt::If {
            cond,
            then: Box::new(mutate_stmt(*then, style, rng)),
            els: els.map(|e| Box::new(mutate_stmt(*e, style, rng))),
        },
        Stmt::Block(stmts) => Stmt::Block(
            stmts
                .into_iter()
                .map(|s| mutate_stmt(s, style, rng))
                .collect(),
        ),
        other => other,
    }
}

/// Flips comparison operands: `a < b` → `b > a` etc.
fn maybe_flip(cond: Expr, style: &Style, rng: &mut StdRng) -> Expr {
    if style.cond_flip_prob == 0.0 || !rng.random_bool(style.cond_flip_prob as f64) {
        return cond;
    }
    match cond {
        Expr::Binary(op, a, b) => {
            let flipped = match op {
                BinOp::Lt => Some(BinOp::Gt),
                BinOp::Gt => Some(BinOp::Lt),
                BinOp::Le => Some(BinOp::Ge),
                BinOp::Ge => Some(BinOp::Le),
                _ => None,
            };
            match flipped {
                Some(f) => Expr::Binary(f, b, a),
                None => Expr::Binary(op, a, b),
            }
        }
        other => other,
    }
}

fn maybe_pre_inc(step: Expr, style: &Style) -> Expr {
    if !style.pre_inc {
        return step;
    }
    match step {
        Expr::IncDec {
            pre: false,
            inc,
            target,
        } => Expr::IncDec {
            pre: true,
            inc,
            target,
        },
        other => other,
    }
}

/// `true` if a `continue` occurs in this statement *without* an intervening
/// loop (i.e. it would bind to the loop whose body this is).
fn has_direct_continue(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Continue => true,
        Stmt::Block(stmts) => stmts.iter().any(has_direct_continue),
        Stmt::If { then, els, .. } => {
            has_direct_continue(then) || els.as_deref().is_some_and(has_direct_continue)
        }
        // continue inside a nested loop binds to that loop.
        Stmt::For { .. } | Stmt::While { .. } => false,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, InputTok, Limits};
    use crate::spec::{ProblemSpec, ProblemTag};
    use ccsa_cppast::{parse_program, print_program};
    use rand::SeedableRng;

    /// Every mutation must preserve program output on the same input.
    #[test]
    fn mutations_preserve_semantics() {
        let mut rng = StdRng::seed_from_u64(3);
        for tag in ProblemTag::ALL {
            let spec = ProblemSpec::curated(tag);
            let input = spec.generate_input(&mut rng);
            for strategy in 0..spec.strategies.len() {
                let plain = crate::problems::build(tag, strategy, &Style::plain(), &spec.input);
                let base = run_program(&plain, &input, &CostModel::default(), &Limits::default())
                    .unwrap_or_else(|e| panic!("{tag} s{strategy} plain run failed: {e}"));
                // Aggressive structural mutation, zero cost-affecting flags
                // (dead loops cost only their single failed condition check,
                // which does not alter program output).
                let style = Style {
                    while_prob: 1.0,
                    dead_decls: 3,
                    dead_loops: 2,
                    cond_flip_prob: 1.0,
                    pre_inc: true,
                    ..Style::plain()
                };
                let mut mutated = plain.clone();
                mutate(&mut mutated, &style, &mut rng);
                let got = run_program(&mutated, &input, &CostModel::default(), &Limits::default())
                    .unwrap_or_else(|e| panic!("{tag} s{strategy} mutated run failed: {e}"));
                assert_eq!(
                    base.output, got.output,
                    "{tag} strategy {strategy}: mutation changed output"
                );
            }
        }
    }

    #[test]
    fn generated_programs_print_and_reparse() {
        let mut rng = StdRng::seed_from_u64(11);
        for tag in ProblemTag::ALL {
            let spec = ProblemSpec::curated(tag);
            for _ in 0..5 {
                let strategy = spec.sample_strategy(&mut rng);
                let p = generate_program(&spec, strategy, &mut rng);
                let printed = print_program(&p);
                let reparsed = parse_program(&printed)
                    .unwrap_or_else(|e| panic!("{tag} reparse failed: {e}\n{printed}"));
                assert_eq!(p.functions, reparsed.functions, "{tag} round-trip mismatch");
            }
        }
    }

    #[test]
    fn style_sampling_is_deterministic() {
        let a = Style::sample(&mut StdRng::seed_from_u64(5));
        let b = Style::sample(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn while_conversion_skips_continue_bodies() {
        let body = Stmt::Block(vec![Stmt::If {
            cond: Expr::Bool(true),
            then: Box::new(Stmt::Continue),
            els: None,
        }]);
        assert!(has_direct_continue(&body));
        let nested = Stmt::Block(vec![Stmt::While {
            cond: Expr::Bool(false),
            body: Box::new(Stmt::Continue),
        }]);
        assert!(!has_direct_continue(&nested));
    }

    #[test]
    fn input_generation_is_seeded() {
        let spec = ProblemSpec::curated(ProblemTag::B);
        let a = spec.generate_input(&mut StdRng::seed_from_u64(9));
        let b = spec.generate_input(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert!(matches!(a[0], InputTok::Int(_)));
    }
}
