//! Ergonomic constructors for building mini-C++ programs in Rust.
//!
//! Problem templates (see [`problems`](crate::problems)) compose typed ASTs
//! with these helpers, keeping each algorithmic strategy readable:
//!
//! ```
//! use ccsa_corpus::builder as b;
//! use ccsa_cppast::{print_program, Type};
//!
//! // int main() { int n; cin >> n; long long s = 0;
//! //              for (…) s += i; cout << s; return 0; }
//! let main = b::func(Type::Int, "main", vec![], vec![
//!     b::decl(Type::Int, "n", None),
//!     b::cin(vec![b::var("n")]),
//!     b::decl(Type::Int, "s", Some(b::int(0))),
//!     b::for_i("i", b::int(0), b::var("n"), vec![
//!         b::expr(b::add_assign(b::var("s"), b::var("i"))),
//!     ]),
//!     b::cout(vec![b::var("s")]),
//!     b::ret(Some(b::int(0))),
//! ]);
//! let program = b::program(vec![main]);
//! assert!(print_program(&program).contains("for ("));
//! ```

use ccsa_cppast::ast::*;

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::Int(v)
}

/// Float literal.
pub fn float(v: f64) -> Expr {
    Expr::Float(v)
}

/// String literal.
pub fn str_lit(s: &str) -> Expr {
    Expr::Str(s.to_string())
}

/// Char literal.
pub fn char_lit(c: char) -> Expr {
    Expr::Char(c)
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// Binary operation.
pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary(op, Box::new(lhs), Box::new(rhs))
}

/// `lhs + rhs`.
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Add, lhs, rhs)
}

/// `lhs - rhs`.
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sub, lhs, rhs)
}

/// `lhs * rhs`.
pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mul, lhs, rhs)
}

/// `lhs / rhs`.
pub fn div(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Div, lhs, rhs)
}

/// `lhs % rhs`.
pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mod, lhs, rhs)
}

/// `lhs < rhs`.
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Lt, lhs, rhs)
}

/// `lhs <= rhs`.
pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Le, lhs, rhs)
}

/// `lhs > rhs`.
pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Gt, lhs, rhs)
}

/// `lhs >= rhs`.
pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Ge, lhs, rhs)
}

/// `lhs == rhs`.
pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Eq, lhs, rhs)
}

/// `lhs != rhs`.
pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Ne, lhs, rhs)
}

/// `lhs && rhs`.
pub fn and(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::And, lhs, rhs)
}

/// `lhs || rhs`.
pub fn or(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Or, lhs, rhs)
}

/// `!e`.
pub fn not(e: Expr) -> Expr {
    Expr::Unary(UnOp::Not, Box::new(e))
}

/// `-e`. Negated literals fold into negative literals — the canonical
/// form the parser produces, keeping print → parse the identity.
pub fn neg(e: Expr) -> Expr {
    match e {
        Expr::Int(v) => Expr::Int(-v),
        Expr::Float(v) => Expr::Float(-v),
        other => Expr::Unary(UnOp::Neg, Box::new(other)),
    }
}

/// `target = value`.
pub fn assign(target: Expr, value: Expr) -> Expr {
    Expr::Assign(Box::new(target), Box::new(value))
}

/// `target += value`.
pub fn add_assign(target: Expr, value: Expr) -> Expr {
    Expr::CompoundAssign(BinOp::Add, Box::new(target), Box::new(value))
}

/// `target -= value`.
pub fn sub_assign(target: Expr, value: Expr) -> Expr {
    Expr::CompoundAssign(BinOp::Sub, Box::new(target), Box::new(value))
}

/// `target *= value`.
pub fn mul_assign(target: Expr, value: Expr) -> Expr {
    Expr::CompoundAssign(BinOp::Mul, Box::new(target), Box::new(value))
}

/// `target++`.
pub fn post_inc(target: Expr) -> Expr {
    Expr::IncDec {
        pre: false,
        inc: true,
        target: Box::new(target),
    }
}

/// `base[index]`.
pub fn idx(base: Expr, index: Expr) -> Expr {
    Expr::Index(Box::new(base), Box::new(index))
}

/// `base[i][j]`.
pub fn idx2(base: Expr, i: Expr, j: Expr) -> Expr {
    idx(idx(base, i), j)
}

/// Free-function call.
pub fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call(name.to_string(), args)
}

/// Method call.
pub fn method(recv: Expr, name: &str, args: Vec<Expr>) -> Expr {
    Expr::MethodCall(Box::new(recv), name.to_string(), args)
}

/// `v.size()`.
pub fn size_of(recv: Expr) -> Expr {
    method(recv, "size", vec![])
}

/// `v.push_back(value)`.
pub fn push_back(recv: Expr, value: Expr) -> Expr {
    method(recv, "push_back", vec![value])
}

/// `sort(v.begin(), v.end())`.
pub fn sort_call(v: &str) -> Expr {
    call(
        "sort",
        vec![
            method(var(v), "begin", vec![]),
            method(var(v), "end", vec![]),
        ],
    )
}

/// `cond ? a : b`.
pub fn ternary(cond: Expr, a: Expr, b: Expr) -> Expr {
    Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b))
}

/// `(ty)e`.
pub fn cast(ty: Type, e: Expr) -> Expr {
    Expr::Cast(ty, Box::new(e))
}

/// Declaration statement with optional `=` initialiser.
pub fn decl(ty: Type, name: &str, init: Option<Expr>) -> Stmt {
    Stmt::Decl(Decl {
        ty,
        declarators: vec![Declarator {
            name: name.to_string(),
            init: init.map(Init::Expr),
        }],
    })
}

/// Declaration with constructor syntax: `vector<long long> v(n, 0);`.
pub fn decl_ctor(ty: Type, name: &str, args: Vec<Expr>) -> Stmt {
    Stmt::Decl(Decl {
        ty,
        declarators: vec![Declarator {
            name: name.to_string(),
            init: Some(Init::Ctor(args)),
        }],
    })
}

/// Expression statement.
pub fn expr(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

/// `cin >> t0 >> t1 …`.
pub fn cin(targets: Vec<Expr>) -> Stmt {
    Stmt::Expr(Expr::StreamIn(targets))
}

/// `cout << v0 << v1 …`.
pub fn cout(values: Vec<Expr>) -> Stmt {
    Stmt::Expr(Expr::StreamOut(values))
}

/// `cout << v << endl`.
pub fn coutln(value: Expr) -> Stmt {
    cout(vec![value, var("endl")])
}

/// Canonical counting loop `for (long long i = from; i < to; i++) { body }`.
pub fn for_i(i: &str, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(ForInit::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: i.to_string(),
                init: Some(Init::Expr(from)),
            }],
        })),
        cond: Some(lt(var(i), to)),
        step: Some(post_inc(var(i))),
        body: Box::new(Stmt::Block(body)),
    }
}

/// Inclusive loop `for (long long i = from; i <= to; i++) { body }`.
pub fn for_i_incl(i: &str, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(ForInit::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: i.to_string(),
                init: Some(Init::Expr(from)),
            }],
        })),
        cond: Some(le(var(i), to)),
        step: Some(post_inc(var(i))),
        body: Box::new(Stmt::Block(body)),
    }
}

/// `target--`.
pub fn post_dec(target: Expr) -> Expr {
    Expr::IncDec {
        pre: false,
        inc: false,
        target: Box::new(target),
    }
}

/// Descending inclusive loop `for (long long i = from; i >= down_to; i--)`.
pub fn for_desc(i: &str, from: Expr, down_to: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(ForInit::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: i.to_string(),
                init: Some(Init::Expr(from)),
            }],
        })),
        cond: Some(ge(var(i), down_to)),
        step: Some(post_dec(var(i))),
        body: Box::new(Stmt::Block(body)),
    }
}

/// Fully custom counting loop `for (long long i = init; cond; step)`.
pub fn for_custom(i: &str, init: Expr, cond: Expr, step: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(ForInit::Decl(Decl {
            ty: Type::Int,
            declarators: vec![Declarator {
                name: i.to_string(),
                init: Some(Init::Expr(init)),
            }],
        })),
        cond: Some(cond),
        step: Some(step),
        body: Box::new(Stmt::Block(body)),
    }
}

/// `while (cond) { body }`.
pub fn while_loop(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While {
        cond,
        body: Box::new(Stmt::Block(body)),
    }
}

/// `if (cond) { then }`.
pub fn if_then(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then: Box::new(Stmt::Block(then)),
        els: None,
    }
}

/// `if (cond) { then } else { els }`.
pub fn if_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then: Box::new(Stmt::Block(then)),
        els: Some(Box::new(Stmt::Block(els))),
    }
}

/// `return e?;`.
pub fn ret(e: Option<Expr>) -> Stmt {
    Stmt::Return(e)
}

/// `break;`.
pub fn brk() -> Stmt {
    Stmt::Break
}

/// `continue;`.
pub fn cont() -> Stmt {
    Stmt::Continue
}

/// A block statement.
pub fn block(stmts: Vec<Stmt>) -> Stmt {
    Stmt::Block(stmts)
}

/// A function definition.
pub fn func(ret: Type, name: &str, params: Vec<(Type, &str)>, body: Vec<Stmt>) -> Function {
    Function {
        ret,
        name: name.to_string(),
        params: params
            .into_iter()
            .map(|(t, n)| (t, n.to_string()))
            .collect(),
        body,
    }
}

/// A program from functions (standard preamble added).
pub fn program(functions: Vec<Function>) -> Program {
    Program {
        preprocessor: vec!["include <bits/stdc++.h>".to_string()],
        globals: Vec::new(),
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, CostModel, InputTok, Limits};
    use ccsa_cppast::{parse_program, print_program};

    #[test]
    fn built_program_roundtrips_and_runs() {
        let main = func(
            Type::Int,
            "main",
            vec![],
            vec![
                decl(Type::Int, "n", None),
                cin(vec![var("n")]),
                decl(Type::Int, "s", Some(int(0))),
                for_i(
                    "i",
                    int(0),
                    var("n"),
                    vec![expr(add_assign(var("s"), var("i")))],
                ),
                coutln(var("s")),
                ret(Some(int(0))),
            ],
        );
        let p = program(vec![main]);
        let printed = print_program(&p);
        let reparsed = parse_program(&printed).expect("builder output must parse");
        assert_eq!(p.functions, reparsed.functions);
        let out = run_program(
            &reparsed,
            &[InputTok::Int(10)],
            &CostModel::default(),
            &Limits::default(),
        )
        .expect("run");
        assert_eq!(out.output.trim(), "45");
    }

    #[test]
    fn helpers_compose() {
        // ternary(1) + and(1) + lt(3) + not(1) + eq(3) + two branch literals.
        let e = ternary(
            and(lt(int(1), int(2)), not(eq(int(3), int(4)))),
            int(1),
            int(0),
        );
        assert_eq!(e.node_count(), 11);
    }
}
