//! Corpus assembly: labelled submissions per problem, Table I statistics.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ccsa_cppast::{parse_program, print_program, AstGraph};

use crate::calibrate::{calibration_scale, median};
use crate::gen::generate_program;
use crate::interp::InterpError;
use crate::judge::{judge, JudgeConfig};
use crate::spec::{ProblemKey, ProblemSpec, ProblemTag};

/// One labelled submission: the artefact the learning pipeline consumes.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Index within its problem dataset.
    pub id: u32,
    /// Problem this solves.
    pub problem: ProblemKey,
    /// Which strategy the generator sampled (hidden from the models;
    /// retained for diagnostics and ablations).
    pub strategy: usize,
    /// The C++ source text.
    pub source: String,
    /// The model-facing AST (parsed back from `source`, like the paper's
    /// ROSE pipeline).
    pub graph: AstGraph,
    /// Judge-measured runtime in (calibrated, noisy) milliseconds.
    pub runtime_ms: f64,
}

/// Corpus-generation settings.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Submissions generated per problem.
    pub submissions_per_problem: usize,
    /// Judge settings (tests per submission, noise, cost model).
    pub judge: JudgeConfig,
    /// Calibration batch size.
    pub calibration_sample: usize,
    /// Master seed; every submission derives a unique child seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            submissions_per_problem: 120,
            judge: JudgeConfig::default(),
            calibration_sample: 16,
            seed: 0xcc5a,
        }
    }
}

impl CorpusConfig {
    /// A reduced configuration for unit tests and doc examples.
    pub fn tiny(seed: u64) -> CorpusConfig {
        CorpusConfig {
            submissions_per_problem: 24,
            judge: JudgeConfig {
                test_cases: 2,
                ..JudgeConfig::default()
            },
            calibration_sample: 6,
            seed,
        }
    }
}

/// Summary statistics in the shape of a Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Number of submissions.
    pub count: usize,
    /// Minimum runtime (ms).
    pub min_ms: f64,
    /// Median runtime (ms).
    pub median_ms: f64,
    /// Maximum runtime (ms).
    pub max_ms: f64,
    /// Standard deviation (ms).
    pub stddev_ms: f64,
}

/// All submissions for a single problem.
#[derive(Debug, Clone)]
pub struct ProblemDataset {
    /// The problem definition.
    pub spec: ProblemSpec,
    /// The ms-per-cost-unit calibration factor used.
    pub scale: f64,
    /// Labelled submissions.
    pub submissions: Vec<Submission>,
}

impl ProblemDataset {
    /// Generates a labelled dataset for one problem.
    ///
    /// Each submission is built, printed to source, re-parsed (the paper's
    /// source → AST pipeline), judged on shared test cases, and labelled
    /// with a calibrated, noise-perturbed runtime.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures (a correct corpus never produces
    /// them — they indicate a template bug).
    pub fn generate(
        spec: ProblemSpec,
        config: &CorpusConfig,
    ) -> Result<ProblemDataset, InterpError> {
        let scale =
            calibration_scale(&spec, &config.judge, config.calibration_sample, config.seed)?;
        let mut submissions = Vec::with_capacity(config.submissions_per_problem);
        let problem_salt = problem_salt(spec.key);
        for i in 0..config.submissions_per_problem {
            let sub_seed = config.seed ^ problem_salt ^ ((i as u64) << 24);
            let mut rng = StdRng::seed_from_u64(sub_seed);
            let strategy = spec.sample_strategy(&mut rng);
            let program = generate_program(&spec, strategy, &mut rng);
            let source = print_program(&program);
            let reparsed = parse_program(&source).unwrap_or_else(|e| {
                panic!(
                    "generated source failed to parse ({}): {e}\n{source}",
                    spec.key
                )
            });
            let graph = AstGraph::from_program(&reparsed);
            let verdict = judge(&reparsed, &spec, config.seed ^ problem_salt, &config.judge)?;
            let noise = if config.judge.noise_sigma > 0.0 {
                (config.judge.noise_sigma * gaussian(&mut rng)).exp()
            } else {
                1.0
            };
            let runtime_ms = verdict.mean_cost * scale * noise;
            submissions.push(Submission {
                id: i as u32,
                problem: spec.key,
                strategy,
                source,
                graph,
                runtime_ms,
            });
        }
        Ok(ProblemDataset {
            spec,
            scale,
            submissions,
        })
    }

    /// Runtime statistics of this dataset (a measured Table I row).
    pub fn stats(&self) -> RuntimeStats {
        let times: Vec<f64> = self.submissions.iter().map(|s| s.runtime_ms).collect();
        let count = times.len();
        let min_ms = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max_ms = times.iter().copied().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / count.max(1) as f64;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / count.max(1) as f64;
        RuntimeStats {
            count,
            min_ms,
            median_ms: median(&times),
            max_ms,
            stddev_ms: var.sqrt(),
        }
    }
}

fn problem_salt(key: ProblemKey) -> u64 {
    match key {
        ProblemKey::Curated(tag) => (tag as u64 + 1) * 0x0101_0101_0101,
        ProblemKey::Mp(i) => 0xa5a5_0000 ^ ((i as u64 + 1) * 0x1357_9bdf),
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates datasets for all nine curated problems.
///
/// # Errors
///
/// Propagates the first generation failure.
pub fn curated_corpus(config: &CorpusConfig) -> Result<Vec<ProblemDataset>, InterpError> {
    ProblemTag::ALL
        .iter()
        .map(|&tag| ProblemDataset::generate(ProblemSpec::curated(tag), config))
        .collect()
}

/// Generates the MP dataset: `per_problem` submissions from each of
/// `problems` distinct parametric problems (the paper uses 100 × 100; the
/// defaults here are smaller for CPU-budget reasons — scale up via the
/// arguments).
///
/// # Errors
///
/// Propagates the first generation failure.
pub fn mp_corpus(
    problems: u16,
    per_problem: usize,
    config: &CorpusConfig,
) -> Result<Vec<ProblemDataset>, InterpError> {
    (0..problems)
        .map(|i| {
            let spec = ProblemSpec::mp(i, config.seed);
            let cfg = CorpusConfig {
                submissions_per_problem: per_problem,
                ..config.clone()
            };
            ProblemDataset::generate(spec, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_generation_is_deterministic() {
        let spec = ProblemSpec::curated(ProblemTag::H);
        let cfg = CorpusConfig::tiny(3);
        let a = ProblemDataset::generate(spec.clone(), &cfg).unwrap();
        let b = ProblemDataset::generate(spec, &cfg).unwrap();
        assert_eq!(a.submissions.len(), b.submissions.len());
        for (x, y) in a.submissions.iter().zip(&b.submissions) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.runtime_ms, y.runtime_ms);
        }
    }

    #[test]
    fn runtimes_vary_and_track_strategy() {
        let spec = ProblemSpec::curated(ProblemTag::E);
        let ds = ProblemDataset::generate(spec, &CorpusConfig::tiny(11)).unwrap();
        let stats = ds.stats();
        assert!(
            stats.max_ms > 2.0 * stats.min_ms,
            "runtimes too uniform: {stats:?}"
        );
        // Group mean runtime must increase with declared cost rank.
        let mut by_rank: std::collections::BTreeMap<u8, Vec<f64>> = Default::default();
        for s in &ds.submissions {
            let rank = ds.spec.strategies[s.strategy].cost_rank;
            by_rank.entry(rank).or_default().push(s.runtime_ms);
        }
        let means: Vec<f64> = by_rank
            .values()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "strategy rank means not ordered: {means:?}");
        }
    }

    #[test]
    fn sources_look_like_cpp() {
        let spec = ProblemSpec::curated(ProblemTag::A);
        let ds = ProblemDataset::generate(spec, &CorpusConfig::tiny(2)).unwrap();
        for s in &ds.submissions {
            assert!(s.source.contains("int main()"));
            assert!(s.graph.node_count() > 20);
        }
    }

    #[test]
    fn submissions_within_problem_are_structurally_diverse() {
        let spec = ProblemSpec::curated(ProblemTag::C);
        let ds = ProblemDataset::generate(spec, &CorpusConfig::tiny(5)).unwrap();
        let distinct: std::collections::HashSet<&str> =
            ds.submissions.iter().map(|s| s.source.as_str()).collect();
        assert!(
            distinct.len() > ds.submissions.len() / 2,
            "too many identical submissions: {} of {}",
            distinct.len(),
            ds.submissions.len()
        );
    }
}
