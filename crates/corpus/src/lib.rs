//! Synthetic Codeforces-style corpus: program generator, cost-model
//! interpreter and judge.
//!
//! The paper trains on 4.3 M real Codeforces submissions annotated with
//! judge-measured runtimes. This crate is the drop-in substitute: for each
//! of the nine curated problems of Table I (and a parametric multi-problem
//! pool) it *generates* structurally diverse correct solutions in mini-C++,
//! *executes* them in a cost-model interpreter on judge-style test cases,
//! and labels each with a calibrated, noise-perturbed runtime.
//!
//! The result has the properties the learning task needs:
//!
//! * runtime orderings track algorithmic structure (loop nesting, sorting,
//!   recursion) — the signal;
//! * authoring-style variation perturbs AST shape without changing cost,
//!   and measurement noise blurs close calls — the confounders.
//!
//! # Example
//!
//! ```
//! use ccsa_corpus::dataset::{CorpusConfig, ProblemDataset};
//! use ccsa_corpus::spec::{ProblemSpec, ProblemTag};
//!
//! let spec = ProblemSpec::curated(ProblemTag::H);
//! let ds = ProblemDataset::generate(spec, &CorpusConfig::tiny(1)).unwrap();
//! assert_eq!(ds.submissions.len(), 24);
//! let stats = ds.stats();
//! assert!(stats.min_ms < stats.max_ms);
//! ```

pub mod builder;
pub mod calibrate;
pub mod dataset;
pub mod gen;
pub mod interp;
pub mod judge;
pub mod problems;
pub mod spec;

pub use dataset::{
    curated_corpus, mp_corpus, CorpusConfig, ProblemDataset, RuntimeStats, Submission,
};
pub use gen::{generate_program, Style};
pub use interp::{run_program, CostModel, InputTok, InterpError, Limits, RunOutcome, Value};
pub use judge::{judge, JudgeConfig, Verdict};
pub use spec::{InputSpec, PaperStats, ProblemKey, ProblemSpec, ProblemTag, Strategy};
