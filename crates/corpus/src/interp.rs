//! A cost-model tree-walking interpreter for mini-C++.
//!
//! This is the substitute for the Codeforces judge's runtime measurement:
//! each generated submission is *executed* on judge-style inputs, and every
//! operation charges cost units according to a [`CostModel`]. The
//! accumulated cost is later calibrated to milliseconds (see
//! [`calibrate`](crate::calibrate)), so two submissions with different
//! algorithmic structure get runtimes whose *ordering* reflects their real
//! asymptotic behaviour — exactly the signal the paper's models learn.
//!
//! Semantics follow C++ closely enough for contest-style code: integer
//! arithmetic on `i64`, vectors with reference parameter passing and value
//! assignment, short-circuit booleans, and `cin`/`cout` streams.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use ccsa_cppast::ast::*;

/// Cost-unit prices for each operation class.
///
/// The defaults are loosely modelled on instruction counts of compiled
/// C++ on a Skylake-class core; absolute values are irrelevant (calibration
/// rescales them) — only *ratios* matter, because they set the relative
/// price of e.g. a division versus an array access.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Add/sub/bit ops and logical ops.
    pub arith: u64,
    /// Multiplication.
    pub mul: u64,
    /// Division and modulo.
    pub div: u64,
    /// Comparisons.
    pub cmp: u64,
    /// Plain assignment / declaration initialisation.
    pub assign: u64,
    /// One subscript operation (bounds check + address computation).
    pub index: u64,
    /// Amortised `push_back`.
    pub push_back: u64,
    /// Calling a user function (frame setup).
    pub call: u64,
    /// Per-iteration loop overhead (branch + increment path).
    pub loop_iter: u64,
    /// Reading or writing one stream token.
    pub io_token: u64,
    /// Per-element-per-log2 cost of `sort`.
    pub sort_factor: u64,
    /// Method-call dispatch overhead.
    pub method: u64,
    /// Per-character cost of string operations (compare, hash, concat).
    pub str_char: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            arith: 1,
            mul: 3,
            div: 12,
            cmp: 1,
            assign: 1,
            index: 2,
            push_back: 4,
            call: 16,
            loop_iter: 2,
            io_token: 24,
            sort_factor: 8,
            method: 2,
            str_char: 1,
        }
    }
}

/// A runtime value.
///
/// Vectors are `Rc<RefCell<…>>` so that reference parameters alias (as the
/// generated `vector<T>&` signatures demand) while whole-vector assignment
/// deep-copies (C++ value semantics) — see [`Value::deep_copy`].
#[derive(Debug, Clone)]
pub enum Value {
    /// Any integer (`int` … `long long` widen to 64-bit).
    Int(i64),
    /// `double`.
    Double(f64),
    /// `bool`.
    Bool(bool),
    /// `char`.
    Char(char),
    /// `std::string`.
    Str(String),
    /// `vector<long long>`.
    VecInt(Rc<RefCell<Vec<i64>>>),
    /// `vector<vector<long long>>`.
    VecVec(Rc<RefCell<Vec<Vec<i64>>>>),
    /// `vector<string>`.
    VecStr(Rc<RefCell<Vec<String>>>),
}

impl Value {
    /// The default value of a declared-but-uninitialised variable.
    pub fn default_of(ty: &Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Double => Value::Double(0.0),
            Type::Bool => Value::Bool(false),
            Type::Char => Value::Char('\0'),
            Type::Str => Value::Str(String::new()),
            Type::Void => Value::Int(0),
            Type::Vec(inner) => match inner.as_ref() {
                Type::Vec(_) => Value::VecVec(Rc::new(RefCell::new(Vec::new()))),
                Type::Str => Value::VecStr(Rc::new(RefCell::new(Vec::new()))),
                _ => Value::VecInt(Rc::new(RefCell::new(Vec::new()))),
            },
        }
    }

    /// C++ value semantics for `a = b`: containers are cloned, scalars
    /// copied.
    pub fn deep_copy(&self) -> Value {
        match self {
            Value::VecInt(v) => Value::VecInt(Rc::new(RefCell::new(v.borrow().clone()))),
            Value::VecVec(v) => Value::VecVec(Rc::new(RefCell::new(v.borrow().clone()))),
            Value::VecStr(v) => Value::VecStr(Rc::new(RefCell::new(v.borrow().clone()))),
            other => other.clone(),
        }
    }

    /// Numeric truthiness (`if (x)`).
    fn truthy(&self) -> Result<bool, InterpError> {
        Ok(match self {
            Value::Int(v) => *v != 0,
            Value::Bool(b) => *b,
            Value::Double(d) => *d != 0.0,
            Value::Char(c) => *c != '\0',
            other => {
                return Err(InterpError::type_error(format!(
                    "{other:?} used as condition"
                )))
            }
        })
    }

    fn as_int(&self) -> Result<i64, InterpError> {
        Ok(match self {
            Value::Int(v) => *v,
            Value::Bool(b) => *b as i64,
            Value::Char(c) => *c as i64,
            Value::Double(d) => *d as i64,
            other => {
                return Err(InterpError::type_error(format!(
                    "{other:?} used as integer"
                )))
            }
        })
    }

    fn as_double(&self) -> Result<f64, InterpError> {
        Ok(match self {
            Value::Int(v) => *v as f64,
            Value::Double(d) => *d,
            Value::Bool(b) => *b as i64 as f64,
            Value::Char(c) => *c as i64 as f64,
            other => return Err(InterpError::type_error(format!("{other:?} used as double"))),
        })
    }
}

/// One token of judge input.
#[derive(Debug, Clone, PartialEq)]
pub enum InputTok {
    /// A whitespace-separated integer.
    Int(i64),
    /// A whitespace-separated word.
    Str(String),
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel budget was exhausted (the judge's TLE).
    Timeout {
        /// The configured budget that was exceeded.
        fuel: u64,
    },
    /// Division or modulo by zero.
    DivideByZero,
    /// Subscript out of range.
    IndexOutOfBounds {
        /// Container length at the time of access.
        len: usize,
        /// Offending index.
        index: i64,
    },
    /// Name lookup failed.
    UndefinedVariable(String),
    /// Unknown function.
    UndefinedFunction(String),
    /// `cin` read past the end of the input.
    InputExhausted,
    /// Call stack exceeded the recursion limit.
    RecursionLimit(usize),
    /// A container grew past the memory guard.
    MemoryLimit(usize),
    /// Mistyped operation (message describes it).
    TypeError(String),
    /// The program has no `main` function.
    MissingMain,
}

impl InterpError {
    fn type_error(msg: impl Into<String>) -> InterpError {
        InterpError::TypeError(msg.into())
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Timeout { fuel } => write!(f, "time limit exceeded (fuel {fuel})"),
            InterpError::DivideByZero => write!(f, "division by zero"),
            InterpError::IndexOutOfBounds { len, index } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            InterpError::UndefinedVariable(name) => write!(f, "undefined variable '{name}'"),
            InterpError::UndefinedFunction(name) => write!(f, "undefined function '{name}'"),
            InterpError::InputExhausted => write!(f, "input exhausted"),
            InterpError::RecursionLimit(n) => write!(f, "recursion limit {n} exceeded"),
            InterpError::MemoryLimit(n) => write!(f, "memory limit {n} elements exceeded"),
            InterpError::TypeError(msg) => write!(f, "type error: {msg}"),
            InterpError::MissingMain => write!(f, "program has no main function"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Total cost units charged.
    pub cost: u64,
    /// Captured standard output (truncated at 1 MiB).
    pub output: String,
    /// Value returned from `main`.
    pub exit_code: i64,
}

/// Hard limits guarding a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Cost-unit budget (TLE above this).
    pub fuel: u64,
    /// Maximum call depth.
    pub recursion: usize,
    /// Maximum total elements a single container may hold.
    pub container: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            fuel: 200_000_000,
            recursion: 20_000,
            container: 8_000_000,
        }
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Lvalue destinations, resolved before mutation so the environment borrow
/// never overlaps sub-expression evaluation.
enum Place {
    Var(String),
    VecIntElem(Rc<RefCell<Vec<i64>>>, usize),
    VecVecRow(Rc<RefCell<Vec<Vec<i64>>>>, usize),
    VecVecElem(Rc<RefCell<Vec<Vec<i64>>>>, usize, usize),
    VecStrElem(Rc<RefCell<Vec<String>>>, usize),
}

/// Executes a program against input tokens under a cost model.
///
/// # Errors
///
/// Any [`InterpError`]; [`InterpError::Timeout`] plays the role of the
/// judge's TLE verdict.
///
/// # Example
///
/// ```
/// use ccsa_cppast::parse_program;
/// use ccsa_corpus::interp::{run_program, CostModel, InputTok, Limits};
///
/// let p = parse_program(
///     "int main() { int n; cin >> n; long long s = 0; \
///      for (int i = 1; i <= n; i++) s += i; cout << s; return 0; }",
/// ).unwrap();
/// let out = run_program(&p, &[InputTok::Int(10)], &CostModel::default(), &Limits::default())?;
/// assert_eq!(out.output.trim(), "55");
/// # Ok::<(), ccsa_corpus::interp::InterpError>(())
/// ```
pub fn run_program(
    program: &Program,
    input: &[InputTok],
    cost: &CostModel,
    limits: &Limits,
) -> Result<RunOutcome, InterpError> {
    let main = program.function("main").ok_or(InterpError::MissingMain)?;
    let mut interp = Interp {
        program,
        cost_model: cost.clone(),
        limits: limits.clone(),
        globals: HashMap::new(),
        frames: Vec::new(),
        input: input.iter().cloned().collect(),
        output: String::new(),
        cost: 0,
    };
    // Globals are initialised before main, in declaration order.
    interp.frames.push(Frame {
        scopes: vec![HashMap::new()],
    });
    for decl in &program.globals {
        interp.exec_decl(decl, true)?;
    }
    interp.frames.pop();

    interp.frames.push(Frame {
        scopes: vec![HashMap::new()],
    });
    let flow = interp.exec_block(&main.body)?;
    let exit_code = match flow {
        Flow::Return(v) => v.as_int().unwrap_or(0),
        _ => 0,
    };
    Ok(RunOutcome {
        cost: interp.cost,
        output: interp.output,
        exit_code,
    })
}

struct Frame {
    scopes: Vec<HashMap<String, Value>>,
}

struct Interp<'p> {
    program: &'p Program,
    cost_model: CostModel,
    limits: Limits,
    globals: HashMap<String, Value>,
    frames: Vec<Frame>,
    input: VecDeque<InputTok>,
    output: String,
    cost: u64,
}

const OUTPUT_CAP: usize = 1 << 20;

impl<'p> Interp<'p> {
    fn charge(&mut self, units: u64) -> Result<(), InterpError> {
        self.cost += units;
        if self.cost > self.limits.fuel {
            Err(InterpError::Timeout {
                fuel: self.limits.fuel,
            })
        } else {
            Ok(())
        }
    }

    // ── Environment ────────────────────────────────────────────────────

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no active frame")
    }

    fn declare(&mut self, name: &str, value: Value, global: bool) {
        if global {
            self.globals.insert(name.to_string(), value);
        } else {
            self.frame()
                .scopes
                .last_mut()
                .expect("no scope")
                .insert(name.to_string(), value);
        }
    }

    fn lookup(&self, name: &str) -> Result<Value, InterpError> {
        if let Some(frame) = self.frames.last() {
            for scope in frame.scopes.iter().rev() {
                if let Some(v) = scope.get(name) {
                    return Ok(v.clone());
                }
            }
        }
        self.globals
            .get(name)
            .cloned()
            .ok_or_else(|| InterpError::UndefinedVariable(name.to_string()))
    }

    fn store(&mut self, name: &str, value: Value) -> Result<(), InterpError> {
        if let Some(frame) = self.frames.last_mut() {
            for scope in frame.scopes.iter_mut().rev() {
                if let Some(slot) = scope.get_mut(name) {
                    *slot = value;
                    return Ok(());
                }
            }
        }
        match self.globals.get_mut(name) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(InterpError::UndefinedVariable(name.to_string())),
        }
    }

    // ── Statements ─────────────────────────────────────────────────────

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, InterpError> {
        self.frame().scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in stmts {
            flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.frame().scopes.pop();
        Ok(flow)
    }

    fn exec_decl(&mut self, decl: &Decl, global: bool) -> Result<(), InterpError> {
        for d in &decl.declarators {
            self.charge(self.cost_model.assign)?;
            let value = match &d.init {
                None => Value::default_of(&decl.ty),
                Some(Init::Expr(e)) => {
                    let v = self.eval(e)?;
                    self.coerce_to(&decl.ty, v)?
                }
                Some(Init::Ctor(args)) => self.construct(&decl.ty, args)?,
            };
            self.declare(&d.name, value, global);
        }
        Ok(())
    }

    fn construct(&mut self, ty: &Type, args: &[Expr]) -> Result<Value, InterpError> {
        let vals: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<Result<_, _>>()?;
        match ty {
            Type::Vec(inner) => {
                let n = vals.first().map_or(Ok(0), Value::as_int)?;
                if n < 0 || n as usize > self.limits.container {
                    return Err(InterpError::MemoryLimit(self.limits.container));
                }
                let n = n as usize;
                self.charge(self.cost_model.assign * n as u64 / 4 + 1)?;
                Ok(match inner.as_ref() {
                    Type::Vec(_) => Value::VecVec(Rc::new(RefCell::new(vec![Vec::new(); n]))),
                    Type::Str => Value::VecStr(Rc::new(RefCell::new(vec![String::new(); n]))),
                    _ => {
                        let fill = vals.get(1).map_or(Ok(0), Value::as_int)?;
                        Value::VecInt(Rc::new(RefCell::new(vec![fill; n])))
                    }
                })
            }
            other => {
                // Scalar "constructor": T x(expr).
                let v = vals
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| Value::default_of(other));
                self.coerce_to(other, v)
            }
        }
    }

    fn coerce_to(&self, ty: &Type, v: Value) -> Result<Value, InterpError> {
        Ok(match ty {
            Type::Int => Value::Int(v.as_int()?),
            Type::Double => Value::Double(v.as_double()?),
            Type::Bool => Value::Bool(v.truthy()?),
            Type::Char => match v {
                Value::Char(c) => Value::Char(c),
                other => Value::Char(other.as_int()? as u8 as char),
            },
            Type::Str | Type::Void | Type::Vec(_) => v.deep_copy(),
        })
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, InterpError> {
        match stmt {
            Stmt::Decl(d) => {
                self.exec_decl(d, false)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, els } => {
                self.charge(self.cost_model.cmp)?;
                if self.eval(cond)?.truthy()? {
                    self.exec_stmt(then)
                } else if let Some(els) = els {
                    self.exec_stmt(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.charge(self.cost_model.loop_iter)?;
                    if !self.eval(cond)?.truthy()? {
                        break;
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.frame().scopes.push(HashMap::new());
                let result = (|| {
                    match init {
                        Some(ForInit::Decl(d)) => self.exec_decl(d, false)?,
                        Some(ForInit::Expr(e)) => {
                            self.eval(e)?;
                        }
                        None => {}
                    }
                    loop {
                        self.charge(self.cost_model.loop_iter)?;
                        if let Some(c) = cond {
                            if !self.eval(c)?.truthy()? {
                                break;
                            }
                        }
                        match self.exec_stmt(body)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Normal | Flow::Continue => {}
                        }
                        if let Some(s) = step {
                            self.eval(s)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.frame().scopes.pop();
                result
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(stmts) => self.exec_block(stmts),
            Stmt::Empty => Ok(Flow::Normal),
        }
    }

    // ── Expressions ────────────────────────────────────────────────────

    fn eval(&mut self, e: &Expr) -> Result<Value, InterpError> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Double(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Char(c) => Ok(Value::Char(*c)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Var(name) => self.lookup(name),
            Expr::Unary(op, inner) => {
                self.charge(self.cost_model.arith)?;
                let v = self.eval(inner)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::Double(d) => Value::Double(-d),
                        other => Value::Int(-other.as_int()?),
                    },
                    UnOp::Not => Value::Bool(!v.truthy()?),
                    UnOp::BitNot => Value::Int(!v.as_int()?),
                })
            }
            Expr::Binary(op, lhs, rhs) => self.eval_binary(*op, lhs, rhs),
            Expr::Assign(target, value) => {
                self.charge(self.cost_model.assign)?;
                let v = self.eval(value)?;
                let v = match v {
                    // Whole-container assignment copies (C++ semantics).
                    Value::VecInt(_) | Value::VecVec(_) | Value::VecStr(_) => v.deep_copy(),
                    other => other,
                };
                self.assign_to(target, v.clone())?;
                Ok(v)
            }
            Expr::CompoundAssign(op, target, value) => {
                self.charge(self.cost_model.assign)?;
                let place = self.eval_place(target)?;
                let old = self.read_place(&place)?;
                let rhs = self.eval(value)?;
                let new = self.apply_binop(*op, old, rhs)?;
                self.write_place(&place, new.clone())?;
                Ok(new)
            }
            Expr::IncDec { pre, inc, target } => {
                self.charge(self.cost_model.arith)?;
                let place = self.eval_place(target)?;
                let old = self.read_place(&place)?;
                let delta = if *inc { 1 } else { -1 };
                let new = match &old {
                    Value::Double(d) => Value::Double(d + delta as f64),
                    other => Value::Int(other.as_int()? + delta),
                };
                self.write_place(&place, new.clone())?;
                Ok(if *pre { new } else { old })
            }
            Expr::Index(base, index) => {
                self.charge(self.cost_model.index)?;
                // Fast path for `m[i][j]` on vector<vector<…>>: avoids
                // materialising a copy of row `i` (wall-clock only; charged
                // cost is identical to the generic path).
                if let Expr::Index(inner_base, inner_ix) = base.as_ref() {
                    if let Expr::Var(name) = inner_base.as_ref() {
                        if let Value::VecVec(m) = self.lookup(name)? {
                            self.charge(self.cost_model.index)?;
                            let i = self.eval(inner_ix)?.as_int()?;
                            let j = self.eval(index)?.as_int()?;
                            let m = m.borrow();
                            let i = check_index(i, m.len())?;
                            let j = check_index(j, m[i].len())?;
                            return Ok(Value::Int(m[i][j]));
                        }
                    }
                }
                let ix = self.eval(index)?.as_int()?;
                let b = self.eval(base)?;
                self.index_value(&b, ix)
            }
            Expr::Call(name, args) => self.eval_call(name, args),
            Expr::MethodCall(recv, name, args) => self.eval_method(recv, name, args),
            Expr::Ternary(c, a, b) => {
                self.charge(self.cost_model.cmp)?;
                if self.eval(c)?.truthy()? {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Cast(ty, inner) => {
                self.charge(self.cost_model.arith)?;
                let v = self.eval(inner)?;
                self.coerce_to(ty, v)
            }
            Expr::StreamIn(targets) => {
                for t in targets {
                    self.charge(self.cost_model.io_token)?;
                    let place = self.eval_place(t)?;
                    let current = self.read_place(&place)?;
                    let tok = self.input.pop_front().ok_or(InterpError::InputExhausted)?;
                    let v = match (&current, tok) {
                        (Value::Str(_), InputTok::Str(s)) => {
                            self.charge(self.cost_model.str_char * s.len() as u64)?;
                            Value::Str(s)
                        }
                        (Value::Str(_), InputTok::Int(v)) => Value::Str(v.to_string()),
                        (Value::Char(_), InputTok::Str(s)) => {
                            Value::Char(s.chars().next().unwrap_or('\0'))
                        }
                        (Value::Double(_), InputTok::Int(v)) => Value::Double(v as f64),
                        (_, InputTok::Int(v)) => Value::Int(v),
                        (_, InputTok::Str(s)) => {
                            s.parse::<i64>().map(Value::Int).map_err(|_| {
                                InterpError::type_error(format!("cannot read '{s}' as integer"))
                            })?
                        }
                    };
                    self.write_place(&place, v)?;
                }
                Ok(Value::Int(1)) // stream truthiness: success
            }
            Expr::StreamOut(values) => {
                for v in values {
                    self.charge(self.cost_model.io_token)?;
                    if let Expr::Var(name) = v {
                        if name == "endl" {
                            self.emit("\n");
                            continue;
                        }
                    }
                    let val = self.eval(v)?;
                    let s = self.format_value(&val)?;
                    self.emit(&s);
                }
                Ok(Value::Int(1))
            }
        }
    }

    fn emit(&mut self, s: &str) {
        if self.output.len() < OUTPUT_CAP {
            self.output.push_str(s);
        }
    }

    fn format_value(&mut self, v: &Value) -> Result<String, InterpError> {
        Ok(match v {
            Value::Int(x) => x.to_string(),
            Value::Double(d) => format!("{d}"),
            Value::Bool(b) => (*b as i64).to_string(),
            Value::Char(c) => c.to_string(),
            Value::Str(s) => {
                self.charge(self.cost_model.str_char * s.len() as u64)?;
                s.clone()
            }
            other => return Err(InterpError::type_error(format!("cannot print {other:?}"))),
        })
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, InterpError> {
        // Short-circuit operators evaluate lazily.
        match op {
            BinOp::And => {
                self.charge(self.cost_model.cmp)?;
                let l = self.eval(lhs)?.truthy()?;
                return Ok(Value::Bool(l && self.eval(rhs)?.truthy()?));
            }
            BinOp::Or => {
                self.charge(self.cost_model.cmp)?;
                let l = self.eval(lhs)?.truthy()?;
                return Ok(Value::Bool(l || self.eval(rhs)?.truthy()?));
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        self.apply_binop(op, l, r)
    }

    fn apply_binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, InterpError> {
        use BinOp::*;
        let units = match op {
            Mul => self.cost_model.mul,
            Div | Mod => self.cost_model.div,
            Eq | Ne | Lt | Gt | Le | Ge => self.cost_model.cmp,
            _ => self.cost_model.arith,
        };
        self.charge(units)?;

        // String concatenation and comparison.
        if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
            let per_char = self.cost_model.str_char * (a.len() + b.len()) as u64 / 2;
            self.charge(per_char)?;
            return Ok(match op {
                Add => Value::Str(format!("{a}{b}")),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Gt => Value::Bool(a > b),
                Le => Value::Bool(a <= b),
                Ge => Value::Bool(a >= b),
                other => {
                    return Err(InterpError::type_error(format!(
                        "operator {} on strings",
                        other.symbol()
                    )))
                }
            });
        }

        // Promote to double when either side is floating.
        if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
            let a = l.as_double()?;
            let b = r.as_double()?;
            return Ok(match op {
                Add => Value::Double(a + b),
                Sub => Value::Double(a - b),
                Mul => Value::Double(a * b),
                Div => {
                    if b == 0.0 {
                        return Err(InterpError::DivideByZero);
                    }
                    Value::Double(a / b)
                }
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Gt => Value::Bool(a > b),
                Le => Value::Bool(a <= b),
                Ge => Value::Bool(a >= b),
                other => {
                    return Err(InterpError::type_error(format!(
                        "operator {} on doubles",
                        other.symbol()
                    )))
                }
            });
        }

        let a = l.as_int()?;
        let b = r.as_int()?;
        Ok(match op {
            Add => Value::Int(a.wrapping_add(b)),
            Sub => Value::Int(a.wrapping_sub(b)),
            Mul => Value::Int(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return Err(InterpError::DivideByZero);
                }
                Value::Int(a.wrapping_div(b))
            }
            Mod => {
                if b == 0 {
                    return Err(InterpError::DivideByZero);
                }
                Value::Int(a.wrapping_rem(b))
            }
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            Lt => Value::Bool(a < b),
            Gt => Value::Bool(a > b),
            Le => Value::Bool(a <= b),
            Ge => Value::Bool(a >= b),
            BitAnd => Value::Int(a & b),
            BitOr => Value::Int(a | b),
            BitXor => Value::Int(a ^ b),
            Shl => Value::Int(a.wrapping_shl(b as u32 & 63)),
            Shr => Value::Int(a.wrapping_shr(b as u32 & 63)),
            And | Or => unreachable!("short-circuit handled above"),
        })
    }

    fn index_value(&self, base: &Value, ix: i64) -> Result<Value, InterpError> {
        match base {
            Value::VecInt(v) => {
                let v = v.borrow();
                let i = check_index(ix, v.len())?;
                Ok(Value::Int(v[i]))
            }
            Value::VecVec(v) => {
                let v = v.borrow();
                let i = check_index(ix, v.len())?;
                // Indexing a row of vector<vector<…>> aliases in real C++;
                // reads are by value, writes resolve through eval_place.
                Ok(Value::VecInt(Rc::new(RefCell::new(v[i].clone()))))
            }
            Value::VecStr(v) => {
                let v = v.borrow();
                let i = check_index(ix, v.len())?;
                Ok(Value::Str(v[i].clone()))
            }
            Value::Str(s) => {
                let i = check_index(ix, s.len())?;
                Ok(Value::Char(s.as_bytes()[i] as char))
            }
            other => Err(InterpError::type_error(format!("cannot index {other:?}"))),
        }
    }

    // ── Lvalues ────────────────────────────────────────────────────────

    fn eval_place(&mut self, e: &Expr) -> Result<Place, InterpError> {
        match e {
            Expr::Var(name) => Ok(Place::Var(name.clone())),
            Expr::Index(base, index) => {
                let ix = self.eval(index)?.as_int()?;
                match base.as_ref() {
                    Expr::Var(name) => match self.lookup(name)? {
                        Value::VecInt(v) => {
                            let i = check_index(ix, v.borrow().len())?;
                            Ok(Place::VecIntElem(v, i))
                        }
                        Value::VecVec(v) => {
                            let i = check_index(ix, v.borrow().len())?;
                            Ok(Place::VecVecRow(v, i))
                        }
                        Value::VecStr(v) => {
                            let i = check_index(ix, v.borrow().len())?;
                            Ok(Place::VecStrElem(v, i))
                        }
                        other => Err(InterpError::type_error(format!(
                            "cannot index into {other:?}"
                        ))),
                    },
                    Expr::Index(_, _) => {
                        // g[u][k] — resolve the row place first.
                        match self.eval_place(base)? {
                            Place::VecVecRow(v, row) => {
                                let len = v.borrow()[row].len();
                                let i = check_index(ix, len)?;
                                Ok(Place::VecVecElem(v, row, i))
                            }
                            _ => Err(InterpError::type_error(
                                "doubly-indexed lvalue must be vector<vector<…>>",
                            )),
                        }
                    }
                    other => Err(InterpError::type_error(format!(
                        "unsupported lvalue base {other:?}"
                    ))),
                }
            }
            other => Err(InterpError::type_error(format!("not an lvalue: {other:?}"))),
        }
    }

    fn read_place(&mut self, place: &Place) -> Result<Value, InterpError> {
        match place {
            Place::Var(name) => self.lookup(name),
            Place::VecIntElem(v, i) => Ok(Value::Int(v.borrow()[*i])),
            Place::VecVecRow(v, i) => {
                Ok(Value::VecInt(Rc::new(RefCell::new(v.borrow()[*i].clone()))))
            }
            Place::VecVecElem(v, r, i) => Ok(Value::Int(v.borrow()[*r][*i])),
            Place::VecStrElem(v, i) => Ok(Value::Str(v.borrow()[*i].clone())),
        }
    }

    fn write_place(&mut self, place: &Place, value: Value) -> Result<(), InterpError> {
        match place {
            Place::Var(name) => self.store(name, value),
            Place::VecIntElem(v, i) => {
                v.borrow_mut()[*i] = value.as_int()?;
                Ok(())
            }
            Place::VecVecRow(v, i) => match value {
                Value::VecInt(row) => {
                    v.borrow_mut()[*i] = row.borrow().clone();
                    Ok(())
                }
                other => Err(InterpError::type_error(format!(
                    "cannot store {other:?} as row"
                ))),
            },
            Place::VecVecElem(v, r, i) => {
                v.borrow_mut()[*r][*i] = value.as_int()?;
                Ok(())
            }
            Place::VecStrElem(v, i) => match value {
                Value::Str(s) => {
                    v.borrow_mut()[*i] = s;
                    Ok(())
                }
                other => Err(InterpError::type_error(format!(
                    "cannot store {other:?} as string"
                ))),
            },
        }
    }

    fn assign_to(&mut self, target: &Expr, value: Value) -> Result<(), InterpError> {
        let place = self.eval_place(target)?;
        self.write_place(&place, value)
    }

    // ── Calls ──────────────────────────────────────────────────────────

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<Value, InterpError> {
        if let Some(func) = self.program.function(name) {
            return self.call_user(func, args);
        }
        self.call_builtin(name, args)
    }

    fn call_user(&mut self, func: &Function, args: &[Expr]) -> Result<Value, InterpError> {
        self.charge(self.cost_model.call)?;
        if self.frames.len() >= self.limits.recursion {
            return Err(InterpError::RecursionLimit(self.limits.recursion));
        }
        let mut scope = HashMap::new();
        for ((ty, pname), arg) in func.params.iter().zip(args) {
            let v = self.eval(arg)?;
            // Containers alias (reference parameters); scalars copy.
            let v = match (&v, ty) {
                (Value::VecInt(_) | Value::VecVec(_) | Value::VecStr(_), _) => v,
                _ => self.coerce_to(ty, v)?,
            };
            scope.insert(pname.clone(), v);
        }
        if args.len() != func.params.len() {
            return Err(InterpError::type_error(format!(
                "{} expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        self.frames.push(Frame {
            scopes: vec![scope],
        });
        let mut flow = Flow::Normal;
        for stmt in &func.body {
            flow = self.exec_stmt(stmt)?;
            if matches!(flow, Flow::Return(_)) {
                break;
            }
        }
        self.frames.pop();
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Int(0),
        })
    }

    fn call_builtin(&mut self, name: &str, args: &[Expr]) -> Result<Value, InterpError> {
        match name {
            "min" | "max" => {
                self.charge(self.cost_model.cmp)?;
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                if matches!(a, Value::Double(_)) || matches!(b, Value::Double(_)) {
                    let (x, y) = (a.as_double()?, b.as_double()?);
                    Ok(Value::Double(if name == "min" {
                        x.min(y)
                    } else {
                        x.max(y)
                    }))
                } else {
                    let (x, y) = (a.as_int()?, b.as_int()?);
                    Ok(Value::Int(if name == "min" { x.min(y) } else { x.max(y) }))
                }
            }
            "abs" | "llabs" => {
                self.charge(self.cost_model.arith)?;
                match self.eval(&args[0])? {
                    Value::Double(d) => Ok(Value::Double(d.abs())),
                    other => Ok(Value::Int(other.as_int()?.abs())),
                }
            }
            "sqrt" | "sqrtl" => {
                self.charge(self.cost_model.div)?;
                let x = self.eval(&args[0])?.as_double()?;
                Ok(Value::Double(x.sqrt()))
            }
            "__gcd" => {
                let mut a = self.eval(&args[0])?.as_int()?.abs();
                let mut b = self.eval(&args[1])?.as_int()?.abs();
                while b != 0 {
                    self.charge(self.cost_model.div)?;
                    let t = a % b;
                    a = b;
                    b = t;
                }
                Ok(Value::Int(a))
            }
            "swap" => {
                self.charge(self.cost_model.assign * 3)?;
                let pa = self.eval_place(&args[0])?;
                let pb = self.eval_place(&args[1])?;
                let va = self.read_place(&pa)?;
                let vb = self.read_place(&pb)?;
                self.write_place(&pa, vb)?;
                self.write_place(&pb, va)?;
                Ok(Value::Int(0))
            }
            "sort" | "reverse" => {
                // Recognise the idiom f(v.begin(), v.end()).
                let target = match (&args[0], &args[1]) {
                    (Expr::MethodCall(recv_a, begin, _), Expr::MethodCall(recv_b, end, _))
                        if begin == "begin" && end == "end" && recv_a == recv_b =>
                    {
                        recv_a
                    }
                    _ => {
                        return Err(InterpError::type_error(format!(
                            "{name} expects (v.begin(), v.end())"
                        )))
                    }
                };
                match self.eval(target)? {
                    Value::VecInt(v) => {
                        let mut v = v.borrow_mut();
                        let n = v.len() as u64;
                        let log = 64 - n.max(2).leading_zeros() as u64;
                        self.charge(self.cost_model.sort_factor * n * log)?;
                        if name == "sort" {
                            v.sort_unstable();
                        } else {
                            v.reverse();
                        }
                        Ok(Value::Int(0))
                    }
                    Value::VecStr(v) => {
                        let mut v = v.borrow_mut();
                        let n = v.len() as u64;
                        let log = 64 - n.max(2).leading_zeros() as u64;
                        let avg: u64 = v.iter().map(|s| s.len() as u64).sum::<u64>() / n.max(1) + 1;
                        self.charge(self.cost_model.sort_factor * n * log * avg)?;
                        if name == "sort" {
                            v.sort_unstable();
                        } else {
                            v.reverse();
                        }
                        Ok(Value::Int(0))
                    }
                    other => Err(InterpError::type_error(format!("cannot {name} {other:?}"))),
                }
            }
            other => Err(InterpError::UndefinedFunction(other.to_string())),
        }
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
    ) -> Result<Value, InterpError> {
        self.charge(self.cost_model.method)?;
        match name {
            // Read-only methods evaluate the receiver as a value.
            "size" | "length" => {
                let r = self.eval(recv)?;
                Ok(Value::Int(match r {
                    Value::VecInt(v) => v.borrow().len() as i64,
                    Value::VecVec(v) => v.borrow().len() as i64,
                    Value::VecStr(v) => v.borrow().len() as i64,
                    Value::Str(s) => s.len() as i64,
                    other => return Err(InterpError::type_error(format!("{name} on {other:?}"))),
                }))
            }
            "empty" => {
                let r = self.eval(recv)?;
                Ok(Value::Bool(match r {
                    Value::VecInt(v) => v.borrow().is_empty(),
                    Value::VecVec(v) => v.borrow().is_empty(),
                    Value::VecStr(v) => v.borrow().is_empty(),
                    Value::Str(s) => s.is_empty(),
                    other => return Err(InterpError::type_error(format!("empty on {other:?}"))),
                }))
            }
            "back" => {
                let r = self.eval(recv)?;
                match r {
                    Value::VecInt(v) => {
                        let v = v.borrow();
                        let i = check_index(v.len() as i64 - 1, v.len())?;
                        Ok(Value::Int(v[i]))
                    }
                    Value::VecStr(v) => {
                        let v = v.borrow();
                        let i = check_index(v.len() as i64 - 1, v.len())?;
                        Ok(Value::Str(v[i].clone()))
                    }
                    other => Err(InterpError::type_error(format!("back on {other:?}"))),
                }
            }
            "front" => {
                let r = self.eval(recv)?;
                match r {
                    Value::VecInt(v) => {
                        let v = v.borrow();
                        let i = check_index(0, v.len())?;
                        Ok(Value::Int(v[i]))
                    }
                    other => Err(InterpError::type_error(format!("front on {other:?}"))),
                }
            }
            // Mutating methods resolve the receiver as a place when nested
            // (g[u].push_back), or alias directly through the Rc for vars.
            "push_back" => {
                self.charge(self.cost_model.push_back)?;
                let arg = self.eval(&args[0])?;
                match recv {
                    Expr::Index(_, _) => {
                        let place = self.eval_place(recv)?;
                        match place {
                            Place::VecVecRow(v, r) => {
                                self.guard_len(v.borrow()[r].len() + 1)?;
                                v.borrow_mut()[r].push(arg.as_int()?);
                                Ok(Value::Int(0))
                            }
                            _ => Err(InterpError::type_error("push_back on non-vector element")),
                        }
                    }
                    _ => match self.eval(recv)? {
                        Value::VecInt(v) => {
                            self.guard_len(v.borrow().len() + 1)?;
                            v.borrow_mut().push(arg.as_int()?);
                            Ok(Value::Int(0))
                        }
                        Value::VecStr(v) => {
                            self.guard_len(v.borrow().len() + 1)?;
                            match arg {
                                Value::Str(s) => v.borrow_mut().push(s),
                                other => v.borrow_mut().push(format!("{other:?}")),
                            }
                            Ok(Value::Int(0))
                        }
                        Value::VecVec(v) => {
                            self.guard_len(v.borrow().len() + 1)?;
                            match arg {
                                Value::VecInt(row) => v.borrow_mut().push(row.borrow().clone()),
                                _ => v.borrow_mut().push(Vec::new()),
                            }
                            Ok(Value::Int(0))
                        }
                        Value::Str(_) => {
                            // s.push_back(c) on a string variable.
                            let place = self.eval_place(recv)?;
                            let Value::Str(mut s) = self.read_place(&place)? else {
                                unreachable!()
                            };
                            match arg {
                                Value::Char(c) => s.push(c),
                                other => s.push(other.as_int()? as u8 as char),
                            }
                            self.write_place(&place, Value::Str(s))?;
                            Ok(Value::Int(0))
                        }
                        other => Err(InterpError::type_error(format!("push_back on {other:?}"))),
                    },
                }
            }
            "pop_back" => match self.eval(recv)? {
                Value::VecInt(v) => {
                    v.borrow_mut().pop();
                    Ok(Value::Int(0))
                }
                Value::VecStr(v) => {
                    v.borrow_mut().pop();
                    Ok(Value::Int(0))
                }
                other => Err(InterpError::type_error(format!("pop_back on {other:?}"))),
            },
            "clear" => match self.eval(recv)? {
                Value::VecInt(v) => {
                    v.borrow_mut().clear();
                    Ok(Value::Int(0))
                }
                Value::VecVec(v) => {
                    v.borrow_mut().clear();
                    Ok(Value::Int(0))
                }
                Value::VecStr(v) => {
                    v.borrow_mut().clear();
                    Ok(Value::Int(0))
                }
                other => Err(InterpError::type_error(format!("clear on {other:?}"))),
            },
            "resize" => {
                let n = self.eval(&args[0])?.as_int()?;
                let n = if n < 0 { 0 } else { n as usize };
                self.guard_len(n)?;
                self.charge(self.cost_model.assign * n as u64 / 4 + 1)?;
                // `m[i].resize(k)` must mutate the original row, not the
                // copy that evaluating `m[i]` as a value would produce.
                if let Expr::Index(_, _) = recv {
                    let place = self.eval_place(recv)?;
                    return match place {
                        Place::VecVecRow(v, r) => {
                            let fill = match args.get(1) {
                                Some(e) => self.eval(e)?.as_int()?,
                                None => 0,
                            };
                            v.borrow_mut()[r].resize(n, fill);
                            Ok(Value::Int(0))
                        }
                        _ => Err(InterpError::type_error("resize on non-vector element")),
                    };
                }
                match self.eval(recv)? {
                    Value::VecInt(v) => {
                        let fill = match args.get(1) {
                            Some(e) => self.eval(e)?.as_int()?,
                            None => 0,
                        };
                        v.borrow_mut().resize(n, fill);
                        Ok(Value::Int(0))
                    }
                    Value::VecVec(v) => {
                        v.borrow_mut().resize(n, Vec::new());
                        Ok(Value::Int(0))
                    }
                    Value::VecStr(v) => {
                        v.borrow_mut().resize(n, String::new());
                        Ok(Value::Int(0))
                    }
                    other => Err(InterpError::type_error(format!("resize on {other:?}"))),
                }
            }
            other => Err(InterpError::UndefinedFunction(format!(".{other}()"))),
        }
    }

    fn guard_len(&self, n: usize) -> Result<(), InterpError> {
        if n > self.limits.container {
            Err(InterpError::MemoryLimit(self.limits.container))
        } else {
            Ok(())
        }
    }
}

fn check_index(ix: i64, len: usize) -> Result<usize, InterpError> {
    if ix < 0 || ix as usize >= len {
        Err(InterpError::IndexOutOfBounds { len, index: ix })
    } else {
        Ok(ix as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_cppast::parse_program;

    fn run(src: &str, input: &[i64]) -> RunOutcome {
        let p = parse_program(src).expect("parse");
        let toks: Vec<InputTok> = input.iter().map(|&v| InputTok::Int(v)).collect();
        run_program(&p, &toks, &CostModel::default(), &Limits::default()).expect("run")
    }

    fn run_err(src: &str, input: &[i64]) -> InterpError {
        let p = parse_program(src).expect("parse");
        let toks: Vec<InputTok> = input.iter().map(|&v| InputTok::Int(v)).collect();
        run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap_err()
    }

    #[test]
    fn arithmetic_and_output() {
        let out = run("int main() { cout << 2 + 3 * 4 << endl; return 0; }", &[]);
        assert_eq!(out.output, "14\n");
    }

    #[test]
    fn sum_loop() {
        let out = run(
            "int main() { int n; cin >> n; long long s = 0; \
             for (int i = 1; i <= n; i++) s += i; cout << s; return 0; }",
            &[100],
        );
        assert_eq!(out.output, "5050");
    }

    #[test]
    fn while_loop_and_compound_assign() {
        let out = run(
            "int main() { int x = 1; while (x < 100) x *= 2; cout << x; return 0; }",
            &[],
        );
        assert_eq!(out.output, "128");
    }

    #[test]
    fn nested_loops_cost_more() {
        let flat = run(
            "int main() { long long s = 0; for (int i = 0; i < 100; i++) s += i; cout << s; return 0; }",
            &[],
        );
        let nested = run(
            "int main() { long long s = 0; for (int i = 0; i < 100; i++) \
             for (int j = 0; j < 100; j++) s += j; cout << s; return 0; }",
            &[],
        );
        assert!(
            nested.cost > 20 * flat.cost,
            "nested loops must dominate: {} vs {}",
            nested.cost,
            flat.cost
        );
    }

    #[test]
    fn vectors_and_indexing() {
        let out = run(
            "int main() { int n; cin >> n; vector<long long> a(n); \
             for (int i = 0; i < n; i++) cin >> a[i]; \
             long long mx = a[0]; for (int i = 1; i < n; i++) mx = max(mx, a[i]); \
             cout << mx; return 0; }",
            &[5, 3, 9, 1, 7, 4],
        );
        assert_eq!(out.output, "9");
    }

    #[test]
    fn sort_builtin() {
        let out = run(
            "int main() { vector<long long> v; v.push_back(3); v.push_back(1); v.push_back(2); \
             sort(v.begin(), v.end()); cout << v[0] << v[1] << v[2]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "123");
    }

    #[test]
    fn functions_and_recursion() {
        let out = run(
            "long long fib(long long n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } \
             int main() { cout << fib(15); return 0; }",
            &[],
        );
        assert_eq!(out.output, "610");
    }

    #[test]
    fn vector_reference_params_alias() {
        let out = run(
            "void fill(vector<long long>& v, long long n) { \
             for (long long i = 0; i < n; i++) v.push_back(i * i); } \
             int main() { vector<long long> v; fill(v, 4); cout << v.size() << v[3]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "49");
    }

    #[test]
    fn whole_vector_assignment_copies() {
        let out = run(
            "int main() { vector<long long> a(3, 7); vector<long long> b; b = a; \
             b[0] = 99; cout << a[0] << b[0]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "799");
    }

    #[test]
    fn nested_vectors_adjacency() {
        let out = run(
            "int main() { int n; cin >> n; vector<vector<long long>> g(n); \
             for (int i = 1; i < n; i++) { int p; cin >> p; g[p].push_back(i); } \
             cout << g[0].size(); return 0; }",
            &[4, 0, 0, 1],
        );
        assert_eq!(out.output, "2");
    }

    #[test]
    fn strings_and_hashing_loop() {
        let p = parse_program(
            "int main() { int n; cin >> n; long long h = 0; \
             for (int q = 0; q < n; q++) { string s; cin >> s; \
             for (int i = 0; i < s.length(); i++) h = h * 31 + s[i]; } \
             cout << h; return 0; }",
        )
        .unwrap();
        let input = vec![
            InputTok::Int(2),
            InputTok::Str("ab".into()),
            InputTok::Str("c".into()),
        ];
        let out = run_program(&p, &input, &CostModel::default(), &Limits::default()).unwrap();
        // h = ((0*31+97)*31+98)*31+99 = 97*961 + 98*31 + 99
        assert_eq!(out.output, (97 * 961 + 98 * 31 + 99).to_string());
    }

    #[test]
    fn ternary_and_casts() {
        let out = run(
            "int main() { double d = 7.9; long long x = (long long)d; \
             cout << (x > 5 ? x : -x); return 0; }",
            &[],
        );
        assert_eq!(out.output, "7");
    }

    #[test]
    fn break_continue() {
        let out = run(
            "int main() { long long s = 0; for (int i = 0; i < 10; i++) { \
             if (i == 7) break; if (i % 2 == 0) continue; s += i; } cout << s; return 0; }",
            &[],
        );
        assert_eq!(out.output, "9"); // 1+3+5
    }

    #[test]
    fn gcd_and_swap() {
        let out = run(
            "int main() { long long a = 12, b = 18; swap(a, b); cout << __gcd(a, b) << a; return 0; }",
            &[],
        );
        assert_eq!(out.output, "618");
    }

    #[test]
    fn globals_visible_in_functions() {
        let out = run(
            "long long counter = 0; \
             void bump() { counter += 1; } \
             int main() { bump(); bump(); cout << counter; return 0; }",
            &[],
        );
        assert_eq!(out.output, "2");
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let p = parse_program("int main() { while (true) { } return 0; }").unwrap();
        let limits = Limits {
            fuel: 10_000,
            ..Limits::default()
        };
        let err = run_program(&p, &[], &CostModel::default(), &limits).unwrap_err();
        assert!(matches!(err, InterpError::Timeout { .. }));
    }

    #[test]
    fn division_by_zero_detected() {
        assert_eq!(
            run_err("int main() { int x = 0; cout << 5 / x; return 0; }", &[]),
            InterpError::DivideByZero
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let err = run_err(
            "int main() { vector<long long> v(2); cout << v[5]; return 0; }",
            &[],
        );
        assert!(matches!(
            err,
            InterpError::IndexOutOfBounds { len: 2, index: 5 }
        ));
    }

    #[test]
    fn input_exhausted_detected() {
        assert_eq!(
            run_err("int main() { int x; cin >> x; return 0; }", &[]),
            InterpError::InputExhausted
        );
    }

    #[test]
    fn undefined_variable_detected() {
        assert_eq!(
            run_err("int main() { cout << ghost; return 0; }", &[]),
            InterpError::UndefinedVariable("ghost".into())
        );
    }

    #[test]
    fn recursion_limit_detected() {
        let p = parse_program(
            "long long f(long long n) { return f(n + 1); } int main() { return f(0); }",
        )
        .unwrap();
        let limits = Limits {
            recursion: 64,
            ..Limits::default()
        };
        let err = run_program(&p, &[], &CostModel::default(), &limits).unwrap_err();
        assert!(matches!(
            err,
            InterpError::RecursionLimit(64) | InterpError::Timeout { .. }
        ));
    }

    #[test]
    fn deterministic_cost() {
        let src = "int main() { int n; cin >> n; long long s = 0; \
                   for (int i = 0; i < n; i++) s += i * i; cout << s; return 0; }";
        let a = run(src, &[1000]);
        let b = run(src, &[1000]);
        assert_eq!(a.cost, b.cost, "same program + input must cost the same");
        let c = run(src, &[2000]);
        assert!(c.cost > a.cost, "larger input must cost more");
    }

    #[test]
    fn exit_code_from_main() {
        let out = run("int main() { return 42; }", &[]);
        assert_eq!(out.exit_code, 42);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use ccsa_cppast::parse_program;

    fn run(src: &str, input: &[i64]) -> RunOutcome {
        let p = parse_program(src).expect("parse");
        let toks: Vec<InputTok> = input.iter().map(|&v| InputTok::Int(v)).collect();
        run_program(&p, &toks, &CostModel::default(), &Limits::default()).expect("run")
    }

    #[test]
    fn bitwise_and_shift_operators() {
        let out = run(
            "int main() { long long x = 12; cout << (x & 10) << (x | 3) << (x ^ 6) \
             << (x << 2) << (x >> 1) << (~x); return 0; }",
            &[],
        );
        assert_eq!(out.output, "81510486-13");
    }

    #[test]
    fn pre_and_post_increment_values() {
        let out = run(
            "int main() { long long i = 5; cout << i++ << i << ++i << i-- << --i; return 0; }",
            &[],
        );
        // i++ → 5 (i=6), i → 6, ++i → 7, i-- → 7 (i=6), --i → 5.
        assert_eq!(out.output, "56775");
    }

    #[test]
    fn string_methods_and_indexing() {
        let p = parse_program(
            "int main() { string s; cin >> s; cout << s.length(); \
             if (s[0] == 'h') cout << \"!\"; s.push_back('z'); cout << s; return 0; }",
        )
        .unwrap();
        let toks = vec![InputTok::Str("hey".into())];
        let out = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
        assert_eq!(out.output, "3!heyz");
    }

    #[test]
    fn vector_back_front_pop() {
        let out = run(
            "int main() { vector<long long> v; v.push_back(1); v.push_back(2); v.push_back(3); \
             cout << v.front() << v.back(); v.pop_back(); cout << v.back() << v.size(); \
             v.clear(); cout << v.empty(); return 0; }",
            &[],
        );
        assert_eq!(out.output, "13221");
    }

    #[test]
    fn nested_vector_resize_and_write() {
        let out = run(
            "int main() { vector<vector<long long>> m(2); m[0].resize(3); m[1].resize(1); \
             m[0][2] = 9; m[1][0] = 4; cout << m[0][2] << m[1][0] << m[0][0]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "940");
    }

    #[test]
    fn swap_vector_elements() {
        let out = run(
            "int main() { vector<long long> v(2); v[0] = 7; v[1] = 8; swap(v[0], v[1]); \
             cout << v[0] << v[1]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "87");
    }

    #[test]
    fn reverse_builtin() {
        let out = run(
            "int main() { vector<long long> v; v.push_back(1); v.push_back(2); v.push_back(3); \
             reverse(v.begin(), v.end()); cout << v[0] << v[1] << v[2]; return 0; }",
            &[],
        );
        assert_eq!(out.output, "321");
    }

    #[test]
    fn double_arithmetic_and_sqrt() {
        let out = run(
            "int main() { double d = sqrt(16.0) + 1.5; long long x = (long long)d; \
             cout << x; return 0; }",
            &[],
        );
        assert_eq!(out.output, "5");
    }

    #[test]
    fn short_circuit_prevents_side_effects() {
        let out = run(
            "int main() { long long hits = 0; long long x = 0; \
             if (x > 0 && ++hits > 0) { } \
             if (x == 0 || ++hits > 0) { } \
             cout << hits; return 0; }",
            &[],
        );
        assert_eq!(out.output, "0");
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let out = run(
            "int main() { long long d = 0; if (d != 0 && 10 / d > 1) cout << \"bad\"; \
             else cout << \"ok\"; return 0; }",
            &[],
        );
        assert_eq!(out.output, "ok");
    }

    #[test]
    fn integer_division_truncates_toward_zero() {
        let out = run(
            "int main() { cout << 7 / 2 << -7 / 2 << 7 % 3 << -7 % 3; return 0; }",
            &[],
        );
        assert_eq!(out.output, "3-31-1");
    }

    #[test]
    fn char_arithmetic() {
        let p = parse_program(
            "int main() { string s; cin >> s; long long v = s[0] - 'a'; cout << v; return 0; }",
        )
        .unwrap();
        let toks = vec![InputTok::Str("d".into())];
        let out = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
        assert_eq!(out.output, "3");
    }

    #[test]
    fn bool_prints_as_integer() {
        let out = run(
            "int main() { bool b = true; cout << b << false; return 0; }",
            &[],
        );
        assert_eq!(out.output, "10");
    }

    #[test]
    fn scoping_shadows_and_restores() {
        let out = run(
            "int main() { long long x = 1; { long long x = 2; cout << x; } cout << x; return 0; }",
            &[],
        );
        assert_eq!(out.output, "21");
    }

    #[test]
    fn memory_limit_enforced() {
        let p = parse_program(
            "int main() { vector<long long> v; long long i = 0; \
             while (i < 100000000) { v.push_back(i); i++; } return 0; }",
        )
        .unwrap();
        let limits = Limits {
            container: 10_000,
            fuel: u64::MAX / 2,
            ..Limits::default()
        };
        let err = run_program(&p, &[], &CostModel::default(), &limits).unwrap_err();
        assert!(matches!(err, InterpError::MemoryLimit(_)));
    }

    #[test]
    fn undefined_function_reported() {
        let p = parse_program("int main() { cout << mystery(3); return 0; }").unwrap();
        let err = run_program(&p, &[], &CostModel::default(), &Limits::default()).unwrap_err();
        assert!(matches!(err, InterpError::UndefinedFunction(name) if name == "mystery"));
    }

    #[test]
    fn string_comparison_and_concat() {
        let p = parse_program(
            "int main() { string a; string b; cin >> a >> b; \
             if (a == b) cout << \"same\"; else cout << a + b; \
             if (a < b) cout << \"<\"; return 0; }",
        )
        .unwrap();
        let toks = vec![InputTok::Str("ab".into()), InputTok::Str("cd".into())];
        let out = run_program(&p, &toks, &CostModel::default(), &Limits::default()).unwrap();
        assert_eq!(out.output, "abcd<");
    }

    #[test]
    fn cost_model_ratios_respected() {
        // A division-heavy loop must cost more than an addition-heavy one
        // of identical iteration count.
        let adds = run(
            "int main() { long long s = 0; for (int i = 1; i < 500; i++) s += i; cout << s; return 0; }",
            &[],
        );
        let divs = run(
            "int main() { long long s = 0; for (int i = 1; i < 500; i++) s += 1000 / i; cout << s; return 0; }",
            &[],
        );
        assert!(divs.cost > adds.cost);
    }
}
