//! Problem definitions: the nine curated problems of Table I plus the
//! parametric multi-problem (MP) pool.
//!
//! Each [`ProblemSpec`] bundles (a) the paper's reference statistics where
//! applicable, (b) an input model the judge samples test cases from, and
//! (c) a family of solution *strategies* with distinct asymptotic cost that
//! the generator turns into submissions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::interp::InputTok;

/// The nine curated problems (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProblemTag {
    /// 4 C — Registration (hashing).
    A,
    /// 230 B — T-Prime (binary search, number theory).
    B,
    /// 1027 C — Minimum Value Rectangle (greedy).
    C,
    /// 914 D — Bash and a Tough Math Puzzle (data structures, number theory).
    D,
    /// 1004 C — Sonya and Robots (constructive).
    E,
    /// 1006 E — Military Problem (DFS, graphs, trees).
    F,
    /// 1037 D — Valid BFS? (DFS/BFS, graphs, trees).
    G,
    /// 489 C — Given Length and Sum of Digits (dynamic programming).
    H,
    /// 919 D — Substring (DFS, DP, graphs).
    I,
}

impl ProblemTag {
    /// All nine tags in Table I order.
    pub const ALL: [ProblemTag; 9] = [
        ProblemTag::A,
        ProblemTag::B,
        ProblemTag::C,
        ProblemTag::D,
        ProblemTag::E,
        ProblemTag::F,
        ProblemTag::G,
        ProblemTag::H,
        ProblemTag::I,
    ];

    /// The Codeforces contest/problem this tag refers to in the paper.
    pub fn contest(self) -> &'static str {
        match self {
            ProblemTag::A => "4 C",
            ProblemTag::B => "230 B",
            ProblemTag::C => "1027 C",
            ProblemTag::D => "914 D",
            ProblemTag::E => "1004 C",
            ProblemTag::F => "1006 E",
            ProblemTag::G => "1037 D",
            ProblemTag::H => "489 C",
            ProblemTag::I => "919 D",
        }
    }

    /// The algorithm group listed in Table I.
    pub fn algorithms(self) -> &'static str {
        match self {
            ProblemTag::A => "Hashing",
            ProblemTag::B => "Binary search and number theory",
            ProblemTag::C => "Greedy",
            ProblemTag::D => "Data structure and number theory",
            ProblemTag::E => "Constructive algorithm",
            ProblemTag::F => "DFS, Graphs, and Trees",
            ProblemTag::G => "DFS, Graphs, and Trees",
            ProblemTag::H => "Dynamic programming (DP)",
            ProblemTag::I => "DFS, DP, Graphs",
        }
    }
}

impl std::fmt::Display for ProblemTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Reference runtime statistics from Table I (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Number of correct submissions the paper collected.
    pub count: usize,
    /// Minimum runtime.
    pub min_ms: f64,
    /// Median runtime.
    pub median_ms: f64,
    /// Maximum runtime.
    pub max_ms: f64,
    /// Standard deviation.
    pub stddev_ms: f64,
}

impl ProblemTag {
    /// Table I row for this problem.
    pub fn paper_stats(self) -> PaperStats {
        let (count, min, med, max, sd) = match self {
            ProblemTag::A => (6616, 86.0, 1269.0, 4063.0, 445.0),
            ProblemTag::B => (6099, 31.0, 658.0, 1872.0, 386.0),
            ProblemTag::C => (832, 72.0, 437.0, 1455.0, 344.0),
            ProblemTag::D => (612, 206.0, 534.0, 1965.0, 464.0),
            ProblemTag::E => (505, 3.0, 80.0, 137.0, 48.0),
            ProblemTag::F => (599, 51.0, 214.0, 1647.0, 471.0),
            ProblemTag::G => (207, 5.0, 90.0, 450.0, 63.0),
            ProblemTag::H => (5192, 2.0, 9.0, 29.0, 15.0),
            ProblemTag::I => (475, 2.0, 285.0, 800.0, 202.0),
        };
        PaperStats {
            count,
            min_ms: min,
            median_ms: med,
            max_ms: max,
            stddev_ms: sd,
        }
    }
}

/// Identifies a problem: one of the curated Table I problems or a member of
/// the parametric multi-problem pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProblemKey {
    /// A curated problem (A–I).
    Curated(ProblemTag),
    /// The `i`-th problem of the MP pool.
    Mp(u16),
}

impl std::fmt::Display for ProblemKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemKey::Curated(tag) => write!(f, "{tag}"),
            ProblemKey::Mp(i) => write!(f, "MP{i:03}"),
        }
    }
}

/// Input-distribution parameters the judge samples test cases from.
///
/// All sizes are deliberately small compared to real Codeforces limits: the
/// tree-walking interpreter charges identical *relative* costs at any
/// scale, and small inputs keep corpus generation fast (see DESIGN.md §2).
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Primary size (elements, nodes, words — family specific).
    pub n: usize,
    /// Secondary size (queries, edges) where the family uses one.
    pub m: usize,
    /// Value ceiling for sampled numbers.
    pub max_value: i64,
    /// Word length for string problems.
    pub word_len: usize,
}

/// A solution strategy: one asymptotic approach to a problem family.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// Short human-readable name (e.g. `"sieve+bsearch"`).
    pub name: &'static str,
    /// Popularity weight used when sampling submissions.
    pub weight: f32,
    /// Coarse cost rank within the family (0 = fastest). Used only by
    /// tests and diagnostics — real runtimes come from the judge.
    pub cost_rank: u8,
}

/// A fully specified problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Which problem this is.
    pub key: ProblemKey,
    /// The template family that builds solution programs.
    pub family: ProblemTag,
    /// Input-distribution parameters.
    pub input: InputSpec,
    /// Available strategies (sampled by weight).
    pub strategies: Vec<Strategy>,
}

impl ProblemSpec {
    /// The spec for a curated problem, with input sizes tuned so the judged
    /// runtime distribution has the same *shape* as its Table I row.
    pub fn curated(tag: ProblemTag) -> ProblemSpec {
        let input = match tag {
            ProblemTag::A => InputSpec {
                n: 70,
                m: 0,
                max_value: 0,
                word_len: 8,
            },
            ProblemTag::B => InputSpec {
                n: 120,
                m: 0,
                max_value: 10_000,
                word_len: 0,
            },
            ProblemTag::C => InputSpec {
                n: 90,
                m: 0,
                max_value: 150,
                word_len: 0,
            },
            ProblemTag::D => InputSpec {
                n: 110,
                m: 50,
                max_value: 1_000,
                word_len: 0,
            },
            ProblemTag::E => InputSpec {
                n: 70,
                m: 0,
                max_value: 90,
                word_len: 0,
            },
            ProblemTag::F => InputSpec {
                n: 130,
                m: 60,
                max_value: 0,
                word_len: 0,
            },
            ProblemTag::G => InputSpec {
                n: 160,
                m: 0,
                max_value: 0,
                word_len: 0,
            },
            ProblemTag::H => InputSpec {
                n: 24,
                m: 90,
                max_value: 0,
                word_len: 0,
            },
            ProblemTag::I => InputSpec {
                n: 90,
                m: 200,
                max_value: 0,
                word_len: 4,
            },
        };
        ProblemSpec {
            key: ProblemKey::Curated(tag),
            family: tag,
            input,
            strategies: crate::problems::strategies(tag),
        }
    }

    /// A member of the parametric MP pool: a curated family with jittered
    /// input sizes and strategy weights, standing in for "one of 100
    /// different problems with sufficient variation in execution times".
    pub fn mp(index: u16, seed: u64) -> ProblemSpec {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x4d50 << 32) ^ index as u64);
        let family = ProblemTag::ALL[index as usize % ProblemTag::ALL.len()];
        let base = ProblemSpec::curated(family);
        let jitter = |v: usize, rng: &mut StdRng| -> usize {
            let f = rng.random_range(0.6..1.6);
            ((v as f64 * f) as usize).max(4)
        };
        let input = InputSpec {
            n: jitter(base.input.n, &mut rng),
            m: if base.input.m > 0 {
                jitter(base.input.m, &mut rng)
            } else {
                0
            },
            max_value: if base.input.max_value > 0 {
                (base.input.max_value as f64 * rng.random_range(0.5..2.0)) as i64
            } else {
                0
            },
            word_len: base.input.word_len,
        };
        let mut strategies = base.strategies;
        for s in &mut strategies {
            s.weight *= rng.random_range(0.5..2.0);
        }
        ProblemSpec {
            key: ProblemKey::Mp(index),
            family,
            input,
            strategies,
        }
    }

    /// Samples a strategy index according to the popularity weights.
    pub fn sample_strategy(&self, rng: &mut StdRng) -> usize {
        let total: f32 = self.strategies.iter().map(|s| s.weight).sum();
        let mut t = rng.random_range(0.0..total);
        for (i, s) in self.strategies.iter().enumerate() {
            if t < s.weight {
                return i;
            }
            t -= s.weight;
        }
        self.strategies.len() - 1
    }

    /// Generates one judge test case for this problem.
    pub fn generate_input(&self, rng: &mut StdRng) -> Vec<InputTok> {
        crate::problems::generate_input(self.family, &self.input, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_stats_match_paper() {
        let a = ProblemTag::A.paper_stats();
        assert_eq!(a.count, 6616);
        assert_eq!(a.median_ms, 1269.0);
        let h = ProblemTag::H.paper_stats();
        assert_eq!(h.median_ms, 9.0);
    }

    #[test]
    fn every_curated_problem_has_strategies() {
        for tag in ProblemTag::ALL {
            let spec = ProblemSpec::curated(tag);
            assert!(spec.strategies.len() >= 3, "{tag} has too few strategies");
            let total: f32 = spec.strategies.iter().map(|s| s.weight).sum();
            assert!(total > 0.0);
            // Cost ranks must include a fastest (0) and be distinct-ish.
            assert!(spec.strategies.iter().any(|s| s.cost_rank == 0));
        }
    }

    #[test]
    fn mp_pool_is_deterministic_and_varied() {
        let p1 = ProblemSpec::mp(7, 42);
        let p2 = ProblemSpec::mp(7, 42);
        assert_eq!(p1, p2, "same index+seed must give same spec");
        let p3 = ProblemSpec::mp(8, 42);
        assert_ne!(p1.key, p3.key);
        // 100 MP problems cover all nine families.
        let families: std::collections::HashSet<ProblemTag> =
            (0..100).map(|i| ProblemSpec::mp(i, 1).family).collect();
        assert_eq!(families.len(), 9);
    }

    #[test]
    fn strategy_sampling_respects_weights() {
        let spec = ProblemSpec::curated(ProblemTag::A);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; spec.strategies.len()];
        for _ in 0..2000 {
            counts[spec.sample_strategy(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "strategy {i} never sampled");
        }
    }

    #[test]
    fn display_keys() {
        assert_eq!(ProblemKey::Curated(ProblemTag::C).to_string(), "C");
        assert_eq!(ProblemKey::Mp(5).to_string(), "MP005");
    }
}
