//! Cost-unit → millisecond calibration.
//!
//! Interpreter cost units are an abstract scale; Table I of the paper is in
//! milliseconds on the Codeforces judge. For each problem we choose a
//! per-problem scale factor so that the *median* judged cost of a sampled
//! batch of submissions maps onto the paper's median runtime. Relative
//! orderings — everything the models learn from — are untouched; the scale
//! only makes Table 1 read in familiar units.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::generate_program;
use crate::interp::InterpError;
use crate::judge::{judge, JudgeConfig};
use crate::spec::{ProblemKey, ProblemSpec};

/// Median of a slice (averaging the middle pair for even lengths).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Computes the ms-per-cost-unit scale for a problem by judging a small
/// calibration batch.
///
/// # Errors
///
/// Propagates interpreter failures from the calibration runs.
pub fn calibration_scale(
    spec: &ProblemSpec,
    config: &JudgeConfig,
    sample_size: usize,
    seed: u64,
) -> Result<f64, InterpError> {
    let mut costs = Vec::with_capacity(sample_size);
    for i in 0..sample_size {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca11_b8a7 ^ ((i as u64) << 20));
        let strategy = spec.sample_strategy(&mut rng);
        let program = generate_program(spec, strategy, &mut rng);
        let verdict = judge(&program, spec, seed ^ 0x7e57, config)?;
        costs.push(verdict.mean_cost);
    }
    let median_cost = median(&costs).max(1.0);
    let target_ms = match spec.key {
        ProblemKey::Curated(tag) => tag.paper_stats().median_ms,
        // MP problems borrow the median of their template family.
        ProblemKey::Mp(_) => spec.family.paper_stats().median_ms,
    };
    Ok(target_ms / median_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProblemSpec, ProblemTag};

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn scale_is_positive_and_deterministic() {
        let spec = ProblemSpec::curated(ProblemTag::H);
        let cfg = JudgeConfig {
            test_cases: 2,
            ..JudgeConfig::default()
        };
        let a = calibration_scale(&spec, &cfg, 8, 5).unwrap();
        let b = calibration_scale(&spec, &cfg, 8, 5).unwrap();
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_maps_median_cost_to_paper_median() {
        let spec = ProblemSpec::curated(ProblemTag::E);
        let cfg = JudgeConfig {
            test_cases: 2,
            ..JudgeConfig::default()
        };
        let scale = calibration_scale(&spec, &cfg, 10, 3).unwrap();
        // Re-create the calibration batch and check the median lands near
        // the paper's 80 ms.
        let mut costs = Vec::new();
        for i in 0..10 {
            let mut rng = StdRng::seed_from_u64(3 ^ 0xca11_b8a7 ^ ((i as u64) << 20));
            let strategy = spec.sample_strategy(&mut rng);
            let program = crate::gen::generate_program(&spec, strategy, &mut rng);
            costs.push(judge(&program, &spec, 3 ^ 0x7e57, &cfg).unwrap().mean_cost);
        }
        let med_ms = median(&costs) * scale;
        assert!((med_ms - 80.0).abs() < 1.0, "median mapped to {med_ms} ms");
    }
}
