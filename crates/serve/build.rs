//! Stamps build metadata into the crate environment so the serving
//! surface can report exactly which build is running (`ccsa_build_info`
//! on `/metrics`, `build` in the `stats` verb). `git describe` is best
//! effort: outside a git checkout (or without git) the revision is
//! "unknown" rather than a build failure.

fn main() {
    let git = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=CCSA_GIT_DESCRIBE={git}");
    // Re-stamp when the checked-out commit moves; harmless when absent.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
