//! A small, dependency-free JSON reader/writer for the serving protocol.
//!
//! The workspace builds hermetically (no serde), and the wire format is a
//! handful of flat objects, so this module implements exactly RFC 8259:
//! parsing into a [`Json`] tree and compact serialisation with proper
//! string escaping. Object member order is preserved (responses print
//! fields in a stable, readable order).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }
}

/// Why parsing failed, with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Maximum container nesting accepted by [`parse`]. The serving protocol
/// is flat; the cap exists so one hostile request line (100k `[`s)
/// cannot overflow the recursive-descent stack and kill the process.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Parser<'a>) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let result = container(self);
        self.depth -= 1;
        result
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect_byte(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // guaranteed valid — but this is the untrusted-input
                    // path, so even "can't happen" stays a typed error,
                    // never a panic).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Consumes one or more digits; errors if none are present.
    fn digits(&mut self, what: &str) -> Result<(), JsonError> {
        let before = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == before {
            return Err(self.err(format!("expected {what}")));
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(c) if c.is_ascii_digit() => self.digits("integer digits")?,
            _ => return Err(self.err("expected digits after '-'")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits("digits after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("exponent digits")?;
        }
        // The scanned span is all ASCII digits/signs, so this cannot
        // fail — but a panic here would be a remote crash, so it stays
        // a typed error like everything else on this path.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            message: format!("bad number '{text}'"),
        })
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; null keeps the document
                    // parseable and signals "no meaningful value" (e.g. a
                    // diverged model emitting NaN probabilities).
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_input_errors_without_panicking() {
        // The parser sits on the untrusted request path: every failure
        // mode must be a typed JsonError (ccsa-audit's `unwrap` rule
        // keeps this file panic-free; this test exercises the corners
        // the conversions at `string()`/`number()` cover).
        let cases = [
            "",
            "\"",
            "\"\\",
            "\"\\u",
            "\"\\uD8",
            "\"\\uD800\"",
            "\"\\uD800\\uD800\"",
            "{\"a\"",
            "{\"a\":",
            "[1,",
            "-",
            "0.",
            "1e",
            "1e+",
            "00",
            "1e309",
            "-1e309",
            "{",
            "truncated",
            "\u{7f}",
        ];
        for case in cases {
            match parse(case) {
                Ok(v) => assert!(
                    case.trim().parse::<f64>().is_ok() || v == Json::Null,
                    "{case:?}"
                ),
                Err(e) => assert!(!e.message.is_empty(), "{case:?}"),
            }
        }
        // Multi-byte scalars still copy through the hardened path.
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
    }

    #[test]
    fn parses_flat_request() {
        let v = parse(r#"{"op": "compare", "a": "int main() {}", "b": "x", "n": 3}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("compare"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn roundtrips_through_display() {
        let original = r#"{"s":"line1\nline2\t\"q\"","arr":[1,2.5,true,null],"nested":{"k":-7}}"#;
        let v = parse(original).unwrap();
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
        assert_eq!(printed, original);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""\u00e9\u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("éA 😀"));
        let s = Json::str("tab\there\n").to_string();
        assert_eq!(s, "\"tab\\there\\n\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // One line of 100k open brackets must come back as a JsonError,
        // not take the process down via unbounded recursion.
        let deep_arrays = "[".repeat(100_000);
        let err = parse(&deep_arrays).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");

        let deep_objects = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_objects).is_err());

        // Reasonable nesting still parses: depth 100 is inside the cap.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
        // And exactly at the cap boundary it fails cleanly.
        let at_limit = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&at_limit).is_err());
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0.5").unwrap().as_f64(), Some(0.5));
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
        assert_eq!(parse("-0").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::num(5.0).to_string(), "5");
        assert_eq!(Json::num(0.25).to_string(), "0.25");
    }

    #[test]
    fn numbers_follow_rfc_8259_strictly() {
        for bad in ["1.", "-.5", ".5", "007", "01", "1e", "1e+", "-", "1.e3"] {
            assert!(parse(bad).is_err(), "accepted non-RFC number {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
        // The emitted document stays parseable.
        let doc = Json::obj(vec![("p", Json::Num(f64::NAN))]).to_string();
        assert_eq!(parse(&doc).unwrap().get("p"), Some(&Json::Null));
    }

    #[test]
    fn source_code_payloads_roundtrip() {
        let src = "int main() {\n  int n; cin >> n;\n  cout << \"x\\n\";\n  return 0;\n}";
        let v = Json::obj(vec![("source", Json::str(src))]);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.get("source").unwrap().as_str(), Some(src));
    }
}
