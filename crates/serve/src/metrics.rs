//! A unified metrics registry with Prometheus text exposition.
//!
//! Every operational signal the serving stack produces — request totals,
//! latency histograms, cache hit/miss counters, queue-depth gauges —
//! funnels through one [`MetricsRegistry`]. Transports render it as the
//! `GET /metrics` Prometheus endpoint; the JSON `stats`/`routes` verbs
//! read the *same* handles, so there is exactly one source of truth for
//! every number (pinned by tests in `ccsa-gateway`).
//!
//! Hot-path cost is one atomic op per event: [`Counter`] and [`Gauge`]
//! are `Arc<AtomicU64>` handles (gauges store f64 bits), and a
//! [`Histogram`] observation is one bucket `fetch_add`, one count
//! `fetch_add`, and one CAS-loop sum update — no locks, no allocation.
//! The registry's `RwLock` is touched only at registration (once per
//! series) and at scrape time.
//!
//! Values that are cheap snapshots rather than event streams (per-shard
//! queue depths, cache length, model table) come from **collectors**:
//! closures registered once and invoked at scrape time, mirroring the
//! Prometheus client-library collector pattern. `ccsa_uptime_seconds`
//! and `ccsa_build_info` are built in — every registry exposes them.
//!
//! The text format follows the Prometheus exposition format version
//! 0.0.4: `# HELP`/`# TYPE` headers, escaped label values, cumulative
//! `le` buckets ending in `+Inf`, and `_sum`/`_count` series per
//! histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::lockdep::DRwLock;
use std::time::Instant;

/// Build identity baked in at compile time: the crate version and the
/// `git describe` of the checkout that built it ("unknown" outside git).
pub fn build_info() -> (&'static str, &'static str) {
    (env!("CARGO_PKG_VERSION"), env!("CCSA_GIT_DESCRIBE"))
}

/// Latency histogram bounds in seconds: 250 µs to 10 s, roughly
/// geometric. Chosen for a predictor whose p50 sits in the low
/// milliseconds warm and tens of milliseconds cold.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 10.0,
];

/// Whether `name` is a legal Prometheus metric (or label) name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels additionally may not use `:`, but
/// none of ours do).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// What a family's samples mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// Fixed-bucket cumulative histogram.
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    // Relaxed throughout: metric cells are independent monotonic
    // counters; scrapes tolerate torn cross-metric views.

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed); // Relaxed: see above
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // Relaxed: see above
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // Relaxed: see above
    }
}

/// A gauge handle (f64 stored as bits). Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    // Relaxed throughout: a gauge is one independent cell read at
    // scrape time; no cross-cell ordering is needed.

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed); // Relaxed: see above
    }

    /// Adds `delta` (CAS loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        // Relaxed on both the update and the failure reload: see above.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed)) // Relaxed: see above
    }
}

/// Shared state behind a [`Histogram`] handle.
struct HistogramCore {
    /// Ascending upper bounds; the `+Inf` bucket is implicit.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (len = bounds.len() + 1, last is
    /// the `+Inf` overflow bucket). *Not* cumulative — rendering
    /// accumulates.
    buckets: Vec<AtomicU64>,
    /// Sum of observations, f64 bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// A point-in-time histogram copy (cumulative buckets, Prometheus
/// shape).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper bound, cumulative count ≤ bound)` pairs; the final
    /// implicit `+Inf` bucket equals [`HistogramSnapshot::count`].
    pub buckets: Vec<(f64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let ix = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        // Relaxed throughout: histogram cells tolerate scrape-time skew
        // between buckets, count, and sum.
        core.buckets[ix].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let _ = core
            .sum_bits
            // Relaxed on both the update and the failure reload.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// A consistent-enough copy (relaxed loads; scrape-time tolerance).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        let mut cumulative = 0u64;
        let buckets = core
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                // Relaxed: scrape-time reads, per the doc above.
                cumulative += core.buckets[i].load(Ordering::Relaxed);
                (b, cumulative)
            })
            .collect();
        HistogramSnapshot {
            buckets,
            // Relaxed: scrape-time reads, per the doc above.
            count: core.count.load(Ordering::Relaxed),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// One series handle within a family.
enum Child {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One registered metric family: a name, help text, kind, and its
/// labelled children in registration order.
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    children: Vec<(Vec<(String, String)>, Child)>,
}

/// One sample emitted by a collector.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs, in output order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    /// A labelled sample.
    pub fn new(labels: &[(&str, &str)], value: f64) -> Sample {
        Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }

    /// An unlabelled sample.
    pub fn value(value: f64) -> Sample {
        Sample {
            labels: Vec::new(),
            value,
        }
    }
}

/// A family of samples produced at scrape time by a collector.
#[derive(Debug, Clone)]
pub struct SampleFamily {
    /// Metric family name.
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Counter or gauge (collectors never emit histograms — event-stream
    /// data belongs in registered [`Histogram`] handles).
    pub kind: MetricKind,
    /// The samples.
    pub samples: Vec<Sample>,
}

impl SampleFamily {
    /// A collector-produced family.
    pub fn new(name: &str, help: &str, kind: MetricKind, samples: Vec<Sample>) -> SampleFamily {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        SampleFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples,
        }
    }
}

type Collector = Box<dyn Fn() -> Vec<SampleFamily> + Send + Sync>;

/// The process-wide metric registry: registered families plus
/// scrape-time collectors, rendered as Prometheus exposition text.
pub struct MetricsRegistry {
    families: DRwLock<Vec<Family>>,
    collectors: DRwLock<Vec<Collector>>,
    started: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry (plus the built-in `ccsa_uptime_seconds` and
    /// `ccsa_build_info` families).
    pub fn new() -> MetricsRegistry {
        let registry = MetricsRegistry {
            families: DRwLock::new("serve.metrics.families", Vec::new()),
            collectors: DRwLock::new("serve.metrics.collectors", Vec::new()),
            started: Instant::now(),
        };
        let started = registry.started;
        registry.register_collector(move || {
            let (version, revision) = build_info();
            vec![
                SampleFamily::new(
                    "ccsa_uptime_seconds",
                    "Seconds since this process's metrics registry was created.",
                    MetricKind::Gauge,
                    vec![Sample::value(started.elapsed().as_secs_f64())],
                ),
                SampleFamily::new(
                    "ccsa_build_info",
                    "Build identity; always 1, labelled with version and git revision.",
                    MetricKind::Gauge,
                    vec![Sample::new(
                        &[("version", version), ("revision", revision)],
                        1.0,
                    )],
                ),
            ]
        });
        registry
    }

    /// Seconds since the registry was created (what the built-in uptime
    /// gauge reports).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// A counter handle for `name{labels}`, created on first use. The
    /// same (name, labels) always returns the same underlying cell.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name or a kind clash with an
    /// existing family of the same name — both programmer errors.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.child(name, help, MetricKind::Counter, labels, || {
            Child::Counter(Counter::default())
        }) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked by child()"),
        }
    }

    /// A gauge handle for `name{labels}` (see [`MetricsRegistry::counter`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or kind clash.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, MetricKind::Gauge, labels, || {
            Child::Gauge(Gauge::default())
        }) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked by child()"),
        }
    }

    /// A histogram handle for `name{labels}` with the given ascending
    /// bucket bounds (`+Inf` is implicit — do not include it).
    ///
    /// # Panics
    ///
    /// Panics on an invalid name, kind clash, or non-ascending bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        match self.child(name, help, MetricKind::Histogram, labels, || {
            Child::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            })))
        }) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked by child()"),
        }
    }

    /// Registers a scrape-time collector; its families are rendered
    /// after the registered ones (samples for an already-registered
    /// family name are merged into that family's block).
    pub fn register_collector(&self, f: impl Fn() -> Vec<SampleFamily> + Send + Sync + 'static) {
        self.collectors
            .write()
            .expect("collector table poisoned")
            .push(Box::new(f));
    }

    fn child(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Child,
    ) -> Child {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_metric_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        // Fast path: the series already exists.
        {
            let families = self.families.read().expect("metric families poisoned");
            if let Some(family) = families.iter().find(|f| f.name == name) {
                assert!(
                    family.kind == kind,
                    "metric {name} registered as {:?}, requested as {kind:?}",
                    family.kind
                );
                if let Some((_, child)) = family.children.iter().find(|(l, _)| *l == labels) {
                    return clone_child(child);
                }
            }
        }
        let mut families = self.families.write().expect("metric families poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {:?}, requested as {kind:?}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        // Re-check under the write lock (another thread may have won).
        if let Some((_, child)) = family.children.iter().find(|(l, _)| *l == labels) {
            return clone_child(child);
        }
        family.children.push((labels, make()));
        clone_child(&family.children.last().expect("just pushed").1)
    }

    /// Renders the full registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        // Block per family name, in first-seen order: registered
        // families first, then collector families (merged by name so no
        // family name appears in two blocks).
        let mut out = String::with_capacity(4096);
        let mut blocks: Vec<(String, String, MetricKind, Vec<String>)> = Vec::new();
        {
            let families = self.families.read().expect("metric families poisoned");
            for family in families.iter() {
                let mut lines = Vec::new();
                for (labels, child) in &family.children {
                    render_child(&mut lines, &family.name, labels, child);
                }
                blocks.push((family.name.clone(), family.help.clone(), family.kind, lines));
            }
        }
        let collectors = self.collectors.read().expect("collector table poisoned");
        for collector in collectors.iter() {
            for family in collector() {
                let lines: Vec<String> = family
                    .samples
                    .iter()
                    .map(|s| sample_line(&family.name, &s.labels, s.value))
                    .collect();
                match blocks.iter_mut().find(|(name, ..)| *name == family.name) {
                    Some((.., existing)) => existing.extend(lines),
                    None => blocks.push((family.name, family.help, family.kind, lines)),
                }
            }
        }
        for (name, help, kind, lines) in blocks {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
            out.push_str(&format!("# TYPE {name} {}\n", kind.type_name()));
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

fn clone_child(child: &Child) -> Child {
    match child {
        Child::Counter(c) => Child::Counter(c.clone()),
        Child::Gauge(g) => Child::Gauge(g.clone()),
        Child::Histogram(h) => Child::Histogram(h.clone()),
    }
}

fn render_child(lines: &mut Vec<String>, name: &str, labels: &[(String, String)], child: &Child) {
    match child {
        Child::Counter(c) => lines.push(sample_line(name, labels, c.get() as f64)),
        Child::Gauge(g) => lines.push(sample_line(name, labels, g.get())),
        Child::Histogram(h) => {
            let snap = h.snapshot();
            for &(bound, cumulative) in &snap.buckets {
                let mut with_le = labels.to_vec();
                with_le.push(("le".to_string(), fmt_value(bound)));
                lines.push(sample_line(
                    &format!("{name}_bucket"),
                    &with_le,
                    cumulative as f64,
                ));
            }
            let mut inf = labels.to_vec();
            inf.push(("le".to_string(), "+Inf".to_string()));
            lines.push(sample_line(
                &format!("{name}_bucket"),
                &inf,
                snap.count as f64,
            ));
            lines.push(sample_line(&format!("{name}_sum"), labels, snap.sum));
            lines.push(sample_line(
                &format!("{name}_count"),
                labels,
                snap.count as f64,
            ));
        }
    }
}

fn sample_line(name: &str, labels: &[(String, String)], value: f64) -> String {
    let mut line = String::from(name);
    if !labels.is_empty() {
        line.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(k);
            line.push_str("=\"");
            line.push_str(&escape_label_value(v));
            line.push('"');
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(&fmt_value(value));
    line
}

/// Formats a sample value: integral floats print without a fraction
/// (Rust's shortest-representation `Display`), non-finite values use
/// the Prometheus spellings.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline only (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_requests_total", "requests", &[("verb", "compare")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same (name, labels) shares the cell; different labels do not.
        let c2 = r.counter("t_requests_total", "requests", &[("verb", "compare")]);
        assert_eq!(c2.get(), 3);
        let other = r.counter("t_requests_total", "requests", &[("verb", "rank")]);
        assert_eq!(other.get(), 0);

        let g = r.gauge("t_depth", "depth", &[]);
        g.set(4.5);
        g.add(-1.5);
        assert!((g.get() - 3.0).abs() < 1e-12);

        let h = r.histogram("t_latency_seconds", "latency", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0.1, 1), (1.0, 2)]);
        assert_eq!(snap.count, 3);
        assert!((snap.sum - 5.55).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_equals_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t_h_seconds", "h", &[], &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.005, 0.05, 0.5, 0.5] {
            h.observe(v);
        }
        let text = r.render();
        let bucket = |le: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(&format!("t_h_seconds_bucket{{le=\"{le}\"}}")))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v as u64)
                .unwrap_or_else(|| panic!("no bucket le={le} in:\n{text}"))
        };
        let buckets = [bucket("0.001"), bucket("0.01"), bucket("0.1")];
        assert_eq!(buckets, [1, 2, 3], "le buckets must be cumulative");
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "buckets must be monotonic"
        );
        // +Inf needs its own lookup (parse would fail on "+Inf"… no, the
        // value is the count, the label is +Inf — same parse applies).
        let inf = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("+Inf bucket present") as u64;
        assert_eq!(inf, 5, "+Inf bucket must equal the observation count");
        assert!(text.contains("t_h_seconds_count 5"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_escapes_total", "escaping", &[("path", "a\\b\"c\nd")]);
        c.inc();
        let text = r.render();
        assert!(
            text.contains(r#"t_escapes_total{path="a\\b\"c\nd"} 1"#),
            "escaped label missing in:\n{text}"
        );
    }

    #[test]
    fn every_rendered_metric_name_is_legal() {
        let r = MetricsRegistry::new();
        r.counter("t_ok_total", "x", &[("l", "v")]).inc();
        r.histogram("t_lat_seconds", "x", &[], &LATENCY_BUCKETS_S)
            .observe(0.1);
        for line in r.render().lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name_end = line.find(['{', ' ']).expect("sample line has a value");
            assert!(
                valid_metric_name(&line[..name_end]),
                "illegal metric name in line: {line}"
            );
        }
    }

    #[test]
    fn name_validation() {
        for good in ["a", "_x", "ns:sub", "ccsa_requests_total", "A9_"] {
            assert!(valid_metric_name(good), "{good} should be legal");
        }
        for bad in ["", "9x", "a-b", "a b", "é", "a.b"] {
            assert!(!valid_metric_name(bad), "{bad} should be illegal");
        }
    }

    #[test]
    fn builtin_uptime_and_build_info_render() {
        let r = MetricsRegistry::new();
        let text = r.render();
        assert!(text.contains("# TYPE ccsa_uptime_seconds gauge"));
        assert!(text.contains("ccsa_uptime_seconds "));
        let (version, revision) = build_info();
        assert!(text.contains(&format!(
            "ccsa_build_info{{version=\"{version}\",revision=\"{revision}\"}} 1"
        )));
    }

    #[test]
    fn collectors_merge_into_registered_families() {
        let r = MetricsRegistry::new();
        r.counter("t_merged_total", "merged", &[("src", "handle")])
            .inc();
        r.register_collector(|| {
            vec![SampleFamily::new(
                "t_merged_total",
                "merged",
                MetricKind::Counter,
                vec![Sample::new(&[("src", "collector")], 7.0)],
            )]
        });
        let text = r.render();
        // Exactly one HELP/TYPE block for the family, both samples in it.
        assert_eq!(
            text.matches("# TYPE t_merged_total counter").count(),
            1,
            "family must render as one block:\n{text}"
        );
        assert!(text.contains("t_merged_total{src=\"handle\"} 1"));
        assert!(text.contains("t_merged_total{src=\"collector\"} 7"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic_at_registration() {
        MetricsRegistry::new().counter("bad-name", "x", &[]);
    }
}
