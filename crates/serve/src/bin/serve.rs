//! The `serve` binary: JSON-lines over stdin/stdout.
//!
//! ```sh
//! # Serve every version in a model directory (written by
//! # ccsa_model::persist::save_version):
//! serve --model-dir ./models
//!
//! # Or bootstrap by training a small model on a curated problem first:
//! serve --train H --model-dir ./models
//!
//! # Then speak the protocol:
//! echo '{"op":"compare","first":"int main() { return 0; }",
//!        "second":"int main() { for (int i = 0; i < 9; i++) { } return 0; }"}' | serve …
//! ```
//!
//! One request per line in, one response per line out (see
//! [`ccsa_serve::proto`]). Malformed lines produce `ok:false` responses;
//! the process only exits on EOF.

use std::io::{BufRead, Write};
use std::path::PathBuf;

use ccsa_corpus::ProblemTag;
use ccsa_model::pipeline::{Pipeline, PipelineConfig};
use ccsa_serve::{
    proto, BatchConfig, CachePrecision, ModelRegistry, ServeConfig, ServeEngine, DEFAULT_MODEL,
};

struct Options {
    model_dir: Option<PathBuf>,
    train: Option<ProblemTag>,
    train_seed: u64,
    cache: usize,
    cache_stripes: usize,
    cache_precision: CachePrecision,
    workers: usize,
    max_batch: usize,
}

fn usage_abort(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: serve [--model-dir DIR] [--train A..I] [--seed N]\n\
         \x20            [--cache N] [--cache-stripes N]\n\
         \x20            [--cache-precision f32|f16|int8] [--workers N]\n\
         \x20            [--max-batch N]\n\
         \n\
         Loads every model version in DIR (name 'default'); --train first\n\
         trains a small comparator on the given curated problem and saves\n\
         it into DIR (or serves it directly when no DIR is given).\n\
         Protocol: one JSON request per stdin line, one JSON response per\n\
         stdout line; ops: compare, rank, stats, ping, shutdown.\n\
         (TCP transport + A/B routing: see the `gateway` binary.)"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        model_dir: None,
        train: None,
        train_seed: 42,
        cache: 4096,
        cache_stripes: 0,
        cache_precision: CachePrecision::F32,
        workers: 0,
        max_batch: 16,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| usage_abort("missing argument value"))
        };
        match args[i].as_str() {
            "--model-dir" => opts.model_dir = Some(PathBuf::from(value(&mut i))),
            "--train" => {
                let tag = value(&mut i);
                opts.train = Some(
                    ProblemTag::ALL
                        .iter()
                        .copied()
                        .find(|t| t.to_string().eq_ignore_ascii_case(&tag))
                        .unwrap_or_else(|| usage_abort(&format!("unknown problem '{tag}'"))),
                );
            }
            "--seed" => {
                opts.train_seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --seed"))
            }
            "--cache" => {
                opts.cache = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --cache"))
            }
            "--cache-stripes" => {
                opts.cache_stripes = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --cache-stripes"))
            }
            "--cache-precision" => {
                opts.cache_precision = value(&mut i)
                    .parse()
                    .unwrap_or_else(|e: String| usage_abort(&e))
            }
            "--workers" => {
                opts.workers = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --workers"))
            }
            "--max-batch" => {
                opts.max_batch = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --max-batch"))
            }
            "--help" | "-h" => usage_abort(""),
            other => usage_abort(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_options();
    let mut registry = ModelRegistry::new();

    if let Some(tag) = opts.train {
        eprintln!("[serve] training a small comparator on problem {tag} …");
        let outcome = Pipeline::new(PipelineConfig::tiny(opts.train_seed))
            .run_single(tag)
            .unwrap_or_else(|e| {
                eprintln!("error: training failed: {e}");
                std::process::exit(1);
            });
        eprintln!("[serve] held-out accuracy: {:.3}", outcome.test_accuracy);
        match &opts.model_dir {
            Some(dir) => {
                let v =
                    ccsa_model::persist::save_version(dir, &outcome.model).unwrap_or_else(|e| {
                        eprintln!("error: saving model failed: {e}");
                        std::process::exit(1);
                    });
                eprintln!(
                    "[serve] saved {}",
                    dir.join(format!("model-v{v}.ccsm")).display()
                );
            }
            None => {
                registry.register(DEFAULT_MODEL, 1, outcome.model);
            }
        }
    }

    if let Some(dir) = &opts.model_dir {
        match registry.load_dir(DEFAULT_MODEL, dir) {
            Ok(0) => {
                eprintln!(
                    "error: no model artefacts in {} (hint: --train H writes one)",
                    dir.display()
                );
                std::process::exit(1);
            }
            Ok(n) => eprintln!("[serve] loaded {n} model version(s) from {}", dir.display()),
            Err(e) => {
                eprintln!("error: loading models failed: {e}");
                std::process::exit(1);
            }
        }
    } else if opts.train.is_none() {
        usage_abort("need --model-dir and/or --train");
    }

    let workers = if opts.workers == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        opts.workers
    };
    let engine = ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: opts.cache,
            cache_stripes: opts.cache_stripes,
            cache_precision: opts.cache_precision,
            batch: BatchConfig {
                workers,
                max_batch: opts.max_batch,
                ..BatchConfig::default()
            },
        },
    );
    eprintln!(
        "[serve] ready: cache={} ({}) workers={} max_batch={} — reading JSON lines from stdin",
        opts.cache, opts.cache_precision, workers, opts.max_batch
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: stdin read failed: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = proto::parse_request(&line);
        let is_shutdown = matches!(request, Ok(proto::Request::Shutdown));
        let response = match request {
            Ok(request) => proto::dispatch(&engine, request),
            Err(message) => proto::error_response(&message),
        };
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // downstream closed
        }
        if is_shutdown {
            eprintln!("[serve] shutdown requested — exiting");
            break;
        }
    }
}
