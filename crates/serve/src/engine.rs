//! The serving engine: parse → cache → micro-batch encode → classify.
//!
//! [`ServeEngine`] is the in-process front door. One request travels:
//!
//! 1. **Parse** each mini-C++ source through [`ccsa_cppast`] and flatten
//!    to an [`AstGraph`]; structurally identical sources (by
//!    [`AstGraph::canonical_hash`]) collapse into one unit of work.
//! 2. **Cache** lookup in the LRU embedding cache, keyed by
//!    `(model, canonical hash)`. Hits skip the encoder entirely.
//! 3. **Encode** the misses through the shared [`EncodePool`] — pending
//!    trees from all in-flight requests coalesce into batched forward
//!    passes.
//! 4. **Classify** on the caller's thread: the 2·d classifier head over
//!    cached/fresh latent codes produces the slower-probability for every
//!    requested pair, or the full round-robin matrix for a ranking.
//!
//! Concurrency: no global lock sits on the hot path. The embedding
//! cache is an N-way striped LRU ([`ShardedCache`]) — a lookup locks
//! only its key's stripe, and only around the lookup itself, never
//! across encoding. The encode queue is sharded per model with work
//! stealing (see [`crate::batch`]), and the read-mostly registry sits
//! behind an `RwLock` (writes only on register/hot-swap). Two racing
//! requests may both encode the same fresh tree — duplicated work,
//! never wrong results (encoders are pure).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lockdep::DRwLock;
use std::time::Instant;

use ccsa_cppast::{parse_program, AstGraph, ParseError};
use ccsa_tensor::Tensor;

use crate::batch::{BatchConfig, BatchStats, EncodeError, EncodePool};
use crate::cache::{CachePrecision, CacheStats, ShardedCache, SnapshotError};
use crate::metrics::{
    Histogram, MetricKind, MetricsRegistry, Sample, SampleFamily, LATENCY_BUCKETS_S,
};
use crate::rank::{rank_from_matrix, RankedCandidate};
use crate::registry::{ModelRegistry, ModelSelector, RegistryError, ServeModel, DEFAULT_MODEL};

/// Engine construction settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// LRU capacity in latent codes (0 disables caching).
    pub cache_capacity: usize,
    /// Cache stripe count (0 = [`crate::cache::DEFAULT_CACHE_STRIPES`]).
    /// Capacity is split evenly across stripes; 1 reproduces the old
    /// single-lock cache.
    pub cache_stripes: usize,
    /// Storage precision for cached latent codes (f32 lossless; f16 and
    /// int8 quantize on insert and dequantize on classifier read,
    /// trading a bounded embedding perturbation for 2–4× capacity per
    /// byte).
    pub cache_precision: CachePrecision,
    /// Worker-pool shape.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_capacity: 4096,
            cache_stripes: 0,
            cache_precision: CachePrecision::F32,
            batch: BatchConfig::default(),
        }
    }
}

/// The most candidates one ranking request may carry. Ranking is
/// O(K²) in classifier passes and matrix memory, and the request line
/// arrives from untrusted input — the cap keeps one request bounded the
/// same way the JSON/parser nesting caps do. 256 candidates is ~32k head
/// passes, far beyond any realistic "which of my solutions is fastest"
/// call.
pub const MAX_RANK_CANDIDATES: usize = 256;

/// Serving failures.
#[derive(Debug)]
pub enum ServeError {
    /// A submitted source failed to parse; the index identifies which
    /// input (0-based; for compare, 0 = first, 1 = second).
    Parse(usize, ParseError),
    /// Model resolution failed.
    Registry(RegistryError),
    /// A ranking request needs at least two candidates.
    TooFewCandidates(usize),
    /// A ranking request exceeded [`MAX_RANK_CANDIDATES`].
    TooManyCandidates(usize),
    /// The encoder failed (panicked) in the worker pool — typically a
    /// corrupt model artefact.
    Encode(EncodeError),
    /// Writing or loading an embedding-cache snapshot failed.
    Cache(SnapshotError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(ix, e) => write!(f, "candidate {ix} failed to parse: {e}"),
            ServeError::Registry(e) => write!(f, "{e}"),
            ServeError::TooFewCandidates(n) => {
                write!(f, "ranking needs at least 2 candidates, got {n}")
            }
            ServeError::TooManyCandidates(n) => {
                write!(
                    f,
                    "ranking accepts at most {MAX_RANK_CANDIDATES} candidates, got {n}"
                )
            }
            ServeError::Encode(e) => write!(f, "{e}"),
            ServeError::Cache(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e)
    }
}

impl From<EncodeError> for ServeError {
    fn from(e: EncodeError) -> ServeError {
        ServeError::Encode(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Cache(e)
    }
}

/// Wall-clock seconds one request spent in each engine stage.
/// Returned by the `_traced` request variants so transports can record
/// per-stage latency histograms and per-request trace entries; the
/// engine also observes them into `ccsa_stage_duration_seconds{stage}`
/// when a registry is attached ([`ServeEngine::attach_metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Parsing and AST flattening.
    pub parse_s: f64,
    /// Cache lookups plus post-encode cache fill.
    pub cache_s: f64,
    /// Blocking wait on the encode pool (queueing + forward passes).
    pub encode_s: f64,
    /// Classifier-head passes on the caller's thread.
    pub classify_s: f64,
}

impl StageTimings {
    /// Total engine-side seconds (excludes transport parse/serialise).
    pub fn total_s(&self) -> f64 {
        self.parse_s + self.cache_s + self.encode_s + self.classify_s
    }
}

/// The verdict for one compared pair.
#[derive(Debug, Clone)]
pub struct CompareOutcome {
    /// Model probability that the *first* program is the slower one.
    pub prob_first_slower: f32,
    /// Resolved model name.
    pub model: String,
    /// Resolved model version.
    pub version: u32,
    /// How many of the pair's trees came from the embedding cache (0–2).
    pub cache_hits: usize,
}

impl CompareOutcome {
    /// `true` when the model believes the first program is the slower one.
    pub fn first_is_slower(&self) -> bool {
        self.prob_first_slower >= 0.5
    }
}

/// The outcome of [`ServeEngine::compare_graphs`] — like
/// [`CompareOutcome`] minus the owned model name, so producing one
/// performs no heap allocation (the zero-alloc steady-state contract;
/// use [`ServeEngine::resolve_coordinates`] when the name is needed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareScore {
    /// Model probability that the *first* program is the slower one.
    pub prob_first_slower: f32,
    /// Resolved model version.
    pub version: u32,
    /// How many of the pair's trees came from the embedding cache (0–2).
    pub cache_hits: usize,
}

impl CompareScore {
    /// `true` when the model believes the first program is the slower one.
    pub fn first_is_slower(&self) -> bool {
        self.prob_first_slower >= 0.5
    }
}

/// The result of ranking K candidates.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// Candidates ordered fastest-first.
    pub ranking: Vec<RankedCandidate>,
    /// Resolved model name.
    pub model: String,
    /// Resolved model version.
    pub version: u32,
    /// Candidates served from the embedding cache.
    pub cache_hits: usize,
    /// Distinct trees encoded fresh for this request (duplicated
    /// candidates collapse into one encode).
    pub encoded: usize,
}

/// One registration's share of the embedding cache (see
/// [`EngineStats::model_cache`]).
#[derive(Debug, Clone)]
pub struct ModelCacheStats {
    /// Registry name.
    pub model: String,
    /// Version within the name.
    pub version: u32,
    /// Lookups under this registration that hit.
    pub hits: u64,
    /// Lookups under this registration that missed.
    pub misses: u64,
}

impl ModelCacheStats {
    /// Hit fraction over this registration's lookups (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Engine-level counters plus component snapshots.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Compare pairs scored (each pair counts once).
    pub compares: u64,
    /// Ranking requests served.
    pub rankings: u64,
    /// Sources parsed.
    pub parses: u64,
    /// Sources rejected by the parser.
    pub parse_failures: u64,
    /// Embedding-cache counters, aggregated over stripes (always the
    /// exact sum of [`EngineStats::stripe_cache`] — one snapshot feeds
    /// both, so the scalar never drifts from its own breakdown).
    pub cache: CacheStats,
    /// Cached codes currently held.
    pub cache_len: usize,
    /// Payload bytes at rest across all stripes (always the exact sum
    /// of the per-stripe byte counts in [`EngineStats::stripe_cache`]).
    pub cache_bytes: usize,
    /// Storage precision of cached codes.
    pub cache_precision: CachePrecision,
    /// Per-stripe cache counters plus entry counts and payload bytes,
    /// in stripe order — the skew diagnostic behind
    /// `ccsa_cache_hits_total{stripe}`.
    pub stripe_cache: Vec<(CacheStats, usize, usize)>,
    /// Worker-pool counters.
    pub batch: BatchStats,
    /// Trees waiting across all encode shards right now (the aggregate
    /// admission backpressure signal).
    pub queue_depth: usize,
    /// Pending trees per encode shard, keyed `name@vN` (`all` when the
    /// pool runs unsharded), sorted by label.
    pub queue_depths: Vec<(String, usize)>,
    /// Encode shards currently materialised.
    pub shard_count: usize,
    /// Embedding-cache stripes.
    pub cache_stripes: usize,
    /// Registered models: `(name, versions)`.
    pub models: Vec<(String, Vec<u32>)>,
    /// Per-registration embedding-cache counters, ordered by
    /// (name, version).
    pub model_cache: Vec<ModelCacheStats>,
    /// Tensor buffer-pool counters (process-wide): how often encode
    /// buffers were recycled vs freshly allocated, and what is parked
    /// in each tier right now.
    pub pool: ccsa_tensor::PoolStats,
    /// Seconds since the engine was constructed.
    pub uptime_seconds: f64,
}

/// The in-process serving engine.
pub struct ServeEngine {
    /// Read-mostly: every request takes a read lock to resolve its
    /// selector; only register/hot-swap takes the write lock.
    registry: DRwLock<ModelRegistry>,
    cache: ShardedCache,
    pool: EncodePool,
    compares: AtomicU64,
    rankings: AtomicU64,
    parses: AtomicU64,
    parse_failures: AtomicU64,
    started: Instant,
    /// Stage histograms, present once a registry is attached. Handles
    /// are cloned atomics into the registry — observing them is
    /// lock-free and the registry renders them at scrape time.
    stage_hists: OnceLock<StageHistograms>,
}

/// Per-stage latency histogram handles (see
/// [`ServeEngine::attach_metrics`]).
struct StageHistograms {
    parse: Histogram,
    cache: Histogram,
    encode: Histogram,
    classify: Histogram,
}

/// Latent codes resolved for one request, with the cache/encode time
/// split ([`ServeEngine::codes_for`]).
struct ResolvedCodes {
    /// One code per input graph, input order.
    codes: Vec<Tensor>,
    /// Per-input cache-hit flag.
    hit: Vec<bool>,
    /// Distinct trees encoded fresh.
    encoded: usize,
    /// Seconds in cache lookups and fills.
    cache_s: f64,
    /// Seconds blocked on the encode pool.
    encode_s: f64,
}

impl ServeEngine {
    /// Builds an engine around an existing registry.
    pub fn new(registry: ModelRegistry, config: &ServeConfig) -> ServeEngine {
        ServeEngine {
            registry: DRwLock::new("serve.engine.registry", registry),
            cache: ShardedCache::with_precision(
                config.cache_capacity,
                config.cache_stripes,
                config.cache_precision,
            ),
            pool: EncodePool::new(&config.batch),
            compares: AtomicU64::new(0),
            rankings: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            parse_failures: AtomicU64::new(0),
            started: Instant::now(),
            stage_hists: OnceLock::new(),
        }
    }

    /// Convenience: an engine serving one trained model as
    /// `default` v1.
    pub fn with_model(
        model: ccsa_model::pipeline::TrainedModel,
        config: &ServeConfig,
    ) -> ServeEngine {
        let mut registry = ModelRegistry::new();
        registry.register(DEFAULT_MODEL, 1, model);
        ServeEngine::new(registry, config)
    }

    /// Registers another model at runtime (A/B serving, reloads).
    /// Replacing a (name, version) coordinate is safe against in-flight
    /// requests: cache keys are salted by the registration's
    /// process-unique [`ServeModel::uid`], so codes encoded under the old
    /// weights can never be served for the new ones (stale entries simply
    /// age out of the LRU).
    pub fn register(&self, name: &str, version: u32, model: ccsa_model::pipeline::TrainedModel) {
        let live: Vec<u64> = {
            let mut registry = self.registry.write().expect("registry poisoned");
            registry.register(name, version, model);
            registry.entries().iter().map(|m| m.uid()).collect()
        };
        // A replaced registration's encode shard is unreachable from now
        // on (new requests resolve the new uid); collect it once drained
        // so repeated hot swaps cannot grow the shard table without
        // bound.
        self.pool.prune_retired(&live);
    }

    /// Scores one pair of sources: is the first slower than the second?
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on parse or model-resolution failure.
    pub fn compare(
        &self,
        selector: &ModelSelector,
        first: &str,
        second: &str,
    ) -> Result<CompareOutcome, ServeError> {
        let mut outcomes = self.compare_batch(selector, &[(first, second)])?;
        Ok(outcomes.pop().expect("one pair in, one outcome out"))
    }

    /// Scores a batch of pairs in one pass: all distinct trees across the
    /// whole batch are deduplicated, cache-checked and encoded together.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on the first parse failure (index = pair
    /// index × 2 + side) or on model-resolution failure.
    pub fn compare_batch(
        &self,
        selector: &ModelSelector,
        pairs: &[(&str, &str)],
    ) -> Result<Vec<CompareOutcome>, ServeError> {
        Ok(self.compare_batch_traced(selector, pairs)?.0)
    }

    /// Scores one pre-parsed pair — the steady-state fast path. With
    /// both codes cached (the warm case) this performs **zero heap
    /// allocations**: the memoized canonical hashes key the cache, F32
    /// hits hand back `Arc` clones (F16/int8 decode into pooled
    /// buffers), and the classifier head runs tape-free on a pooled
    /// scratch buffer. An integration test pins the zero-alloc claim
    /// with a counting global allocator. Scores are bit-identical to
    /// [`ServeEngine::compare`] on the same sources.
    ///
    /// Cache misses fall back to the batched encode pool (cold path —
    /// allocations allowed there).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on model-resolution or encode failure.
    pub fn compare_graphs(
        &self,
        selector: &ModelSelector,
        first: &Arc<AstGraph>,
        second: &Arc<AstGraph>,
    ) -> Result<CompareScore, ServeError> {
        let model = self.resolve(selector)?;
        let salt = model_salt(&model);
        let t = Instant::now();
        let ka = first.canonical_hash() ^ salt;
        let kb = second.canonical_hash() ^ salt;
        let ca = self.cache.get(ka);
        let cb = self.cache.get(kb);
        let cache_hits = ca.is_some() as usize + cb.is_some() as usize;
        model.note_cache_lookups(cache_hits as u64, 2 - cache_hits as u64);
        let cache_s = t.elapsed().as_secs_f64();

        let mut encode_s = 0.0;
        let (za, zb) = match (ca, cb) {
            (Some(za), Some(zb)) => (za, zb),
            (ca, cb) => {
                // Cold path: encode the misses through the worker pool
                // (deduplicated when both sides are the same tree).
                let t = Instant::now();
                let mut miss: Vec<Arc<AstGraph>> = Vec::with_capacity(2);
                if ca.is_none() {
                    miss.push(Arc::clone(first));
                }
                if cb.is_none() && kb != ka {
                    miss.push(Arc::clone(second));
                }
                let fresh = self.pool.encode(&model, &miss)?;
                let mut fresh = fresh.into_iter();
                let za = match ca {
                    Some(z) => z,
                    None => {
                        let z = fresh.next().expect("one code per missed tree");
                        self.cache.insert_tagged(ka, model.uid(), z.clone());
                        z
                    }
                };
                let zb = match cb {
                    Some(z) => z,
                    None if kb == ka => za.clone(),
                    None => {
                        let z = fresh.next().expect("one code per missed tree");
                        self.cache.insert_tagged(kb, model.uid(), z.clone());
                        z
                    }
                };
                encode_s = t.elapsed().as_secs_f64();
                (za, zb)
            }
        };

        // Relaxed: stats counter, read only by stats().
        self.compares.fetch_add(1, Ordering::Relaxed);
        let trained = &model.model;
        let t = Instant::now();
        let prob_first_slower = trained
            .comparator
            .predict_from_codes(&trained.params, &za, &zb);
        let stages = StageTimings {
            parse_s: 0.0,
            cache_s,
            encode_s,
            classify_s: t.elapsed().as_secs_f64(),
        };
        self.observe_stages(&stages);
        Ok(CompareScore {
            prob_first_slower,
            version: model.version,
            cache_hits,
        })
    }

    /// [`ServeEngine::compare_batch`] plus the per-stage wall-clock
    /// breakdown — transports thread the timings into stage histograms
    /// and sampled per-request trace records.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::compare_batch`].
    pub fn compare_batch_traced(
        &self,
        selector: &ModelSelector,
        pairs: &[(&str, &str)],
    ) -> Result<(Vec<CompareOutcome>, StageTimings), ServeError> {
        let model = self.resolve(selector)?;
        let mut sources = Vec::with_capacity(pairs.len() * 2);
        for (a, b) in pairs {
            sources.push(*a);
            sources.push(*b);
        }
        let t = Instant::now();
        let parsed = self.parse_all(&sources)?;
        let parse_s = t.elapsed().as_secs_f64();
        let resolved = self.codes_for(&model, &parsed)?;

        // Relaxed: stats counter, read only by stats().
        self.compares
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let trained = &model.model;
        let t = Instant::now();
        let outcomes = (0..pairs.len())
            .map(|p| {
                let (ia, ib) = (2 * p, 2 * p + 1);
                CompareOutcome {
                    prob_first_slower: trained.comparator.predict_from_codes(
                        &trained.params,
                        &resolved.codes[ia],
                        &resolved.codes[ib],
                    ),
                    model: model.name.clone(),
                    version: model.version,
                    cache_hits: resolved.hit[ia] as usize + resolved.hit[ib] as usize,
                }
            })
            .collect();
        let stages = StageTimings {
            parse_s,
            cache_s: resolved.cache_s,
            encode_s: resolved.encode_s,
            classify_s: t.elapsed().as_secs_f64(),
        };
        self.observe_stages(&stages);
        Ok((outcomes, stages))
    }

    /// Ranks K candidate sources fastest-first by full round-robin
    /// comparison (see [`crate::rank`]). Each candidate is encoded at most
    /// once regardless of the K−1 comparisons it participates in.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on parse failure, model-resolution failure,
    /// fewer than two candidates, or more than [`MAX_RANK_CANDIDATES`].
    pub fn rank(
        &self,
        selector: &ModelSelector,
        candidates: &[&str],
    ) -> Result<RankOutcome, ServeError> {
        Ok(self.rank_traced(selector, candidates)?.0)
    }

    /// [`ServeEngine::rank`] plus the per-stage wall-clock breakdown
    /// (see [`ServeEngine::compare_batch_traced`]).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::rank`].
    pub fn rank_traced(
        &self,
        selector: &ModelSelector,
        candidates: &[&str],
    ) -> Result<(RankOutcome, StageTimings), ServeError> {
        if candidates.len() < 2 {
            return Err(ServeError::TooFewCandidates(candidates.len()));
        }
        if candidates.len() > MAX_RANK_CANDIDATES {
            return Err(ServeError::TooManyCandidates(candidates.len()));
        }
        let model = self.resolve(selector)?;
        let t = Instant::now();
        let parsed = self.parse_all(candidates)?;
        let parse_s = t.elapsed().as_secs_f64();
        let resolved = self.codes_for(&model, &parsed)?;
        let codes = &resolved.codes;

        let k = candidates.len();
        let trained = &model.model;
        let t = Instant::now();
        // Symmetrised round-robin: both orderings of every unordered pair,
        // since the learned classifier is not exactly antisymmetric.
        let mut p_slower = vec![vec![0.5f64; k]; k];
        for i in 0..k {
            for j in (i + 1)..k {
                let pij =
                    trained
                        .comparator
                        .predict_from_codes(&trained.params, &codes[i], &codes[j]);
                let pji =
                    trained
                        .comparator
                        .predict_from_codes(&trained.params, &codes[j], &codes[i]);
                let sym = 0.5 * (pij as f64 + (1.0 - pji as f64));
                p_slower[i][j] = sym;
                p_slower[j][i] = 1.0 - sym;
            }
        }
        // Relaxed: stats counters, read only by stats().
        self.rankings.fetch_add(1, Ordering::Relaxed);
        self.compares
            .fetch_add((k * (k - 1) / 2) as u64, Ordering::Relaxed);
        let hits = resolved.hit.iter().filter(|&&h| h).count();
        let outcome = RankOutcome {
            ranking: rank_from_matrix(&p_slower),
            model: model.name.clone(),
            version: model.version,
            cache_hits: hits,
            encoded: resolved.encoded,
        };
        let stages = StageTimings {
            parse_s,
            cache_s: resolved.cache_s,
            encode_s: resolved.encode_s,
            classify_s: t.elapsed().as_secs_f64(),
        };
        self.observe_stages(&stages);
        Ok((outcome, stages))
    }

    /// Counter and component snapshot.
    pub fn stats(&self) -> EngineStats {
        // One shard-table snapshot feeds all three queue fields, so the
        // scalar depth always equals the sum of its own breakdown.
        let (queue_depths, shard_count) = self.pool.shard_snapshot();
        let queue_depth = queue_depths.iter().map(|(_, d)| d).sum();
        let registry = self.registry.read().expect("registry poisoned");
        let model_cache = registry
            .entries()
            .iter()
            .map(|m| {
                let (hits, misses) = m.cache_lookups();
                ModelCacheStats {
                    model: m.name.clone(),
                    version: m.version,
                    hits,
                    misses,
                }
            })
            .collect();
        // One per-stripe snapshot feeds both the aggregate and the
        // breakdown, so `cache`/`cache_len` always equal the sums of
        // `stripe_cache` — the same invariant the queue fields keep.
        let stripe_cache = self.cache.stripe_stats();
        let mut cache = CacheStats::default();
        let mut cache_len = 0;
        let mut cache_bytes = 0;
        for (s, len, bytes) in &stripe_cache {
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.evictions += s.evictions;
            cache.insertions += s.insertions;
            cache_len += len;
            cache_bytes += bytes;
        }
        EngineStats {
            // Relaxed: independent stats counters read at snapshot time.
            compares: self.compares.load(Ordering::Relaxed),
            pool: ccsa_tensor::pool::stats(),
            rankings: self.rankings.load(Ordering::Relaxed),
            parses: self.parses.load(Ordering::Relaxed),
            parse_failures: self.parse_failures.load(Ordering::Relaxed),
            cache,
            cache_len,
            cache_bytes,
            cache_precision: self.cache.precision(),
            stripe_cache,
            batch: self.pool.stats(),
            queue_depth,
            queue_depths,
            shard_count,
            cache_stripes: self.cache.stripe_count(),
            models: registry.list(),
            model_cache,
            uptime_seconds: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Wires the engine into a [`MetricsRegistry`]: per-stage latency
    /// histograms (`ccsa_stage_duration_seconds{stage}`) observed on
    /// every request, plus a scrape-time collector exporting the full
    /// [`EngineStats`] snapshot — the exact atomics the `stats` verb
    /// reads, so `/metrics` and the JSON verbs can never disagree.
    ///
    /// The collector holds only a [`std::sync::Weak`] engine reference:
    /// a registry outliving its engine scrapes empty rather than
    /// keeping the worker pool alive.
    pub fn attach_metrics(self: &Arc<Self>, registry: &MetricsRegistry) {
        let hist = |stage: &str| {
            registry.histogram(
                "ccsa_stage_duration_seconds",
                "Engine stage latency per request, in seconds.",
                &[("stage", stage)],
                &LATENCY_BUCKETS_S,
            )
        };
        let _ = self.stage_hists.set(StageHistograms {
            parse: hist("parse"),
            cache: hist("cache"),
            encode: hist("encode"),
            classify: hist("classify"),
        });
        let engine = Arc::downgrade(self);
        registry.register_collector(move || match engine.upgrade() {
            Some(engine) => engine_metric_families(&engine.stats()),
            None => Vec::new(),
        });
    }

    fn observe_stages(&self, stages: &StageTimings) {
        if let Some(h) = self.stage_hists.get() {
            h.parse.observe(stages.parse_s);
            h.cache.observe(stages.cache_s);
            h.encode.observe(stages.encode_s);
            h.classify.observe(stages.classify_s);
        }
    }

    /// Drops all cached embeddings (telemetry counters survive).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Resolves a selector to its concrete `(name, version)` coordinate
    /// without touching caches or counters — transports use this to
    /// label per-route telemetry (e.g. matching a routing-table entry to
    /// its encode-shard queue depth).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] when the selector matches
    /// nothing.
    pub fn resolve_coordinates(
        &self,
        selector: &ModelSelector,
    ) -> Result<(String, u32), ServeError> {
        let model = self.resolve(selector)?;
        Ok((model.name.clone(), model.version))
    }

    /// Spills the selected model's cached embeddings to `path` so the
    /// next process can [`ServeEngine::warm_cache`] from it. Returns the
    /// number of entries written. The snapshot stores stable canonical
    /// AST hashes (un-salted) plus a digest of the model weights, so it
    /// is valid across restarts but refuses to warm different weights.
    ///
    /// The cache lock is held only while the entries are copied out —
    /// the file write happens unlocked, so snapshotting a live engine
    /// does not stall serving traffic.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on model-resolution or I/O failure.
    pub fn snapshot_cache(
        &self,
        selector: &ModelSelector,
        path: &Path,
    ) -> Result<usize, ServeError> {
        let model = self.resolve(selector)?;
        let file = std::fs::File::create(path).map_err(SnapshotError::Io)?;
        let mut w = std::io::BufWriter::new(file);
        let written = self.cache.snapshot_to(
            &mut w,
            model.uid(),
            model_salt(&model),
            model_digest(&model),
        )?;
        use std::io::Write as _;
        w.flush().map_err(SnapshotError::Io)?;
        Ok(written)
    }

    /// Loads a cache snapshot written by [`ServeEngine::snapshot_cache`]
    /// into the selected model's key space, so its first requests hit the
    /// cache instead of the encoder. Returns the number of entries read.
    ///
    /// A snapshot encodes latent codes of the weights that produced it,
    /// so loading verifies the stored weights digest: warming a
    /// *different* model (e.g. retrained weights at the same coordinate)
    /// fails with [`SnapshotError::WrongModel`] instead of silently
    /// serving stale embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on model-resolution failure, I/O failure,
    /// a malformed snapshot, or a weights mismatch.
    pub fn warm_cache(&self, selector: &ModelSelector, path: &Path) -> Result<usize, ServeError> {
        let model = self.resolve(selector)?;
        let file = std::fs::File::open(path).map_err(SnapshotError::Io)?;
        // load_from reads and verifies before touching any stripe, and a
        // failed load inserts nothing.
        Ok(self.cache.load_from(
            std::io::BufReader::new(file),
            model.uid(),
            model_salt(&model),
            model_digest(&model),
        )?)
    }

    fn resolve(&self, selector: &ModelSelector) -> Result<Arc<ServeModel>, RegistryError> {
        self.registry
            .read()
            .expect("registry poisoned")
            .resolve(selector)
    }

    fn parse_all(&self, sources: &[&str]) -> Result<Vec<Arc<AstGraph>>, ServeError> {
        sources
            .iter()
            .enumerate()
            .map(|(ix, src)| {
                // Relaxed: stats counters (here and the failure below).
                self.parses.fetch_add(1, Ordering::Relaxed);
                match parse_program(src) {
                    Ok(program) => Ok(Arc::new(AstGraph::from_program(&program))),
                    Err(e) => {
                        // Relaxed: stats counter.
                        self.parse_failures.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Parse(ix, e))
                    }
                }
            })
            .collect()
    }

    /// Resolves one latent code per input graph: cache hits first, one
    /// deduplicated batched encode for the misses, then cache fill.
    /// The returned [`ResolvedCodes`] carries the codes (input order),
    /// per-input hit flags, the distinct-tree encode count, and the
    /// cache/encode wall-clock split for stage telemetry.
    ///
    /// # Errors
    ///
    /// Propagates encoder failures from the worker pool.
    fn codes_for(
        &self,
        model: &Arc<ServeModel>,
        graphs: &[Arc<AstGraph>],
    ) -> Result<ResolvedCodes, ServeError> {
        let salt = model_salt(model);
        let keys: Vec<u64> = graphs.iter().map(|g| g.canonical_hash() ^ salt).collect();

        let mut codes: Vec<Option<Tensor>> = vec![None; graphs.len()];
        let mut hit = vec![false; graphs.len()];
        let mut cache_s = 0.0;
        let mut encode_s = 0.0;
        let t = Instant::now();
        // Distinct missing keys, first occurrence wins (dedup within the
        // request: K identical candidates encode once). The map gives
        // O(1) dedup and fill on the serving hot path.
        let mut miss_slots: HashMap<u64, usize> = HashMap::new();
        let mut miss_graphs: Vec<Arc<AstGraph>> = Vec::new();
        // Each lookup locks only its key's stripe: concurrent requests
        // proceed in parallel instead of convoying on one cache mutex.
        for (ix, &key) in keys.iter().enumerate() {
            if let Some(code) = self.cache.get(key) {
                codes[ix] = Some(code);
                hit[ix] = true;
            } else if let std::collections::hash_map::Entry::Vacant(slot) = miss_slots.entry(key) {
                slot.insert(miss_graphs.len());
                miss_graphs.push(Arc::clone(&graphs[ix]));
            }
        }

        cache_s += t.elapsed().as_secs_f64();

        let hit_count = hit.iter().filter(|&&h| h).count() as u64;
        model.note_cache_lookups(hit_count, graphs.len() as u64 - hit_count);

        let encoded = miss_graphs.len();
        if !miss_graphs.is_empty() {
            let t = Instant::now();
            let fresh = self.pool.encode(model, &miss_graphs)?;
            encode_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for (&key, &slot) in &miss_slots {
                self.cache
                    .insert_tagged(key, model.uid(), fresh[slot].clone());
            }
            for (ix, &key) in keys.iter().enumerate() {
                if codes[ix].is_none() {
                    let slot = *miss_slots.get(&key).expect("miss was queued");
                    codes[ix] = Some(fresh[slot].clone());
                }
            }
            cache_s += t.elapsed().as_secs_f64();
        }
        Ok(ResolvedCodes {
            codes: codes
                .into_iter()
                .map(|c| c.expect("every input resolved"))
                .collect(),
            hit,
            encoded,
            cache_s,
            encode_s,
        })
    }
}

/// Renders an [`EngineStats`] snapshot as Prometheus sample families —
/// the scrape-time half of [`ServeEngine::attach_metrics`]. Exposed so
/// tests can pin `/metrics` output against the `stats` verb: both read
/// the same snapshot shape, so a number shown by one is the number
/// shown by the other.
pub fn engine_metric_families(stats: &EngineStats) -> Vec<SampleFamily> {
    use MetricKind::{Counter, Gauge};
    let scalar = |name: &str, help: &str, kind: MetricKind, v: f64| {
        SampleFamily::new(name, help, kind, vec![Sample::value(v)])
    };
    let mut out = vec![
        scalar(
            "ccsa_compares_total",
            "Compare pairs scored (ranking round-robins included).",
            Counter,
            stats.compares as f64,
        ),
        scalar(
            "ccsa_rankings_total",
            "Ranking requests served.",
            Counter,
            stats.rankings as f64,
        ),
        scalar(
            "ccsa_parses_total",
            "Sources parsed.",
            Counter,
            stats.parses as f64,
        ),
        scalar(
            "ccsa_parse_failures_total",
            "Sources rejected by the parser.",
            Counter,
            stats.parse_failures as f64,
        ),
        scalar(
            "ccsa_cache_stripes",
            "Embedding-cache stripe count.",
            Gauge,
            stats.cache_stripes as f64,
        ),
        scalar(
            "ccsa_encode_shards",
            "Encode shards currently materialised.",
            Gauge,
            stats.shard_count as f64,
        ),
        scalar(
            "ccsa_encode_batches_total",
            "Fused encoder forward passes executed.",
            Counter,
            stats.batch.batches as f64,
        ),
        scalar(
            "ccsa_encode_jobs_total",
            "Trees encoded.",
            Counter,
            stats.batch.jobs as f64,
        ),
        scalar(
            "ccsa_encode_steals_total",
            "Batches taken by a worker from a non-preferred shard.",
            Counter,
            stats.batch.steals as f64,
        ),
        scalar(
            "ccsa_fused_levels_total",
            "Fused level matmuls executed across all forward passes.",
            Counter,
            stats.batch.fused_levels as f64,
        ),
        scalar(
            "ccsa_fused_rows_total",
            "Node rows covered by fused level matmuls.",
            Counter,
            stats.batch.fused_rows as f64,
        ),
        scalar(
            "ccsa_fused_width_mean",
            "Mean node rows per fused level matmul.",
            Gauge,
            stats.batch.mean_fused_width(),
        ),
    ];

    // The precision is exposed Prometheus-style: a constant-1 info
    // gauge whose label carries the value, so dashboards can join on
    // it without parsing strings out of sample values.
    let precision = stats.cache_precision.to_string();
    out.push(SampleFamily::new(
        "ccsa_cache_precision_info",
        "Storage precision of cached latent codes (label `precision`).",
        Gauge,
        vec![Sample::new(&[("precision", precision.as_str())], 1.0)],
    ));

    // Per-stripe cache counters: the aggregate is the label-sum, so a
    // hot stripe is visible without a second metric family.
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    let mut evictions = Vec::new();
    let mut entries = Vec::new();
    let mut bytes = Vec::new();
    for (ix, (s, len, stripe_bytes)) in stats.stripe_cache.iter().enumerate() {
        let stripe = ix.to_string();
        let labels = [("stripe", stripe.as_str())];
        hits.push(Sample::new(&labels, s.hits as f64));
        misses.push(Sample::new(&labels, s.misses as f64));
        evictions.push(Sample::new(&labels, s.evictions as f64));
        entries.push(Sample::new(&labels, *len as f64));
        bytes.push(Sample::new(&labels, *stripe_bytes as f64));
    }
    out.push(SampleFamily::new(
        "ccsa_cache_hits_total",
        "Embedding-cache hits, per stripe.",
        Counter,
        hits,
    ));
    out.push(SampleFamily::new(
        "ccsa_cache_misses_total",
        "Embedding-cache misses, per stripe.",
        Counter,
        misses,
    ));
    out.push(SampleFamily::new(
        "ccsa_cache_evictions_total",
        "Embedding-cache evictions, per stripe.",
        Counter,
        evictions,
    ));
    out.push(SampleFamily::new(
        "ccsa_cache_entries",
        "Cached latent codes currently held, per stripe.",
        Gauge,
        entries,
    ));
    out.push(SampleFamily::new(
        "ccsa_cache_bytes",
        "Payload bytes of cached codes at rest, per stripe (the \
         quantization win shows up here: f16 halves it, int8 quarters \
         it, at the same entry count).",
        Gauge,
        bytes,
    ));

    // Per-registration cache attribution (A/B arms separately).
    let mut model_hits = Vec::new();
    let mut model_misses = Vec::new();
    for m in &stats.model_cache {
        let version = m.version.to_string();
        let labels = [("model", m.model.as_str()), ("version", version.as_str())];
        model_hits.push(Sample::new(&labels, m.hits as f64));
        model_misses.push(Sample::new(&labels, m.misses as f64));
    }
    out.push(SampleFamily::new(
        "ccsa_model_cache_hits_total",
        "Embedding-cache hits attributed to a model registration.",
        Counter,
        model_hits,
    ));
    out.push(SampleFamily::new(
        "ccsa_model_cache_misses_total",
        "Embedding-cache misses attributed to a model registration.",
        Counter,
        model_misses,
    ));

    // Tensor buffer pool: steady state is hits ≫ misses with stable
    // tier gauges; rising misses mean the pool tiers are too small for
    // the live batch shapes.
    out.push(SampleFamily::new(
        "ccsa_pool_hits_total",
        "Buffer-pool takes served from a free list, by tier.",
        Counter,
        vec![
            Sample::new(&[("tier", "local")], stats.pool.local_hits as f64),
            Sample::new(&[("tier", "shared")], stats.pool.shared_hits as f64),
        ],
    ));
    out.push(SampleFamily::new(
        "ccsa_pool_misses_total",
        "Buffer-pool takes that fell through to the global allocator.",
        Counter,
        vec![Sample::value(stats.pool.misses as f64)],
    ));
    out.push(SampleFamily::new(
        "ccsa_pool_buffers",
        "Buffers currently parked for reuse, by tier.",
        Gauge,
        vec![
            Sample::new(&[("tier", "local")], stats.pool.local_buffers as f64),
            Sample::new(&[("tier", "shared")], stats.pool.shared_buffers as f64),
        ],
    ));
    out.push(SampleFamily::new(
        "ccsa_pool_bytes",
        "Capacity bytes parked for reuse, by tier.",
        Gauge,
        vec![
            Sample::new(&[("tier", "local")], stats.pool.local_bytes as f64),
            Sample::new(&[("tier", "shared")], stats.pool.shared_bytes as f64),
        ],
    ));

    // Per-shard admission backpressure, the signal transports shed on.
    out.push(SampleFamily::new(
        "ccsa_encode_queue_depth",
        "Trees waiting in an encode shard's queue right now.",
        Gauge,
        stats
            .queue_depths
            .iter()
            .map(|(shard, depth)| Sample::new(&[("shard", shard.as_str())], *depth as f64))
            .collect(),
    ));
    out
}

/// A content digest of a model's weights (FNV-1a over parameter names,
/// shapes and raw f32 bits). Stamped into cache snapshots so a snapshot
/// can only ever warm the exact weights that produced it — unlike the
/// [`model_salt`], this is stable across processes and registrations.
fn model_digest(model: &ServeModel) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    for (name, tensor) in model.model.params.iter() {
        h.write(name.as_bytes());
        for &d in tensor.shape().dims() {
            h.write(&(d as u64).to_le_bytes());
        }
        for &v in tensor.as_slice() {
            h.write(&v.to_le_bytes());
        }
    }
    h.finish()
}

/// A per-registration salt folded into cache keys so no two model
/// instances ever share embedding slots — not different (name, version)
/// coordinates, and not two registrations replacing each other at the
/// same coordinate (the [`ServeModel::uid`] is process-unique).
fn model_salt(model: &ServeModel) -> u64 {
    crate::hash::splitmix64(model.uid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_model::comparator::{Comparator, EncoderConfig};
    use ccsa_model::pipeline::TrainedModel;
    use ccsa_nn::param::Params;
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> TrainedModel {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
        TrainedModel { comparator, params }
    }

    fn engine(cache_capacity: usize) -> ServeEngine {
        engine_with_precision(cache_capacity, CachePrecision::F32)
    }

    fn engine_with_precision(cache_capacity: usize, precision: CachePrecision) -> ServeEngine {
        ServeEngine::with_model(
            tiny_model(1),
            &ServeConfig {
                cache_capacity,
                cache_stripes: 0,
                cache_precision: precision,
                batch: BatchConfig {
                    workers: 2,
                    max_batch: 8,
                    ..BatchConfig::default()
                },
            },
        )
    }

    const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
    const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                        for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                        cout << s; return 0; }";
    const MID: &str = "int main() { int n; cin >> n; long long s = 0; \
                       for (int i = 0; i < n; i++) s += i; cout << s; return 0; }";

    #[test]
    fn cached_and_uncached_scores_are_identical() {
        let with_cache = engine(64);
        let without_cache = engine(0);
        let direct = tiny_model(1);
        let a = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(SLOW).unwrap(),
        ));
        let b = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(FAST).unwrap(),
        ));
        let reference = direct.compare_graphs(&a, &b).prob_first_slower;

        let sel = ModelSelector::default();
        // Twice through the cached engine: miss pass, then hit pass.
        let cold = with_cache.compare(&sel, SLOW, FAST).unwrap();
        let warm = with_cache.compare(&sel, SLOW, FAST).unwrap();
        let uncached = without_cache.compare(&sel, SLOW, FAST).unwrap();

        assert_eq!(cold.prob_first_slower, reference);
        assert_eq!(warm.prob_first_slower, reference);
        assert_eq!(uncached.prob_first_slower, reference);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(warm.cache_hits, 2);
        assert_eq!(uncached.cache_hits, 0);
    }

    #[test]
    fn striped_engine_matches_global_lock_engine_bitwise() {
        // The sharding refactor is a locking change, not a numeric one:
        // an engine with 1 cache stripe + the single-queue pool (the old
        // global-lock layout) and an engine with striped cache + per-
        // model shards must produce bit-identical probabilities for the
        // same request stream, cold and warm.
        use crate::batch::PoolSharding;
        let global = ServeEngine::with_model(
            tiny_model(1),
            &ServeConfig {
                cache_capacity: 64,
                cache_stripes: 1,
                cache_precision: CachePrecision::F32,
                batch: BatchConfig {
                    workers: 2,
                    max_batch: 8,
                    sharding: PoolSharding::Single,
                    ..BatchConfig::default()
                },
            },
        );
        let striped = engine(64); // default stripes, per-model shards
        let sel = ModelSelector::default();
        for _pass in 0..2 {
            for (a, b) in [(SLOW, FAST), (FAST, MID), (MID, SLOW), (SLOW, SLOW)] {
                let pg = global.compare(&sel, a, b).unwrap();
                let ps = striped.compare(&sel, a, b).unwrap();
                assert_eq!(pg.prob_first_slower, ps.prob_first_slower);
                assert_eq!(pg.cache_hits, ps.cache_hits);
            }
        }
        // The new observability surface reports the sharded layout.
        let s = striped.stats();
        assert!(s.cache_stripes >= 1);
        assert_eq!(s.shard_count, 1);
        assert_eq!(s.queue_depths, vec![("default@v1".to_string(), 0)]);
        let g = global.stats();
        assert_eq!(g.cache_stripes, 1);
        assert_eq!(g.queue_depths, vec![("all".to_string(), 0)]);
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let e = engine(64);
        let sel = ModelSelector::default();
        e.compare(&sel, SLOW, FAST).unwrap(); // 2 misses
        e.compare(&sel, SLOW, FAST).unwrap(); // 2 hits
        let third = e.compare(&sel, SLOW, MID).unwrap(); // 1 hit, 1 miss
        assert_eq!(third.cache_hits, 1);
        let stats = e.stats();
        assert_eq!(stats.cache.hits, 3);
        assert_eq!(stats.cache.misses, 3);
        assert_eq!(stats.cache_len, 3);
        assert_eq!(stats.compares, 3);
        assert_eq!(stats.parses, 6);
    }

    #[test]
    fn structural_identity_shares_cache_slots() {
        // Identifier renames and literal changes flatten to the same
        // graph, so the second compare is served fully from cache.
        let e = engine(64);
        let sel = ModelSelector::default();
        e.compare(
            &sel,
            "int main() { int alpha = 3; return alpha; }",
            "int main() { for (int i = 0; i < 5; i++) { } return 0; }",
        )
        .unwrap();
        let renamed = e
            .compare(
                &sel,
                "int main() { int beta = 7; return beta; }",
                "int main() { for (int j = 0; j < 9; j++) { } return 1; }",
            )
            .unwrap();
        assert_eq!(renamed.cache_hits, 2);
    }

    #[test]
    fn rank_deduplicates_and_orders() {
        let e = engine(64);
        let sel = ModelSelector::default();
        let candidates = [FAST, SLOW, MID, FAST]; // duplicate of FAST
        let outcome = e.rank(&sel, &candidates).unwrap();
        assert_eq!(outcome.ranking.len(), 4);
        // 4 candidates, but only 3 distinct trees were encoded and the
        // cold cache served none of them.
        assert_eq!(outcome.encoded, 3, "duplicate candidate must not re-encode");
        assert_eq!(outcome.cache_hits, 0);
        // Re-ranking the same candidates is served fully from cache.
        let warm = e.rank(&sel, &candidates).unwrap();
        assert_eq!(warm.encoded, 0);
        assert_eq!(warm.cache_hits, 4);
        let stats = e.stats();
        assert_eq!(stats.rankings, 2);
        assert_eq!(stats.compares, 12); // C(4,2) round robin, twice
                                        // Ranks are 1..=4 over all input indices.
        let mut ranks: Vec<usize> = outcome.ranking.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![1, 2, 3, 4]);
        let mut indices: Vec<usize> = outcome.ranking.iter().map(|r| r.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // The duplicated sources must tie exactly in expected wins.
        let dup0 = outcome.ranking.iter().find(|r| r.index == 0).unwrap();
        let dup3 = outcome.ranking.iter().find(|r| r.index == 3).unwrap();
        assert!((dup0.expected_wins - dup3.expected_wins).abs() < 1e-9);
    }

    #[test]
    fn rank_matches_pairwise_compares() {
        // The ranking's pairwise probabilities must agree with compare():
        // same model, same codes, same classifier.
        let e = engine(64);
        let sel = ModelSelector::default();
        let outcome = e.rank(&sel, &[FAST, SLOW]).unwrap();
        let direct = e.compare(&sel, FAST, SLOW).unwrap();
        let fast_entry = outcome.ranking.iter().find(|r| r.index == 0).unwrap();
        // expected_wins of FAST = P(SLOW slower) = 1 - sym(FAST slower).
        let back = e.compare(&sel, SLOW, FAST).unwrap();
        let sym = 0.5 * (direct.prob_first_slower as f64 + (1.0 - back.prob_first_slower as f64));
        assert!((fast_entry.expected_wins - (1.0 - sym)).abs() < 1e-9);
    }

    #[test]
    fn parse_failures_are_typed_and_counted() {
        let e = engine(8);
        let sel = ModelSelector::default();
        let err = e.compare(&sel, "int main() {", FAST).unwrap_err();
        assert!(matches!(err, ServeError::Parse(0, _)));
        let err = e.rank(&sel, &[FAST, "while (", MID]).unwrap_err();
        assert!(matches!(err, ServeError::Parse(1, _)));
        assert!(matches!(
            e.rank(&sel, &[FAST]),
            Err(ServeError::TooFewCandidates(1))
        ));
        assert_eq!(e.stats().parse_failures, 2);
    }

    #[test]
    fn rank_rejects_oversized_candidate_lists() {
        // The K² tournament is bounded: an untrusted request with huge K
        // must be refused up front, before any parsing or allocation.
        let e = engine(8);
        let sel = ModelSelector::default();
        let many: Vec<&str> = (0..MAX_RANK_CANDIDATES + 1).map(|_| FAST).collect();
        assert!(matches!(
            e.rank(&sel, &many),
            Err(ServeError::TooManyCandidates(n)) if n == MAX_RANK_CANDIDATES + 1
        ));
        assert_eq!(e.stats().parses, 0, "no parsing before the cap check");
    }

    #[test]
    fn corrupt_model_fails_requests_without_killing_the_engine() {
        // A model whose weights are inconsistent with its architecture
        // panics in the encoder; the engine must turn that into a typed
        // error and keep serving healthy models.
        let e = engine(16);
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut scratch = Params::new();
        let comparator = Comparator::new(&config, &mut scratch, &mut StdRng::seed_from_u64(2));
        e.register(
            "corrupt",
            1,
            TrainedModel {
                comparator,
                params: Params::new(),
            },
        );
        let bad_sel = ModelSelector {
            name: Some("corrupt".into()),
            version: None,
        };
        assert!(matches!(
            e.compare(&bad_sel, SLOW, FAST),
            Err(ServeError::Encode(_))
        ));
        // The default model still works on the same engine/pool.
        let p = e
            .compare(&ModelSelector::default(), SLOW, FAST)
            .unwrap()
            .prob_first_slower;
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn unknown_model_is_a_registry_error() {
        let e = engine(8);
        let sel = ModelSelector {
            name: Some("missing".into()),
            version: None,
        };
        assert!(matches!(
            e.compare(&sel, FAST, SLOW),
            Err(ServeError::Registry(RegistryError::UnknownModel(_)))
        ));
    }

    #[test]
    fn hot_swapping_a_version_never_serves_stale_codes() {
        // Fill the cache under (default, v1), then replace that exact
        // coordinate with different weights: the next compare must match
        // the *new* model's direct prediction, not a cached embedding
        // from the old one (cache keys are salted by registration uid).
        let e = engine(64);
        let sel = ModelSelector::default();
        let old_p = e.compare(&sel, SLOW, FAST).unwrap().prob_first_slower;
        let _warm = e.compare(&sel, SLOW, FAST).unwrap(); // cached under old uid

        e.register(crate::registry::DEFAULT_MODEL, 1, tiny_model(7));
        let swapped = e.compare(&sel, SLOW, FAST).unwrap();
        let direct_new = tiny_model(7);
        let a = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(SLOW).unwrap(),
        ));
        let b = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(FAST).unwrap(),
        ));
        let expected = direct_new.compare_graphs(&a, &b).prob_first_slower;
        assert_eq!(swapped.prob_first_slower, expected);
        assert_ne!(
            swapped.prob_first_slower, old_p,
            "stale weights were served"
        );
        assert_eq!(
            swapped.cache_hits, 0,
            "old registration's codes must not hit"
        );
    }

    #[test]
    fn hot_swapping_twice_returns_shard_count_to_steady_state() {
        // Each swap retires the previous registration; its drained encode
        // shard must be collected, not accumulate — two swaps with
        // traffic in between land back at one shard, not three.
        let e = engine(64);
        let sel = ModelSelector::default();
        let _ = e.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(e.stats().shard_count, 1);

        e.register(crate::registry::DEFAULT_MODEL, 1, tiny_model(31));
        let _ = e.compare(&sel, SLOW, FAST).unwrap();
        e.register(crate::registry::DEFAULT_MODEL, 1, tiny_model(32));
        let _ = e.compare(&sel, SLOW, FAST).unwrap();

        // The swapped-out shards are empty (compare blocks until its
        // encodes finish), so the sweep at the *next* registration drops
        // them; assert the table is back at steady state afterwards.
        e.register("other", 1, tiny_model(33));
        let stats = e.stats();
        assert_eq!(
            stats.shard_count, 1,
            "hot-swap leftovers survived GC: {:?}",
            stats.queue_depths
        );
    }

    #[test]
    fn models_do_not_share_cache_entries() {
        // Same source under two models must produce each model's own
        // probability even with the cache shared between them.
        let e = engine(64);
        e.register("other", 1, tiny_model(2));
        let sel_default = ModelSelector::default();
        let sel_other = ModelSelector {
            name: Some("other".into()),
            version: None,
        };
        let p_default = e
            .compare(&sel_default, SLOW, FAST)
            .unwrap()
            .prob_first_slower;
        let p_other = e.compare(&sel_other, SLOW, FAST).unwrap().prob_first_slower;
        let direct_other = tiny_model(2);
        let a = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(SLOW).unwrap(),
        ));
        let b = Arc::new(AstGraph::from_program(
            &ccsa_cppast::parse_program(FAST).unwrap(),
        ));
        assert_eq!(
            p_other,
            direct_other.compare_graphs(&a, &b).prob_first_slower
        );
        assert_ne!(
            p_default, p_other,
            "different weights must score differently"
        );
    }

    #[test]
    fn cache_snapshot_warms_a_restarted_engine() {
        // "Restart": two engines with the same weights but distinct
        // registrations (distinct uids → distinct salts). A snapshot from
        // the first must warm the second: first compare all hits, scores
        // bit-identical.
        let dir = std::env::temp_dir().join(format!(
            "ccsa-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.ccsc");
        let sel = ModelSelector::default();

        let before = engine(64);
        let cold = before.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(before.snapshot_cache(&sel, &path).unwrap(), 2);

        let after = engine(64); // same tiny_model(1) weights, new uid
        assert_eq!(after.warm_cache(&sel, &path).unwrap(), 2);
        let warm = after.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(warm.cache_hits, 2, "warm start must hit immediately");
        assert_eq!(warm.prob_first_slower, cold.prob_first_slower);
        let stats = after.stats();
        assert_eq!(stats.batch.jobs, 0, "nothing should have been encoded");
        // Per-model attribution saw 2 hits, 0 misses.
        assert_eq!(stats.model_cache.len(), 1);
        assert_eq!(stats.model_cache[0].hits, 2);
        assert_eq!(stats.model_cache[0].misses, 0);
        assert_eq!(stats.model_cache[0].hit_rate(), 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_rejects_snapshots_from_different_weights() {
        // tiny_model(1) spilled, tiny_model(9) warming: the digest check
        // must refuse — otherwise the new model would serve the old
        // model's embeddings.
        let dir = std::env::temp_dir().join(format!(
            "ccsa-warm-reject-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.ccsc");
        let sel = ModelSelector::default();

        let old = engine(64);
        old.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(old.snapshot_cache(&sel, &path).unwrap(), 2);

        let retrained = ServeEngine::with_model(
            tiny_model(9),
            &ServeConfig {
                cache_capacity: 64,
                cache_stripes: 0,
                cache_precision: CachePrecision::F32,
                batch: BatchConfig {
                    workers: 2,
                    max_batch: 8,
                    ..BatchConfig::default()
                },
            },
        );
        assert!(matches!(
            retrained.warm_cache(&sel, &path),
            Err(ServeError::Cache(SnapshotError::WrongModel { .. }))
        ));
        // Nothing leaked into the cache; the first compare is cold.
        let cold = retrained.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_reports_missing_file_as_error() {
        let e = engine(8);
        assert!(matches!(
            e.warm_cache(
                &ModelSelector::default(),
                Path::new("/nonexistent/ccsa-cache.ccsc")
            ),
            Err(ServeError::Cache(SnapshotError::Io(_)))
        ));
    }

    #[test]
    fn quantized_cache_pins_probability_drift_and_rank_agreement() {
        // The accuracy contract for narrow cache precisions: the cold
        // path (fresh encodes) is bit-identical to f32, the warm path
        // (dequantized codes) drifts by at most the quantization bound,
        // and rank decisions agree with the f32 engine.
        let sel = ModelSelector::default();
        let baseline = engine(64);
        let pairs = [(SLOW, FAST), (FAST, MID), (MID, SLOW)];
        for (a, b) in pairs {
            baseline.compare(&sel, a, b).unwrap(); // warm the f32 cache
        }
        let reference: Vec<f32> = pairs
            .iter()
            .map(|&(a, b)| baseline.compare(&sel, a, b).unwrap().prob_first_slower)
            .collect();
        let base_order: Vec<usize> = baseline
            .rank(&sel, &[FAST, MID, SLOW])
            .unwrap()
            .ranking
            .iter()
            .map(|r| r.index)
            .collect();

        for (precision, bound) in [
            (CachePrecision::F16, 1e-3f32),
            (CachePrecision::Int8, 2e-2f32),
        ] {
            // A fresh engine per pair keeps the cold pass genuinely
            // cold (pairs share sources, so one engine would hit).
            for (&(a, b), &want) in pairs.iter().zip(&reference) {
                let e = engine_with_precision(64, precision);
                // Cold: misses are scored from the freshly encoded f32
                // codes, so quantization cannot perturb a first touch.
                let cold = e.compare(&sel, a, b).unwrap();
                assert_eq!(cold.cache_hits, 0);
                assert_eq!(
                    cold.prob_first_slower, want,
                    "{precision} cold path must match f32 bitwise"
                );
                // Warm: codes come back dequantized; drift is bounded.
                let warm = e.compare(&sel, a, b).unwrap();
                assert_eq!(warm.cache_hits, 2);
                let drift = (warm.prob_first_slower - want).abs();
                assert!(
                    drift <= bound,
                    "{precision} warm drift {drift} exceeds bound {bound}"
                );
            }
            // The ranking verb reaches the same fastest-first order
            // from fully quantized (warm) codes.
            let e = engine_with_precision(64, precision);
            e.rank(&sel, &[FAST, MID, SLOW]).unwrap(); // warm the cache
            let order: Vec<usize> = e
                .rank(&sel, &[FAST, MID, SLOW])
                .unwrap()
                .ranking
                .iter()
                .map(|r| r.index)
                .collect();
            assert_eq!(order, base_order, "{precision} rank decision changed");
        }
    }

    #[test]
    fn engine_snapshots_carry_precision_and_refuse_cross_precision_warm() {
        let dir = std::env::temp_dir().join(format!(
            "ccsa-warm-precision-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.ccsc");
        let sel = ModelSelector::default();

        let f16 = engine_with_precision(64, CachePrecision::F16);
        let cold = f16.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(f16.snapshot_cache(&sel, &path).unwrap(), 2);
        assert_eq!(f16.stats().cache_precision, CachePrecision::F16);
        assert!(f16.stats().cache_bytes > 0);

        // Same precision warms; probabilities match the restored codes'
        // dequantized values exactly (snapshots are bit-exact at rest).
        let twin = engine_with_precision(64, CachePrecision::F16);
        assert_eq!(twin.warm_cache(&sel, &path).unwrap(), 2);
        let warm = twin.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(warm.cache_hits, 2);
        let f16_warm = f16.compare(&sel, SLOW, FAST).unwrap();
        assert_eq!(warm.prob_first_slower, f16_warm.prob_first_slower);
        // Cold (fresh-encode) and warm (dequantized) may differ — but
        // only inside the f16 error envelope.
        assert!((warm.prob_first_slower - cold.prob_first_slower).abs() <= 1e-3);

        // A different precision refuses the snapshot and stays empty.
        let wide = engine(64);
        assert!(matches!(
            wide.warm_cache(&sel, &path),
            Err(ServeError::Cache(SnapshotError::PrecisionMismatch {
                snapshot: CachePrecision::F16,
                cache: CachePrecision::F32,
            }))
        ));
        assert_eq!(wide.compare(&sel, SLOW, FAST).unwrap().cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_requests_split_stage_timings() {
        let e = engine(64);
        let sel = ModelSelector::default();
        let (outcomes, cold) = e.compare_batch_traced(&sel, &[(SLOW, FAST)]).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(cold.encode_s > 0.0, "cold request must really encode");
        assert!(cold.total_s() >= cold.parse_s + cold.encode_s);
        // Fully warm: nothing reaches the encoder, so that stage is
        // exactly zero rather than merely small.
        let (_, warm) = e.compare_batch_traced(&sel, &[(SLOW, FAST)]).unwrap();
        assert_eq!(warm.encode_s, 0.0);
        let (ranked, stages) = e.rank_traced(&sel, &[FAST, SLOW, MID]).unwrap();
        assert_eq!(ranked.ranking.len(), 3);
        assert!(stages.classify_s > 0.0);
    }

    #[test]
    fn stats_stripe_breakdown_sums_to_aggregate() {
        let e = engine(64);
        let sel = ModelSelector::default();
        e.compare(&sel, SLOW, FAST).unwrap();
        e.compare(&sel, SLOW, MID).unwrap();
        let s = e.stats();
        assert_eq!(s.stripe_cache.len(), s.cache_stripes);
        let hits: u64 = s.stripe_cache.iter().map(|(c, _, _)| c.hits).sum();
        let misses: u64 = s.stripe_cache.iter().map(|(c, _, _)| c.misses).sum();
        let len: usize = s.stripe_cache.iter().map(|(_, l, _)| l).sum();
        let bytes: usize = s.stripe_cache.iter().map(|(_, _, b)| b).sum();
        assert_eq!(hits, s.cache.hits);
        assert_eq!(misses, s.cache.misses);
        assert_eq!(len, s.cache_len);
        assert_eq!(bytes, s.cache_bytes);
        assert!(s.cache_bytes > 0, "two cached codes must occupy bytes");
        assert!(s.uptime_seconds >= 0.0);
    }

    #[test]
    fn attached_registry_scrapes_the_same_numbers_as_stats() {
        let e = Arc::new(engine(64));
        let registry = crate::metrics::MetricsRegistry::new();
        e.attach_metrics(&registry);
        let sel = ModelSelector::default();
        e.compare(&sel, SLOW, FAST).unwrap();
        e.rank(&sel, &[FAST, SLOW, MID]).unwrap();

        let text = registry.render();
        // Every engine family (plus the registry built-ins and stage
        // histograms) is present on one scrape.
        for family in [
            "ccsa_compares_total",
            "ccsa_rankings_total",
            "ccsa_parses_total",
            "ccsa_parse_failures_total",
            "ccsa_cache_hits_total",
            "ccsa_cache_misses_total",
            "ccsa_cache_evictions_total",
            "ccsa_cache_entries",
            "ccsa_cache_stripes",
            "ccsa_model_cache_hits_total",
            "ccsa_model_cache_misses_total",
            "ccsa_encode_queue_depth",
            "ccsa_encode_shards",
            "ccsa_encode_batches_total",
            "ccsa_encode_jobs_total",
            "ccsa_encode_steals_total",
            "ccsa_fused_levels_total",
            "ccsa_fused_rows_total",
            "ccsa_fused_width_mean",
            "ccsa_stage_duration_seconds",
            "ccsa_uptime_seconds",
            "ccsa_build_info",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} missing from scrape:\n{text}"
            );
        }
        // Single source of truth: the scrape shows the exact counters
        // the stats verb reads (4 pairs compared: 1 + C(3,2)).
        let stats = e.stats();
        assert_eq!(stats.compares, 4);
        assert!(text.contains(&format!("ccsa_compares_total {}", stats.compares)));
        assert!(text.contains(&format!("ccsa_rankings_total {}", stats.rankings)));
        assert!(text.contains(&format!("ccsa_parses_total {}", stats.parses)));
        // Stage histograms observed one count per request.
        assert!(text.contains("ccsa_stage_duration_seconds_count{stage=\"parse\"} 2"));
        assert!(text.contains("ccsa_stage_duration_seconds_count{stage=\"encode\"} 2"));
        // Per-model attribution is labelled by coordinate.
        assert!(text.contains("ccsa_model_cache_hits_total{model=\"default\",version=\"1\"}"));
    }

    #[test]
    fn dropping_the_engine_empties_its_collector() {
        // The collector holds a Weak engine reference: once the engine
        // is gone the scrape must not keep it alive or panic.
        let registry = crate::metrics::MetricsRegistry::new();
        let e = Arc::new(engine(8));
        e.attach_metrics(&registry);
        assert!(registry.render().contains("# TYPE ccsa_compares_total"));
        drop(e);
        let text = registry.render();
        assert!(!text.contains("ccsa_compares_total"));
        assert!(text.contains("ccsa_uptime_seconds"), "built-ins survive");
    }

    #[test]
    fn batch_compare_scores_all_pairs() {
        let e = engine(64);
        let sel = ModelSelector::default();
        let outcomes = e
            .compare_batch(&sel, &[(SLOW, FAST), (FAST, SLOW), (MID, MID)])
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        // Antisymmetric inputs give complementary-ish outputs from the
        // same codes; identical inputs give a well-defined probability.
        let direct = e.compare(&sel, SLOW, FAST).unwrap().prob_first_slower;
        assert_eq!(outcomes[0].prob_first_slower, direct);
        assert!((0.0..=1.0).contains(&outcomes[2].prob_first_slower));
    }
}
