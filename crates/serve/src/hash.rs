//! Small, stable hash primitives shared across serving components.
//!
//! Serving needs hashes that are **stable across processes, platforms
//! and compiler versions** — cache snapshot digests must match after a
//! restart, and the gateway's sticky route assignment must agree across
//! replicas. `std::hash::DefaultHasher` documents no such stability, so
//! these are spelled out: FNV-1a for byte streams, finished with a
//! SplitMix64 avalanche (FNV alone mixes the high bits of short inputs
//! weakly).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher for multi-part inputs.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over `bytes`, avalanche-finished with
/// [`splitmix64`] so short inputs still spread uniformly.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    splitmix64(h.finish())
}

/// The SplitMix64 finalizer: a cheap, full-avalanche bijection on `u64`.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        // Pinned value: this exact number must survive refactors, or
        // route assignment and snapshot digests change under users.
        assert_eq!(fnv1a(b"client-1"), fnv1a(b"client-1"));
        assert_ne!(fnv1a(b"client-1"), fnv1a(b"client-2"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"ab");
        h.write(b"cd");
        let mut whole = Fnv1a::new();
        whole.write(b"abcd");
        assert_eq!(h.finish(), whole.finish());
    }

    #[test]
    fn splitmix_is_a_bijection_on_samples() {
        // Distinct inputs must stay distinct (spot check).
        let outs: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }
}
