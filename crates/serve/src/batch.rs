//! Sharded micro-batching encode queues over a persistent worker pool.
//!
//! Serving's hot cost is the encoder forward pass. Rather than encoding
//! each request's trees ad hoc on the caller's thread, every pending tree
//! becomes a job in a queue; workers drain queues in *batches* (up to
//! [`BatchConfig::max_batch`] consecutive jobs for the same model) and
//! run one batched forward pass per batch via
//! [`Comparator::encode_codes`](ccsa_model::comparator::Comparator::encode_codes),
//! which binds model parameters to a single tape for the whole batch.
//!
//! # Sharding
//!
//! The queue is *sharded per registered model* (default,
//! [`PoolSharding::PerModel`]): each (name, version) registration gets
//! its own bounded sub-queue, keyed by the registration's process-unique
//! uid, created lazily on its first encode. Shard `i` is *preferred* by
//! worker `i % workers`; an idle worker first drains its preferred
//! shards (round-robin, so one busy shard cannot monopolise it), then
//! **steals** from any other non-empty shard. The effect:
//!
//! * enqueueing locks only the target model's shard — concurrent
//!   requests for different models never contend on one global mutex;
//! * a hot A/B arm can no longer starve the others: the cold arm's
//!   shard is visited every scan rotation instead of its jobs queueing
//!   behind the hot arm's backlog in FIFO order;
//! * batches trivially never mix models (a shard holds one model's
//!   jobs), preserving the one-parameter-set-per-pass invariant.
//!
//! [`PoolSharding::Single`] keeps the old single-FIFO behaviour (all
//! models in one shard, same-model runs batched) — the contention
//! baseline the `shard_contention` bench measures against.
//!
//! Each shard is bounded ([`BatchConfig::shard_capacity`]): a request
//! that would push a shard past its capacity is refused up front with a
//! typed error instead of growing the queue without limit — admission
//! backpressure is enforced per shard, so one flooded model sheds its
//! own traffic while the other shards keep admitting.
//!
//! Results return to callers over per-request channels, so a caller
//! blocks only on its own trees, never on the whole queue. Encoder
//! panics are caught per batch (`catch_unwind`), failing only that
//! batch's callers — per shard, exactly as the unsharded pool did
//! globally.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use crate::lockdep::{DMutex, DRwLock};
use std::thread::JoinHandle;

use ccsa_cppast::AstGraph;
use ccsa_tensor::Tensor;

use crate::registry::ServeModel;

/// How the encode queue is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSharding {
    /// One bounded sub-queue per registered model (by registration uid):
    /// the contention-free default.
    PerModel,
    /// One queue for everything — the pre-sharding behaviour, kept as a
    /// measurable baseline and for single-model embedders.
    Single,
}

/// Worker-pool shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Encoder worker threads.
    pub workers: usize,
    /// Maximum trees fused into one forward pass.
    pub max_batch: usize,
    /// Queue sharding mode.
    pub sharding: PoolSharding,
    /// Per-shard pending-job bound (0 = unbounded). A request that
    /// would overflow its model's shard is refused with a typed error —
    /// the admission backpressure limit.
    pub shard_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: ccsa_nn::parallel::default_threads(),
            max_batch: 16,
            sharding: PoolSharding::PerModel,
            shard_capacity: 4096,
        }
    }
}

/// Pool observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Forward passes executed.
    pub batches: u64,
    /// Trees encoded.
    pub jobs: u64,
    /// Fused level matmuls executed across all forward passes.
    pub fused_levels: u64,
    /// Node rows those fused level matmuls covered.
    pub fused_rows: u64,
    /// Batches taken by a worker from a shard it does not prefer — the
    /// work-stealing traffic that keeps cold shards from starving.
    pub steals: u64,
}

impl BatchStats {
    /// Mean trees per forward pass (0 when idle).
    ///
    /// Counts *trees*, not work: a 1-tree flush of a deep tree and an
    /// 8-tree flush of shallow ones can cost the same. The tensor-level
    /// signal is [`BatchStats::mean_fused_width`], which reports how wide
    /// the fused per-level matmuls actually ran.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }

    /// Mean node rows per fused level matmul (0 when idle) — the true
    /// fused width the level-scheduled encoder achieved. Cross-tree
    /// fusion shows up here: the same trees encoded in one pass instead
    /// of eight produce proportionally wider levels.
    pub fn mean_fused_width(&self) -> f64 {
        if self.fused_levels == 0 {
            0.0
        } else {
            self.fused_rows as f64 / self.fused_levels as f64
        }
    }
}

struct Job {
    model: Arc<ServeModel>,
    graph: Arc<AstGraph>,
    index: usize,
    tx: mpsc::Sender<(usize, Result<Tensor, String>)>,
}

/// One bounded sub-queue. In [`PoolSharding::PerModel`] mode a shard
/// holds exactly one registration's jobs; in `Single` mode shard 0
/// holds everything.
struct Shard {
    /// `name@vN` of the owning registration (`all` in `Single` mode).
    label: String,
    /// Position in the shard table; `index % workers` is the preferred
    /// worker.
    index: usize,
    queue: DMutex<VecDeque<Job>>,
    /// Pending jobs, maintained outside the queue mutex so scans and
    /// admission checks are lock-free. Incremented *before* the push
    /// (admission reserves the slots), decremented as jobs are popped.
    depth: AtomicUsize,
    /// Batches non-preferred workers took from this shard.
    steals: AtomicU64,
    /// Tombstone set by [`EncodePool::prune_retired`] just before the
    /// shard leaves the table. An enqueuer that raced the prune (it
    /// resolved this shard before the sweep) observes the flag after
    /// reserving its slots and re-resolves instead of queueing jobs no
    /// worker will ever scan again.
    retired: AtomicBool,
}

/// Grows lazily as models encode; [`EncodePool::prune_retired`] sweeps
/// out shards whose registration uid the registry no longer reports
/// (hot-swap leftovers), once drained — so the table tracks the set of
/// live registrations instead of growing monotonically across swaps.
#[derive(Default)]
struct ShardTable {
    shards: Vec<Arc<Shard>>,
    by_uid: HashMap<u64, usize>,
}

struct Shared {
    shards: DRwLock<ShardTable>,
    /// `Single` mode has exactly one shard that every worker legitimately
    /// drains — taking from it is not stealing, so the steal pass and its
    /// counters are disabled there.
    single: bool,
    /// Parking lot for idle workers. The mutex guards nothing but the
    /// condvar protocol; enqueuers skip it entirely unless `sleepers`
    /// says someone is actually waiting, so the hot enqueue path never
    /// touches a global lock.
    park: Mutex<()>,
    available: Condvar,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    batches: AtomicU64,
    jobs: AtomicU64,
    fused_levels: AtomicU64,
    fused_rows: AtomicU64,
    steals: AtomicU64,
}

impl Shared {
    /// Any shard with pending jobs? (Lock-free scan of depth gauges;
    /// SeqCst loads pair with the enqueuer's SeqCst reservation, see
    /// the sleep protocol in `worker_loop`.)
    fn has_pending(&self) -> bool {
        self.shards
            .read()
            .expect("shard table poisoned")
            .shards
            .iter()
            .any(|s| s.depth.load(Ordering::SeqCst) > 0) // SeqCst: see doc
    }

    /// Wakes sleeping workers — only takes the park lock when at least
    /// one worker is actually asleep (SeqCst pairs with the sleeper's
    /// depth re-check, so a worker can never sleep through this).
    fn wake(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().expect("park lock poisoned");
            self.available.notify_all();
        }
    }
}

/// The persistent encoder worker pool.
pub struct EncodePool {
    shared: Arc<Shared>,
    max_batch: usize,
    sharding: PoolSharding,
    shard_capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

impl EncodePool {
    /// Spawns `config.workers` threads (at least one).
    pub fn new(config: &BatchConfig) -> EncodePool {
        let shared = Arc::new(Shared {
            shards: DRwLock::new("serve.batch.shards", ShardTable::default()),
            single: config.sharding == PoolSharding::Single,
            park: Mutex::new(()),
            available: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            fused_levels: AtomicU64::new(0),
            fused_rows: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let max_batch = config.max_batch.max(1);
        let worker_count = config.workers.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccsa-encode-{i}"))
                    .spawn(move || worker_loop(&shared, i, worker_count, max_batch))
                    .expect("failed to spawn encode worker")
            })
            .collect();
        EncodePool {
            shared,
            max_batch,
            sharding: config.sharding,
            shard_capacity: config.shard_capacity,
            workers,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The sharding mode.
    pub fn sharding(&self) -> PoolSharding {
        self.sharding
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            // Relaxed: independent monotonic counters read at snapshot
            // time; no cross-counter consistency is promised.
            batches: self.shared.batches.load(Ordering::Relaxed),
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            fused_levels: self.shared.fused_levels.load(Ordering::Relaxed),
            fused_rows: self.shared.fused_rows.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
        }
    }

    /// Trees currently waiting across all shards (instantaneous, not a
    /// counter). This is the aggregate admission backpressure signal:
    /// every pending encode across all connections queues here, so a
    /// growing depth means requests arrive faster than the workers
    /// drain them.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .shards
            .read()
            .expect("shard table poisoned")
            .shards
            .iter()
            // SeqCst: same gauge the admission/sleep protocol orders.
            .map(|s| s.depth.load(Ordering::SeqCst))
            .sum()
    }

    /// Pending jobs per shard label (`name@vN`, or `all` in `Single`
    /// mode), aggregated over shards sharing a label (a hot-swapped
    /// coordinate leaves its drained predecessor shard behind) and
    /// sorted by label.
    pub fn shard_depths(&self) -> Vec<(String, usize)> {
        self.shard_snapshot().0
    }

    /// One consistent view of the shard table: per-label pending depths
    /// (as in [`EncodePool::shard_depths`]) plus the materialised shard
    /// count, all under a single table read — so a stats snapshot's
    /// aggregate can never disagree with its own breakdown.
    pub fn shard_snapshot(&self) -> (Vec<(String, usize)>, usize) {
        let table = self.shared.shards.read().expect("shard table poisoned");
        let mut by_label: HashMap<&str, usize> = HashMap::new();
        for shard in &table.shards {
            // SeqCst: same gauge the admission/sleep protocol orders.
            *by_label.entry(shard.label.as_str()).or_default() +=
                shard.depth.load(Ordering::SeqCst);
        }
        let mut depths: Vec<(String, usize)> = by_label
            .into_iter()
            .map(|(label, depth)| (label.to_string(), depth))
            .collect();
        depths.sort();
        (depths, table.shards.len())
    }

    /// Shards currently materialised (lazily, one per model that has
    /// encoded; exactly 1 in `Single` mode).
    pub fn shard_count(&self) -> usize {
        self.shared
            .shards
            .read()
            .expect("shard table poisoned")
            .shards
            .len()
    }

    /// The shard for `model`, creating it on first use.
    fn shard_for(&self, model: &Arc<ServeModel>) -> Arc<Shard> {
        let uid = match self.sharding {
            PoolSharding::PerModel => model.uid(),
            PoolSharding::Single => 0,
        };
        {
            let table = self.shared.shards.read().expect("shard table poisoned");
            if let Some(&ix) = table.by_uid.get(&uid) {
                return Arc::clone(&table.shards[ix]);
            }
        }
        let mut table = self.shared.shards.write().expect("shard table poisoned");
        if let Some(&ix) = table.by_uid.get(&uid) {
            return Arc::clone(&table.shards[ix]);
        }
        let index = table.shards.len();
        let label = match self.sharding {
            PoolSharding::PerModel => format!("{}@v{}", model.name, model.version),
            PoolSharding::Single => "all".to_string(),
        };
        let shard = Arc::new(Shard {
            label,
            index,
            queue: DMutex::new("serve.batch.shard_queue", VecDeque::new()),
            depth: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        });
        table.shards.push(Arc::clone(&shard));
        table.by_uid.insert(uid, index);
        shard
    }

    /// Sweeps out shards whose registration uid is not in `live_uids` —
    /// the GC for hot-swap-orphaned shards. A dead shard still holding
    /// jobs is left to drain (a later sweep collects it); `Single` mode's
    /// one shard is shared by every model and never pruned. Returns how
    /// many shards were dropped.
    ///
    /// Safe against concurrent enqueues: the sweep tombstones a shard
    /// *before* checking its depth, and [`EncodePool::encode`] re-checks
    /// the tombstone after reserving its slots — so either the sweep sees
    /// the reservation and keeps the shard, or the enqueuer sees the
    /// tombstone and re-resolves onto a fresh shard.
    pub fn prune_retired(&self, live_uids: &[u64]) -> usize {
        if self.shared.single {
            return 0;
        }
        let mut table = self.shared.shards.write().expect("shard table poisoned");
        let uid_of: HashMap<usize, u64> =
            table.by_uid.iter().map(|(&uid, &ix)| (ix, uid)).collect();
        let before = table.shards.len();
        let mut shards = Vec::with_capacity(before);
        let mut by_uid = HashMap::with_capacity(before);
        for (ix, shard) in table.shards.iter().enumerate() {
            let uid = uid_of.get(&ix).copied();
            let live = uid.is_some_and(|u| live_uids.contains(&u));
            if !live {
                // Tombstone first, then read the depth: an enqueuer's
                // slot reservation is ordered against this pair (both
                // SeqCst), so a reservation this sweep misses implies the
                // enqueuer observes the tombstone.
                shard.retired.store(true, Ordering::SeqCst);
                // SeqCst: the read half of the pair described above.
                if shard.depth.load(Ordering::SeqCst) == 0 {
                    continue; // dead and drained: dropped
                }
                // SeqCst: still draining — untombstone for enqueuers.
                shard.retired.store(false, Ordering::SeqCst);
            }
            if let Some(uid) = uid {
                by_uid.insert(uid, shards.len());
            }
            shards.push(Arc::clone(shard));
        }
        table.shards = shards;
        table.by_uid = by_uid;
        before - table.shards.len()
    }

    /// Encodes `graphs` under `model`, blocking until every latent code is
    /// ready. Results come back in input order.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when the model's shard is at capacity
    /// (admission backpressure — nothing was enqueued, the caller should
    /// shed or retry) or when the encoder panicked on this batch (e.g. a
    /// corrupt model whose parameter shapes do not match its
    /// architecture). The pool survives either way: subsequent requests
    /// are served normally.
    pub fn encode(
        &self,
        model: &Arc<ServeModel>,
        graphs: &[Arc<AstGraph>],
    ) -> Result<Vec<Tensor>, EncodeError> {
        if graphs.is_empty() {
            return Ok(Vec::new());
        }
        assert!(
            // SeqCst: pairs with Drop's shutdown store.
            !self.shared.shutdown.load(Ordering::SeqCst),
            "encode pool already shut down"
        );
        let n = graphs.len();
        let (tx, rx) = mpsc::channel();
        loop {
            let shard = self.shard_for(model);
            // Admission: reserve the slots before queueing anything, so a
            // request either fits entirely or is refused without partial
            // enqueue. The reservation is visible to scanning workers
            // slightly before the jobs are — they treat a reserved-but-empty
            // queue as "nothing yet" and rescan.
            if self.shard_capacity != 0 && n > self.shard_capacity {
                // Larger than the bound itself: retrying can never help, so
                // say so instead of sending the caller into a retry loop.
                return Err(EncodeError::Shed(format!(
                    "request of {n} trees exceeds the {} encode-shard capacity {} — split it",
                    shard.label, self.shard_capacity
                )));
            }
            // SeqCst: the reservation is ordered against the workers'
            // depth scans, the sleep protocol's sleepers check, and the
            // prune sweep's retired/depth pair.
            let queued = shard.depth.fetch_add(n, Ordering::SeqCst);
            if self.shard_capacity != 0 && queued + n > self.shard_capacity {
                shard.depth.fetch_sub(n, Ordering::SeqCst);
                return Err(EncodeError::Shed(format!(
                    "encode queue for {} is full ({queued} pending, capacity {}) — retry later",
                    shard.label, self.shard_capacity
                )));
            }
            // SeqCst: reads the tombstone the prune sweep stores before
            // its drained check, closing the reserve-vs-retire race.
            if shard.retired.load(Ordering::SeqCst) {
                // Raced a prune sweep: this shard just left the table, so
                // no worker would ever scan these jobs. Release the
                // reservation and re-resolve (the lookup recreates a live
                // shard for this registration).
                shard.depth.fetch_sub(n, Ordering::SeqCst);
                continue;
            }
            {
                let mut queue = shard.queue.lock().expect("shard queue poisoned");
                for (index, graph) in graphs.iter().enumerate() {
                    queue.push_back(Job {
                        model: Arc::clone(model),
                        graph: Arc::clone(graph),
                        index,
                        tx: tx.clone(),
                    });
                }
            }
            break;
        }
        self.shared.wake();
        drop(tx); // workers hold the only remaining senders

        let mut codes: Vec<Option<Tensor>> = vec![None; graphs.len()];
        let mut received = 0;
        while received < graphs.len() {
            let (index, code) = rx.recv().map_err(|_| {
                EncodeError::Failed("encode worker exited before delivering results".into())
            })?;
            let code = code.map_err(EncodeError::Failed)?;
            debug_assert!(codes[index].is_none(), "duplicate result for job {index}");
            codes[index] = Some(code);
            received += 1;
        }
        Ok(codes
            .into_iter()
            .map(|c| c.expect("missing result slot"))
            .collect())
    }
}

/// An encode request failed. The two variants are operationally very
/// different and transports are expected to tell them apart: a shed is
/// intentional backpressure (retryable, or splittable when the request
/// alone exceeds the shard bound), while a failure means the encoder
/// panicked on this batch.
#[derive(Debug, Clone)]
pub enum EncodeError {
    /// Admission refused before anything was enqueued.
    Shed(String),
    /// An encoder forward pass panicked in the worker pool.
    Failed(String),
}

impl EncodeError {
    /// `true` when this was admission backpressure, not a broken model.
    pub fn is_shed(&self) -> bool {
        matches!(self, EncodeError::Shed(_))
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            EncodeError::Shed(m) | EncodeError::Failed(m) => m,
        }
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Shed(m) => write!(f, "encode admission refused: {m}"),
            EncodeError::Failed(m) => write!(f, "encoder failure: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

impl Drop for EncodePool {
    fn drop(&mut self) {
        // SeqCst: workers re-check this flag under the park lock; the
        // store must not reorder past the notify below.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.park.lock().expect("park lock poisoned");
            self.shared.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pops one micro-batch from `shard`: the front job plus up to
/// `max_batch − 1` consecutive jobs for the *same* model instance. In
/// per-model shards the same-model check is vacuous (a shard holds one
/// registration); in `Single` mode it is what keeps parameter sets from
/// mixing within a pass.
fn pop_batch(shard: &Shard, max_batch: usize) -> Vec<Job> {
    let mut queue = shard.queue.lock().expect("shard queue poisoned");
    let mut batch: Vec<Job> = Vec::new();
    while batch.len() < max_batch {
        let same_model = match (queue.front(), batch.first()) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(next), Some(first)) => Arc::ptr_eq(&next.model, &first.model),
        };
        if !same_model {
            break;
        }
        batch.push(queue.pop_front().expect("checked non-empty"));
    }
    drop(queue);
    if !batch.is_empty() {
        // SeqCst: releases the admission reservation taken in encode().
        shard.depth.fetch_sub(batch.len(), Ordering::SeqCst);
    }
    batch
}

/// Finds the next batch for `worker_ix`: preferred shards first
/// (rotating through them from `cursor`, so one busy shard cannot
/// monopolise its worker), then a steal pass over everyone else's.
fn grab_batch(
    shared: &Shared,
    worker_ix: usize,
    worker_count: usize,
    cursor: &mut usize,
    max_batch: usize,
) -> Option<Vec<Job>> {
    let table = shared.shards.read().expect("shard table poisoned");
    let n = table.shards.len();
    if n == 0 {
        return None;
    }
    for steal_pass in [false, true] {
        for offset in 0..n {
            let ix = (*cursor + offset) % n;
            let shard = &table.shards[ix];
            let preferred = shared.single || shard.index % worker_count == worker_ix;
            if preferred == steal_pass {
                continue;
            }
            // SeqCst: pairs with the enqueuer's reservation fetch_add.
            if shard.depth.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let batch = pop_batch(shard, max_batch);
            if batch.is_empty() {
                continue; // reservation raced ahead of the push; rescan
            }
            *cursor = (ix + 1) % n;
            if steal_pass {
                // Relaxed: stats counters, read only at snapshot time.
                shard.steals.fetch_add(1, Ordering::Relaxed);
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(batch);
        }
    }
    None
}

fn worker_loop(shared: &Shared, worker_ix: usize, worker_count: usize, max_batch: usize) {
    // Per-worker rotation cursor; workers start offset from each other
    // so they fan out over the shard table instead of convoying.
    let mut cursor = worker_ix;
    // Worker-owned encode arena: the tape and scheduling buffers live
    // for the worker's whole life, so steady-state batches allocate ~0
    // (tensor buffers come from the thread-local pool tier, which this
    // thread also keeps warm).
    let mut scratch = ccsa_nn::EncodeScratch::new();
    loop {
        match grab_batch(shared, worker_ix, worker_count, &mut cursor, max_batch) {
            Some(batch) => run_batch(shared, batch, &mut scratch),
            None => {
                // Sleep protocol: advertise the intent to sleep, then
                // re-check for work *under the park lock*. An enqueuer
                // increments a shard depth before checking `sleepers`
                // (both SeqCst), so either this re-check sees its jobs
                // or it sees this sleeper and notifies.
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                let guard = shared.park.lock().expect("park lock poisoned");
                if shared.shutdown.load(Ordering::SeqCst) {
                    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if !shared.has_pending() {
                    let _guard = shared.available.wait(guard).expect("park lock poisoned");
                }
                // SeqCst: retract the sleep advertisement (symmetric
                // with the fetch_add opening this protocol).
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Runs one popped batch: a single fused forward pass, results fanned
/// back to each job's caller. A panicking pass (corrupt model, shape
/// mismatch) must not kill the worker: it is caught, this batch's
/// callers get the error, and the worker keeps serving. Encoders are
/// pure functions of (params, graph), so no shared state can be left
/// inconsistent.
fn run_batch(shared: &Shared, batch: Vec<Job>, scratch: &mut ccsa_nn::EncodeScratch) {
    let model = &batch[0].model.model;
    let graphs: Vec<&AstGraph> = batch.iter().map(|job| job.graph.as_ref()).collect();
    // A panicking pass may leave half-recorded nodes on the scratch
    // tape; `encode_codes_with_scratch` resets it on entry, so the next
    // batch starts clean either way.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        model
            .comparator
            .encode_codes_with_scratch(&model.params, &graphs, scratch)
    }));
    // Relaxed: stats counters, read only at snapshot time.
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared.jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
    match outcome {
        Ok((codes, fused)) => {
            // Relaxed: stats counters, read only at snapshot time.
            shared
                .fused_levels
                .fetch_add(fused.levels, Ordering::Relaxed);
            shared.fused_rows.fetch_add(fused.rows, Ordering::Relaxed);
            for (job, code) in batch.into_iter().zip(codes) {
                // A disappeared caller is not an error; drop its result.
                let _ = job.tx.send((job.index, Ok(code)));
            }
        }
        Err(panic) => {
            // `&*panic`: downcast the payload, not the Box around it.
            let message = panic_message(&*panic);
            for job in batch {
                let _ = job.tx.send((job.index, Err(message.clone())));
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "encoder panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use ccsa_cppast::parse_program;
    use ccsa_model::comparator::{Comparator, EncoderConfig};
    use ccsa_model::pipeline::TrainedModel;
    use ccsa_nn::param::Params;
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_serve_model(seed: u64) -> Arc<ServeModel> {
        named_serve_model("t", seed)
    }

    fn named_serve_model(name: &str, seed: u64) -> Arc<ServeModel> {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
        let mut reg = ModelRegistry::new();
        reg.register(name, 1, TrainedModel { comparator, params });
        reg.resolve(&crate::registry::ModelSelector {
            name: Some(name.into()),
            version: None,
        })
        .unwrap()
    }

    fn graph(src: &str) -> Arc<AstGraph> {
        Arc::new(AstGraph::from_program(&parse_program(src).unwrap()))
    }

    fn sample_graphs(n: usize) -> Vec<Arc<AstGraph>> {
        (0..n)
            .map(|i| {
                let mut body = String::from("int s = 0;");
                for k in 0..(i % 4) {
                    body.push_str(&format!(
                        " for (int i{k} = 0; i{k} < {}; i{k}++) s += i{k};",
                        k + 2
                    ));
                }
                graph(&format!("int main() {{ {body} return s; }}"))
            })
            .collect()
    }

    /// Graphs whose encode is deliberately slow (deep statement chains)
    /// so saturation/stealing windows are wide enough to observe.
    fn heavy_graphs(n: usize) -> Vec<Arc<AstGraph>> {
        (0..n)
            .map(|i| {
                let mut body = String::from("int s = 0;");
                for k in 0..24 + (i % 3) {
                    body.push_str(&format!(" for (int j{k} = 0; j{k} < 3; j{k}++) s += j{k};"));
                }
                graph(&format!("int main() {{ {body} return s; }}"))
            })
            .collect()
    }

    fn pool(workers: usize, max_batch: usize) -> EncodePool {
        EncodePool::new(&BatchConfig {
            workers,
            max_batch,
            ..BatchConfig::default()
        })
    }

    #[test]
    fn pool_matches_direct_encoding_in_order() {
        let model = tiny_serve_model(1);
        let graphs = sample_graphs(9);
        let pool = pool(3, 4);
        let pooled = pool.encode(&model, &graphs).unwrap();

        let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
        let direct = model
            .model
            .comparator
            .encode_codes(&model.model.params, &refs);
        assert_eq!(pooled.len(), direct.len());
        for (p, d) in pooled.iter().zip(&direct) {
            assert_eq!(
                p.as_slice(),
                d.as_slice(),
                "pooled encode diverged from direct"
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 9);
        assert!(
            stats.batches >= 1,
            "at least one forward pass must have run"
        );
        assert!(stats.mean_batch_size() >= 1.0);
        // The fused encoder must have reported its level telemetry: every
        // node row of every tree passes through exactly one fused level
        // matmul per pass (1-layer tree-LSTM ⇒ rows == total nodes).
        let total_nodes: u64 = graphs.iter().map(|g| g.node_count() as u64).sum();
        assert_eq!(stats.fused_rows, total_nodes);
        assert!(stats.fused_levels > 0);
        assert!(
            stats.mean_fused_width() >= 1.0,
            "fused width {}",
            stats.mean_fused_width()
        );
        // One model encoded ⇒ one materialised shard, labelled name@vN.
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.shard_depths(), vec![("t@v1".to_string(), 0)]);
    }

    #[test]
    fn wider_batches_report_wider_fused_levels() {
        // The same trees encoded in ONE pass must fuse wider levels than
        // when forced through one-tree passes — the signal
        // mean_batch_size cannot show (this is the "true fused width"
        // fix: 1-tree and 8-tree flushes differ by ~8× here).
        let model = tiny_serve_model(7);
        let graphs = sample_graphs(8);

        let fused_pool = pool(1, 8);
        let _ = fused_pool.encode(&model, &graphs).unwrap();
        let wide = fused_pool.stats();

        let narrow_pool = pool(1, 1);
        let _ = narrow_pool.encode(&model, &graphs).unwrap();
        let narrow = narrow_pool.stats();

        assert_eq!(wide.fused_rows, narrow.fused_rows, "same total node work");
        assert!(
            wide.mean_fused_width() > 2.0 * narrow.mean_fused_width(),
            "cross-tree fusion invisible: wide {} vs narrow {}",
            wide.mean_fused_width(),
            narrow.mean_fused_width()
        );
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let model = tiny_serve_model(2);
        let pool = Arc::new(pool(2, 8));
        let graphs = sample_graphs(6);
        let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
        let direct = model
            .model
            .comparator
            .encode_codes(&model.model.params, &refs);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let model = Arc::clone(&model);
                    let graphs = graphs.clone();
                    scope.spawn(move || pool.encode(&model, &graphs).unwrap())
                })
                .collect();
            for handle in handles {
                let got = handle.join().unwrap();
                for (g, d) in got.iter().zip(&direct) {
                    assert_eq!(g.as_slice(), d.as_slice());
                }
            }
        });
        assert_eq!(pool.stats().jobs, 24);
    }

    #[test]
    fn batches_never_mix_models() {
        // Two distinct models queued interleaved: every result must match
        // its own model's direct encoding — in BOTH sharding modes (per-
        // model shards separate them structurally; the single queue must
        // split batches at model boundaries like the pre-sharding pool).
        for sharding in [PoolSharding::PerModel, PoolSharding::Single] {
            let m1 = tiny_serve_model(3);
            let m2 = tiny_serve_model(4);
            let graphs = sample_graphs(5);
            let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
            let d1 = m1.model.comparator.encode_codes(&m1.model.params, &refs);
            let d2 = m2.model.comparator.encode_codes(&m2.model.params, &refs);
            // Sanity: the two models disagree, otherwise the test is vacuous.
            assert_ne!(d1[0].as_slice(), d2[0].as_slice());

            let pool = Arc::new(EncodePool::new(&BatchConfig {
                workers: 2,
                max_batch: 16,
                sharding,
                ..BatchConfig::default()
            }));
            std::thread::scope(|scope| {
                let p1 = Arc::clone(&pool);
                let g1 = graphs.clone();
                let h1 = scope.spawn(move || p1.encode(&m1, &g1).unwrap());
                let p2 = Arc::clone(&pool);
                let g2 = graphs.clone();
                let h2 = scope.spawn(move || p2.encode(&m2, &g2).unwrap());
                let r1 = h1.join().unwrap();
                let r2 = h2.join().unwrap();
                for (g, d) in r1.iter().zip(&d1) {
                    assert_eq!(g.as_slice(), d.as_slice());
                }
                for (g, d) in r2.iter().zip(&d2) {
                    assert_eq!(g.as_slice(), d.as_slice());
                }
            });
            let expected_shards = match sharding {
                PoolSharding::PerModel => 2,
                PoolSharding::Single => 1,
            };
            assert_eq!(pool.shard_count(), expected_shards);
        }
    }

    #[test]
    fn prune_drops_only_dead_empty_shards() {
        let alive = named_serve_model("alive", 21);
        let dead = named_serve_model("dead", 22);
        let pool = pool(2, 4);
        let _ = pool.encode(&alive, &sample_graphs(3)).unwrap();
        let _ = pool.encode(&dead, &sample_graphs(3)).unwrap();
        assert_eq!(pool.shard_count(), 2);

        // Both uids live: nothing to collect.
        assert_eq!(pool.prune_retired(&[alive.uid(), dead.uid()]), 0);
        assert_eq!(pool.shard_count(), 2);

        // One registration retired: its drained shard goes, the live one
        // stays and keeps serving under its original uid mapping.
        assert_eq!(pool.prune_retired(&[alive.uid()]), 1);
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.shard_depths(), vec![("alive@v1".to_string(), 0)]);
        let codes = pool.encode(&alive, &sample_graphs(2)).unwrap();
        assert_eq!(codes.len(), 2);
        assert_eq!(pool.shard_count(), 1, "live shard must not be recreated");

        // A late request against the pruned registration recreates its
        // shard lazily — prune must never make encoding fail.
        let codes = pool.encode(&dead, &sample_graphs(1)).unwrap();
        assert_eq!(codes.len(), 1);
        assert_eq!(pool.shard_count(), 2);
    }

    #[test]
    fn single_mode_is_never_pruned() {
        let model = tiny_serve_model(23);
        let pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 4,
            sharding: PoolSharding::Single,
            ..BatchConfig::default()
        });
        let _ = pool.encode(&model, &sample_graphs(2)).unwrap();
        assert_eq!(pool.prune_retired(&[]), 0);
        assert_eq!(pool.shard_count(), 1);
    }

    #[test]
    fn empty_request_returns_immediately() {
        let model = tiny_serve_model(5);
        let pool = pool(1, 4);
        assert!(pool.encode(&model, &[]).unwrap().is_empty());
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn max_batch_caps_forward_pass_size() {
        let model = tiny_serve_model(6);
        let graphs = sample_graphs(10);
        // One worker, cap 3 → at least ceil(10/3) = 4 passes.
        let pool = pool(1, 3);
        let _ = pool.encode(&model, &graphs).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.jobs, 10);
        assert!(
            stats.batches >= 4,
            "batches {} under a cap of 3",
            stats.batches
        );
        assert!(stats.mean_batch_size() <= 3.0 + 1e-9);
    }

    #[test]
    fn encoder_panic_fails_the_request_but_not_the_pool() {
        // A model whose weights do not match its architecture makes the
        // forward pass panic. With a single worker this must surface as
        // EncodeError on the calling side — not hang the caller, and not
        // leave the pool dead for subsequent well-formed requests.
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut scratch = Params::new();
        let comparator = Comparator::new(&config, &mut scratch, &mut StdRng::seed_from_u64(1));
        // Pair the comparator with an EMPTY parameter store: every
        // ctx.param() lookup panics inside the encoder.
        let corrupt = TrainedModel {
            comparator,
            params: Params::new(),
        };
        let mut reg = ModelRegistry::new();
        reg.register("corrupt", 1, corrupt);
        let corrupt = reg
            .resolve(&crate::registry::ModelSelector {
                name: Some("corrupt".into()),
                version: None,
            })
            .unwrap();

        let pool = pool(1, 2);
        let graphs = sample_graphs(5);
        let err = pool.encode(&corrupt, &graphs).unwrap_err();
        assert!(!err.is_shed(), "a panic is a failure, not backpressure");
        assert!(
            err.message().contains("unknown parameter"),
            "panic payload should surface: {err}"
        );

        // The single worker survived: a healthy model still encodes.
        let healthy = tiny_serve_model(9);
        let codes = pool.encode(&healthy, &graphs).unwrap();
        assert_eq!(codes.len(), 5);
        // The panicked shard drained fully — nothing left pending.
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn shard_capacity_sheds_oversized_requests_without_queueing() {
        let model = tiny_serve_model(11);
        let pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 4,
            sharding: PoolSharding::PerModel,
            shard_capacity: 4,
        });
        // Over-capacity request: refused atomically, nothing enqueued —
        // and since 5 > 4 can never fit, the message must say "split",
        // not invite a futile retry.
        let err = pool.encode(&model, &sample_graphs(5)).unwrap_err();
        assert!(err.is_shed(), "admission refusal must be a shed: {err}");
        assert!(err.message().contains("split"), "got {err}");
        assert_eq!(pool.queue_depth(), 0, "refusal must not leave jobs behind");
        assert_eq!(pool.stats().jobs, 0);
        // At-capacity request: admitted and served.
        assert_eq!(pool.encode(&model, &sample_graphs(4)).unwrap().len(), 4);
        // capacity 0 = unbounded.
        let unbounded = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 4,
            sharding: PoolSharding::PerModel,
            shard_capacity: 0,
        });
        assert_eq!(
            unbounded.encode(&model, &sample_graphs(9)).unwrap().len(),
            9
        );
    }

    #[test]
    fn full_shard_sheds_retryable_requests() {
        // A request that WOULD fit an empty shard but not the current
        // backlog is shed with a retry hint (unlike the never-fits case,
        // which says "split"). One worker chews 1-tree batches of heavy
        // graphs; while ≥ 2 of the 4-job backlog remains, a 3-tree
        // request cannot fit the capacity-4 shard. On a loaded box the
        // observer can lose the scheduling race and find the backlog
        // already drained — re-arm with a fresh backlog instead of
        // spinning on a depth that will never rise again.
        let model = tiny_serve_model(15);
        let pool = Arc::new(EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 1,
            sharding: PoolSharding::PerModel,
            shard_capacity: 4,
        }));
        let shed = std::thread::scope(|scope| {
            for _attempt in 0..20 {
                let bg_pool = Arc::clone(&pool);
                let bg_model = Arc::clone(&model);
                let backlog = heavy_graphs(4);
                let handle = scope.spawn(move || bg_pool.encode(&bg_model, &backlog).unwrap());
                // Give the background enqueue a bounded window to show
                // up before probing (never an unbounded spin: on a
                // 1-core box the worker may drain first and the depth
                // would then never rise again this attempt).
                for _ in 0..1000 {
                    if pool.queue_depth() >= 2 {
                        break;
                    }
                    std::thread::yield_now();
                }
                let mut observed = None;
                if pool.queue_depth() >= 2 {
                    // An Ok here means the backlog drained between the
                    // depth check and admission: attempt lost, re-arm.
                    if let Err(e) = pool.encode(&model, &sample_graphs(3)) {
                        observed = Some(e);
                    }
                }
                handle.join().unwrap();
                if observed.is_some() {
                    return observed;
                }
            }
            None
        });
        let err = shed.expect("never observed a full shard in 20 attempts");
        assert!(err.is_shed(), "{err}");
        assert!(err.message().contains("retry later"), "got {err}");
    }

    #[test]
    fn idle_workers_steal_from_a_saturated_shard() {
        // One hot model, two workers: worker 0 prefers the only shard,
        // worker 1 has no preferred work and must steal from it to help
        // drain the backlog.
        let model = tiny_serve_model(12);
        let pool = Arc::new(pool(2, 4));
        let graphs = heavy_graphs(24);
        std::thread::scope(|scope| {
            let handles: Vec<_> = graphs
                .chunks(8)
                .map(|chunk| {
                    let pool = Arc::clone(&pool);
                    let model = Arc::clone(&model);
                    let chunk = chunk.to_vec();
                    scope.spawn(move || pool.encode(&model, &chunk).unwrap())
                })
                .collect();
            for h in handles {
                let _ = h.join().unwrap();
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs, 24);
        assert!(
            stats.steals >= 1,
            "worker 1 should have stolen from the hot shard (steals = {})",
            stats.steals
        );
    }

    #[test]
    fn cold_shard_is_not_starved_by_a_hot_backlog() {
        // The starvation story the sharding exists for: a single worker,
        // a hot model with a deep backlog, and one cold request arriving
        // after it. In FIFO order the cold request would wait for the
        // whole hot drain; with per-model shards and rotation it is
        // served after at most one in-flight batch — i.e. it must
        // complete while the hot backlog is still being chewed.
        use std::sync::atomic::AtomicBool;
        let hot = named_serve_model("hot", 13);
        let cold = named_serve_model("cold", 14);
        let pool = Arc::new(pool(1, 4));
        let hot_done = Arc::new(AtomicBool::new(false));
        let hot_backlog = heavy_graphs(40);
        let cold_graphs = sample_graphs(1);
        std::thread::scope(|scope| {
            let hot_pool = Arc::clone(&pool);
            let hot_model = Arc::clone(&hot);
            let done = Arc::clone(&hot_done);
            scope.spawn(move || {
                let _ = hot_pool.encode(&hot_model, &hot_backlog).unwrap();
                done.store(true, Ordering::SeqCst);
            });
            // Let the hot backlog enqueue and the worker sink its teeth in.
            while pool.stats().batches == 0 {
                std::thread::yield_now();
            }
            let cold_codes = pool.encode(&cold, &cold_graphs).unwrap();
            assert_eq!(cold_codes.len(), 1);
            assert!(
                !hot_done.load(Ordering::SeqCst),
                "cold request should finish while the hot backlog is still draining \
                 (it waited for the full hot queue — starvation)"
            );
        });
    }
}
