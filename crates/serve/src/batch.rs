//! Micro-batching encode queue over a persistent worker pool.
//!
//! Serving's hot cost is the encoder forward pass. Rather than encoding
//! each request's trees ad hoc on the caller's thread, every pending tree
//! becomes a job in a shared queue; workers drain the queue in *batches*
//! (up to [`BatchConfig::max_batch`] consecutive jobs for the same model)
//! and run one batched forward pass per batch via
//! [`Comparator::encode_codes`](ccsa_model::comparator::Comparator::encode_codes),
//! which binds model parameters to a single tape for the whole batch.
//!
//! The effect: per-pass setup cost is amortised across the batch, trees
//! from *different* concurrent requests coalesce into shared passes, and
//! a K-candidate ranking request fans its K encodes out across the pool
//! instead of encoding serially. Since the encoders went level-fused,
//! coalescing is a tensor-shape win, not just bookkeeping: every tree a
//! worker adds to a pass widens the per-level matmuls (observable as
//! [`BatchStats::mean_fused_width`]).
//!
//! Results return to callers over per-request channels, so a caller
//! blocks only on its own trees, never on the whole queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ccsa_cppast::AstGraph;
use ccsa_tensor::Tensor;

use crate::registry::ServeModel;

/// Worker-pool shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Encoder worker threads.
    pub workers: usize,
    /// Maximum trees fused into one forward pass.
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: ccsa_nn::parallel::default_threads(),
            max_batch: 16,
        }
    }
}

/// Pool observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Forward passes executed.
    pub batches: u64,
    /// Trees encoded.
    pub jobs: u64,
    /// Fused level matmuls executed across all forward passes.
    pub fused_levels: u64,
    /// Node rows those fused level matmuls covered.
    pub fused_rows: u64,
}

impl BatchStats {
    /// Mean trees per forward pass (0 when idle).
    ///
    /// Counts *trees*, not work: a 1-tree flush of a deep tree and an
    /// 8-tree flush of shallow ones can cost the same. The tensor-level
    /// signal is [`BatchStats::mean_fused_width`], which reports how wide
    /// the fused per-level matmuls actually ran.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }

    /// Mean node rows per fused level matmul (0 when idle) — the true
    /// fused width the level-scheduled encoder achieved. Cross-tree
    /// fusion shows up here: the same trees encoded in one pass instead
    /// of eight produce proportionally wider levels.
    pub fn mean_fused_width(&self) -> f64 {
        if self.fused_levels == 0 {
            0.0
        } else {
            self.fused_rows as f64 / self.fused_levels as f64
        }
    }
}

struct Job {
    model: Arc<ServeModel>,
    graph: Arc<AstGraph>,
    index: usize,
    tx: mpsc::Sender<(usize, Result<Tensor, String>)>,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    batches: AtomicU64,
    jobs: AtomicU64,
    fused_levels: AtomicU64,
    fused_rows: AtomicU64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The persistent encoder worker pool.
pub struct EncodePool {
    shared: Arc<Shared>,
    max_batch: usize,
    workers: Vec<JoinHandle<()>>,
}

impl EncodePool {
    /// Spawns `config.workers` threads (at least one).
    pub fn new(config: &BatchConfig) -> EncodePool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            fused_levels: AtomicU64::new(0),
            fused_rows: AtomicU64::new(0),
        });
        let max_batch = config.max_batch.max(1);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccsa-encode-{i}"))
                    .spawn(move || worker_loop(&shared, max_batch))
                    .expect("failed to spawn encode worker")
            })
            .collect();
        EncodePool {
            shared,
            max_batch,
            workers,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.shared.batches.load(Ordering::Relaxed),
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            fused_levels: self.shared.fused_levels.load(Ordering::Relaxed),
            fused_rows: self.shared.fused_rows.load(Ordering::Relaxed),
        }
    }

    /// Trees currently waiting in the queue (instantaneous, not a
    /// counter). This is the admission backpressure signal: every pending
    /// encode across all connections queues here, so a growing depth
    /// means requests arrive faster than the workers drain them.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("encode queue poisoned")
            .jobs
            .len()
    }

    /// Encodes `graphs` under `model`, blocking until every latent code is
    /// ready. Results come back in input order.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when the encoder panicked on this batch
    /// (e.g. a corrupt model whose parameter shapes do not match its
    /// architecture). The pool survives: the panic is caught in the
    /// worker, every affected caller gets the error, and subsequent
    /// requests are served normally.
    pub fn encode(
        &self,
        model: &Arc<ServeModel>,
        graphs: &[Arc<AstGraph>],
    ) -> Result<Vec<Tensor>, EncodeError> {
        if graphs.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.queue.lock().expect("encode queue poisoned");
            assert!(!state.shutdown, "encode pool already shut down");
            for (index, graph) in graphs.iter().enumerate() {
                state.jobs.push_back(Job {
                    model: Arc::clone(model),
                    graph: Arc::clone(graph),
                    index,
                    tx: tx.clone(),
                });
            }
        }
        self.shared.available.notify_all();
        drop(tx); // workers hold the only remaining senders

        let mut codes: Vec<Option<Tensor>> = vec![None; graphs.len()];
        let mut received = 0;
        while received < graphs.len() {
            let (index, code) = rx.recv().map_err(|_| {
                EncodeError("encode worker exited before delivering results".into())
            })?;
            let code = code.map_err(EncodeError)?;
            debug_assert!(codes[index].is_none(), "duplicate result for job {index}");
            codes[index] = Some(code);
            received += 1;
        }
        Ok(codes
            .into_iter()
            .map(|c| c.expect("missing result slot"))
            .collect())
    }
}

/// An encoder forward pass failed (panicked) in the worker pool.
#[derive(Debug, Clone)]
pub struct EncodeError(pub String);

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "encoder failure: {}", self.0)
    }
}

impl std::error::Error for EncodeError {}

impl Drop for EncodePool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.queue.lock().expect("encode queue poisoned");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, max_batch: usize) {
    loop {
        let batch = {
            let mut state = shared.queue.lock().expect("encode queue poisoned");
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.available.wait(state).expect("encode queue poisoned");
            }
            // Micro-batch: the front job plus consecutive jobs for the
            // *same* model instance (one parameter set per forward pass).
            let first = state.jobs.pop_front().expect("checked non-empty");
            let mut batch = vec![first];
            while batch.len() < max_batch {
                let same_model = state
                    .jobs
                    .front()
                    .is_some_and(|next| Arc::ptr_eq(&next.model, &batch[0].model));
                if !same_model {
                    break;
                }
                batch.push(state.jobs.pop_front().expect("checked non-empty"));
            }
            batch
        };

        let model = &batch[0].model.model;
        let graphs: Vec<&AstGraph> = batch.iter().map(|job| job.graph.as_ref()).collect();
        // A panicking forward pass (corrupt model, shape mismatch) must
        // not kill the worker: catch it, fail this batch's callers with a
        // message, keep serving. Encoders are pure functions of
        // (params, graph), so no shared state can be left inconsistent.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model
                .comparator
                .encode_codes_with_stats(&model.params, &graphs)
        }));
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
        match outcome {
            Ok((codes, fused)) => {
                shared
                    .fused_levels
                    .fetch_add(fused.levels, Ordering::Relaxed);
                shared.fused_rows.fetch_add(fused.rows, Ordering::Relaxed);
                for (job, code) in batch.into_iter().zip(codes) {
                    // A disappeared caller is not an error; drop its result.
                    let _ = job.tx.send((job.index, Ok(code)));
                }
            }
            Err(panic) => {
                // `&*panic`: downcast the payload, not the Box around it.
                let message = panic_message(&*panic);
                for job in batch {
                    let _ = job.tx.send((job.index, Err(message.clone())));
                }
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "encoder panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use ccsa_cppast::parse_program;
    use ccsa_model::comparator::{Comparator, EncoderConfig};
    use ccsa_model::pipeline::TrainedModel;
    use ccsa_nn::param::Params;
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_serve_model(seed: u64) -> Arc<ServeModel> {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
        let mut reg = ModelRegistry::new();
        reg.register("t", 1, TrainedModel { comparator, params });
        reg.resolve(&crate::registry::ModelSelector {
            name: Some("t".into()),
            version: None,
        })
        .unwrap()
    }

    fn graph(src: &str) -> Arc<AstGraph> {
        Arc::new(AstGraph::from_program(&parse_program(src).unwrap()))
    }

    fn sample_graphs(n: usize) -> Vec<Arc<AstGraph>> {
        (0..n)
            .map(|i| {
                let mut body = String::from("int s = 0;");
                for k in 0..(i % 4) {
                    body.push_str(&format!(
                        " for (int i{k} = 0; i{k} < {}; i{k}++) s += i{k};",
                        k + 2
                    ));
                }
                graph(&format!("int main() {{ {body} return s; }}"))
            })
            .collect()
    }

    #[test]
    fn pool_matches_direct_encoding_in_order() {
        let model = tiny_serve_model(1);
        let graphs = sample_graphs(9);
        let pool = EncodePool::new(&BatchConfig {
            workers: 3,
            max_batch: 4,
        });
        let pooled = pool.encode(&model, &graphs).unwrap();

        let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
        let direct = model
            .model
            .comparator
            .encode_codes(&model.model.params, &refs);
        assert_eq!(pooled.len(), direct.len());
        for (p, d) in pooled.iter().zip(&direct) {
            assert_eq!(
                p.as_slice(),
                d.as_slice(),
                "pooled encode diverged from direct"
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 9);
        assert!(
            stats.batches >= 1,
            "at least one forward pass must have run"
        );
        assert!(stats.mean_batch_size() >= 1.0);
        // The fused encoder must have reported its level telemetry: every
        // node row of every tree passes through exactly one fused level
        // matmul per pass (1-layer tree-LSTM ⇒ rows == total nodes).
        let total_nodes: u64 = graphs.iter().map(|g| g.node_count() as u64).sum();
        assert_eq!(stats.fused_rows, total_nodes);
        assert!(stats.fused_levels > 0);
        assert!(
            stats.mean_fused_width() >= 1.0,
            "fused width {}",
            stats.mean_fused_width()
        );
    }

    #[test]
    fn wider_batches_report_wider_fused_levels() {
        // The same trees encoded in ONE pass must fuse wider levels than
        // when forced through one-tree passes — the signal
        // mean_batch_size cannot show (this is the "true fused width"
        // fix: 1-tree and 8-tree flushes differ by ~8× here).
        let model = tiny_serve_model(7);
        let graphs = sample_graphs(8);

        let fused_pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 8,
        });
        let _ = fused_pool.encode(&model, &graphs).unwrap();
        let wide = fused_pool.stats();

        let narrow_pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 1,
        });
        let _ = narrow_pool.encode(&model, &graphs).unwrap();
        let narrow = narrow_pool.stats();

        assert_eq!(wide.fused_rows, narrow.fused_rows, "same total node work");
        assert!(
            wide.mean_fused_width() > 2.0 * narrow.mean_fused_width(),
            "cross-tree fusion invisible: wide {} vs narrow {}",
            wide.mean_fused_width(),
            narrow.mean_fused_width()
        );
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let model = tiny_serve_model(2);
        let pool = Arc::new(EncodePool::new(&BatchConfig {
            workers: 2,
            max_batch: 8,
        }));
        let graphs = sample_graphs(6);
        let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
        let direct = model
            .model
            .comparator
            .encode_codes(&model.model.params, &refs);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let model = Arc::clone(&model);
                    let graphs = graphs.clone();
                    scope.spawn(move || pool.encode(&model, &graphs).unwrap())
                })
                .collect();
            for handle in handles {
                let got = handle.join().unwrap();
                for (g, d) in got.iter().zip(&direct) {
                    assert_eq!(g.as_slice(), d.as_slice());
                }
            }
        });
        assert_eq!(pool.stats().jobs, 24);
    }

    #[test]
    fn batches_never_mix_models() {
        // Two distinct models queued interleaved: every result must match
        // its own model's direct encoding.
        let m1 = tiny_serve_model(3);
        let m2 = tiny_serve_model(4);
        let graphs = sample_graphs(5);
        let refs: Vec<&AstGraph> = graphs.iter().map(|g| g.as_ref()).collect();
        let d1 = m1.model.comparator.encode_codes(&m1.model.params, &refs);
        let d2 = m2.model.comparator.encode_codes(&m2.model.params, &refs);
        // Sanity: the two models disagree, otherwise the test is vacuous.
        assert_ne!(d1[0].as_slice(), d2[0].as_slice());

        let pool = Arc::new(EncodePool::new(&BatchConfig {
            workers: 2,
            max_batch: 16,
        }));
        std::thread::scope(|scope| {
            let p1 = Arc::clone(&pool);
            let g1 = graphs.clone();
            let h1 = scope.spawn(move || p1.encode(&m1, &g1).unwrap());
            let p2 = Arc::clone(&pool);
            let g2 = graphs.clone();
            let h2 = scope.spawn(move || p2.encode(&m2, &g2).unwrap());
            let r1 = h1.join().unwrap();
            let r2 = h2.join().unwrap();
            for (g, d) in r1.iter().zip(&d1) {
                assert_eq!(g.as_slice(), d.as_slice());
            }
            for (g, d) in r2.iter().zip(&d2) {
                assert_eq!(g.as_slice(), d.as_slice());
            }
        });
    }

    #[test]
    fn empty_request_returns_immediately() {
        let model = tiny_serve_model(5);
        let pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 4,
        });
        assert!(pool.encode(&model, &[]).unwrap().is_empty());
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn max_batch_caps_forward_pass_size() {
        let model = tiny_serve_model(6);
        let graphs = sample_graphs(10);
        // One worker, cap 3 → at least ceil(10/3) = 4 passes.
        let pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 3,
        });
        let _ = pool.encode(&model, &graphs).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.jobs, 10);
        assert!(
            stats.batches >= 4,
            "batches {} under a cap of 3",
            stats.batches
        );
        assert!(stats.mean_batch_size() <= 3.0 + 1e-9);
    }

    #[test]
    fn encoder_panic_fails_the_request_but_not_the_pool() {
        // A model whose weights do not match its architecture makes the
        // forward pass panic. With a single worker this must surface as
        // EncodeError on the calling side — not hang the caller, and not
        // leave the pool dead for subsequent well-formed requests.
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut scratch = Params::new();
        let comparator = Comparator::new(&config, &mut scratch, &mut StdRng::seed_from_u64(1));
        // Pair the comparator with an EMPTY parameter store: every
        // ctx.param() lookup panics inside the encoder.
        let corrupt = TrainedModel {
            comparator,
            params: Params::new(),
        };
        let mut reg = ModelRegistry::new();
        reg.register("corrupt", 1, corrupt);
        let corrupt = reg
            .resolve(&crate::registry::ModelSelector {
                name: Some("corrupt".into()),
                version: None,
            })
            .unwrap();

        let pool = EncodePool::new(&BatchConfig {
            workers: 1,
            max_batch: 2,
        });
        let graphs = sample_graphs(5);
        let err = pool.encode(&corrupt, &graphs).unwrap_err();
        assert!(
            err.0.contains("unknown parameter"),
            "panic payload should surface: {err}"
        );

        // The single worker survived: a healthy model still encodes.
        let healthy = tiny_serve_model(9);
        let codes = pool.encode(&healthy, &graphs).unwrap();
        assert_eq!(codes.len(), 5);
    }
}
