//! ccsa-serve — batched, cache-backed inference serving for CCSA models.
//!
//! Training and evaluation answer "can the model predict?"; this crate
//! answers "can it *serve*?": given trained comparators persisted by
//! [`ccsa_model::persist`], it exposes an in-process engine (and a
//! JSON-lines binary) that scores compare and ranking requests at
//! throughput, not one forward pass at a time.
//!
//! # Architecture
//!
//! ```text
//!                              ccsa-fleet front tier: N gateway
//!                              replicas (consistent-hash ring ·
//!                              hedging · canary table control)
//!                                        │
//!      stdio `serve` bin       TCP `gateway` bin (ccsa-gateway)
//!      (one client)            JSON-lines │ HTTP/1.1 front door:
//!                 │            sessions · │ /v1/compare · /v1/rank
//!                 │            A/B routes │ /healthz · /readyz
//!                 │            · shadow   │ /metrics (Prometheus)
//!                 │                 │     │
//!            requests (compare / rank / stats / routes / shutdown)
//!                          │
//!                    ┌─────▼──────┐      ┌─────────────────┐
//!                    │ ServeEngine│◄─────┤ MetricsRegistry │
//!                    └─┬───────┬──┘scrape│ counters·gauges │
//!                      │       │  -time  │ ·histograms     │
//!                      │       │  collect│ (lock-free; one │
//!                      │       │         │  source for     │
//!                      │       │         │  stats/routes/  │
//!                      │       │         │  /metrics)      │
//!                      │       │         └─────────────────┘
//!        cache hit ┌───▼─────┐ ┌▼─────────────┐ cache miss
//!                  │ striped │ │  EncodePool  │  per-model shard queues
//!                  │  LRU    │ │ ┌──┐┌──┐┌──┐ │  (bounded sub-queue per
//!                  │ ░│░│░│░ │ │ │m1││m2││m3│ │   name@vN registration)
//!                  │ (N locks│ │ └┬─┘└┬─┘└┬─┘ │
//!                  │ 1/stripe│ │  ▼   ▼   ▼   │  workers prefer their
//!                  └─┬─▲─┬───┘ │ workers+steal│  shards, steal when idle
//!     snapshot_to/   │ │ │fill └─▲────┬───────┘
//!     load_from ◄────┘ │ └───────┘    │ latent codes
//!     (warm restarts,  │ ┌────────────▼───┐
//!      stripe-count    │ │ classifier head│  2·d weights — cheap
//!      agnostic)       │ └──────┬─────────┘
//!                      │        │ probabilities → ranking tournament
//! ```
//!
//! * [`registry`] — named, versioned models ([`ModelRegistry`]), loaded
//!   from `model-v<N>.ccsm` directories or registered in-process; each
//!   registration carries its own cache hit/miss counters so A/B routes
//!   are observable separately;
//! * [`cache`] — an O(1) LRU from canonical AST hash to latent code,
//!   served striped ([`ShardedCache`]: N per-stripe LRUs, one lock per
//!   stripe, capacity split evenly) so concurrent lookups never convoy
//!   on a global mutex: structurally identical resubmissions skip the
//!   encoder and pay only the classifier head; snapshot/load spills it
//!   to disk so restarts begin warm, byte-compatible across stripe
//!   counts;
//! * [`batch`] — the sharded micro-batching queues and persistent
//!   worker pool ([`EncodePool`]): each registered model gets its own
//!   bounded sub-queue with preferred workers, idle workers steal from
//!   other shards (so a hot A/B arm cannot starve a cold one), and
//!   pending trees fuse into *level-fused* encoder forward passes
//!   (same-level nodes of every tree in a batch run as one matmul per
//!   gate — see `ccsa_nn::FusedStats`), the achieved fused width is
//!   surfaced via [`BatchStats::mean_fused_width`], and the per-shard
//!   queue depths are the transport's admission backpressure signal;
//! * [`rank`] — K-candidate round-robin tournaments with
//!   transitivity-aware tie-breaking and cycle flagging;
//! * [`engine`] — the [`ServeEngine`] front door tying the above together;
//! * [`metrics`] — the unified [`MetricsRegistry`]: lock-free atomic
//!   counters/gauges/histograms plus scrape-time collectors, rendered as
//!   Prometheus text 0.0.4 by [`MetricsRegistry::render`]; the gateway's
//!   per-route counters and the engine's cache/queue/batch numbers live
//!   here, so the `stats`/`routes` verbs and a `/metrics` scrape always
//!   agree ([`engine_metric_families`] wires an engine in);
//! * [`proto`] + [`json`] — the JSON-lines wire protocol shared by the
//!   `serve` binary and the `ccsa-gateway` TCP transport (which adds
//!   weighted sticky A/B routing, per-route rolling stats, and an
//!   HTTP/1.1 front door with health probes and per-request tracing on
//!   top).
//!
//! # Example
//!
//! ```
//! use ccsa_serve::{ModelSelector, ServeConfig, ServeEngine};
//! use ccsa_model::comparator::{Comparator, EncoderConfig};
//! use ccsa_model::pipeline::TrainedModel;
//! use ccsa_nn::param::Params;
//! use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Serve a (here: untrained) comparator as `default` v1.
//! let config = EncoderConfig::TreeLstm(TreeLstmConfig {
//!     embed_dim: 6, hidden: 6, layers: 1,
//!     direction: Direction::Uni, sigmoid_candidate: false,
//! });
//! let mut params = Params::new();
//! let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(0));
//! let engine = ServeEngine::with_model(
//!     TrainedModel { comparator, params },
//!     &ServeConfig::default(),
//! );
//!
//! let outcome = engine.compare(
//!     &ModelSelector::default(),
//!     "int main() { for (int i = 0; i < 9; i++) { } return 0; }",
//!     "int main() { return 0; }",
//! )?;
//! assert!((0.0..=1.0).contains(&outcome.prob_first_slower));
//! # Ok::<(), ccsa_serve::ServeError>(())
//! ```

pub mod batch;
pub mod cache;
pub mod engine;
pub mod hash;
pub mod json;
pub mod lockdep;
pub mod metrics;
pub mod proto;
pub mod rank;
pub mod registry;

pub use batch::{BatchConfig, BatchStats, EncodeError, EncodePool, PoolSharding};
pub use cache::{
    CachePrecision, CacheStats, EmbeddingCache, ShardedCache, SnapshotError, StoredCode,
    DEFAULT_CACHE_STRIPES,
};
pub use engine::{
    engine_metric_families, CompareOutcome, CompareScore, EngineStats, ModelCacheStats,
    RankOutcome, ServeConfig, ServeEngine, ServeError, StageTimings, MAX_RANK_CANDIDATES,
};
pub use metrics::{
    Counter, Gauge, Histogram, MetricKind, MetricsRegistry, Sample, SampleFamily, LATENCY_BUCKETS_S,
};
pub use rank::{rank_from_matrix, RankedCandidate};
pub use registry::{ModelRegistry, ModelSelector, RegistryError, ServeModel, DEFAULT_MODEL};
