//! The embedding cache: an O(1) LRU keyed by canonical AST hash.
//!
//! Encoders are pure functions of the [`AstGraph`](ccsa_cppast::AstGraph),
//! and [`AstGraph::canonical_hash`](ccsa_cppast::AstGraph::canonical_hash)
//! is a pure function of the graph — so a cached latent code can be
//! reused for *any* resubmission of structurally identical source (same
//! code re-scored against a new candidate, identifier renames, literal
//! tweaks). On a hit, serving skips the tree-LSTM/GCN encoder entirely
//! and only the 2·d-weight classifier head runs.
//!
//! Implementation: a slab of entries threaded onto an intrusive
//! doubly-linked recency list, plus a `HashMap` from key to slab index.
//! `get`, `insert` and eviction are all O(1).

use std::collections::HashMap;

use ccsa_tensor::Tensor;

const NIL: usize = usize::MAX;

struct Entry {
    key: u64,
    code: Tensor,
    prev: usize,
    next: usize,
}

/// Cache observability counters (monotonic; snapshot via
/// [`EmbeddingCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a code.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used map from canonical AST hash to latent code.
pub struct EmbeddingCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` codes. Capacity 0 disables
    /// caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> EmbeddingCache {
        EmbeddingCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached codes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are preserved — they are monotonic
    /// telemetry, not contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks a code up, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: u64) -> Option<Tensor> {
        match self.map.get(&key).copied() {
            Some(ix) => {
                self.stats.hits += 1;
                self.detach(ix);
                self.attach_front(ix);
                Some(self.slab[ix].code.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used by tests and
    /// diagnostics).
    pub fn peek(&self, key: u64) -> Option<&Tensor> {
        self.map.get(&key).map(|&ix| &self.slab[ix].code)
    }

    /// Inserts (or refreshes) a code, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub fn insert(&mut self, key: u64, code: Tensor) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&ix) = self.map.get(&key) {
            // Refresh: replace payload, promote.
            self.slab[ix].code = code;
            self.detach(ix);
            self.attach_front(ix);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slab[ix] = Entry {
                    key,
                    code,
                    prev: NIL,
                    next: NIL,
                };
                ix
            }
            None => {
                self.slab.push(Entry {
                    key,
                    code,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, ix);
        self.attach_front(ix);
        self.stats.insertions += 1;
    }

    /// Keys from most- to least-recently used (diagnostics).
    pub fn recency_keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut ix = self.head;
        while ix != NIL {
            keys.push(self.slab[ix].key);
            ix = self.slab[ix].next;
        }
        keys
    }

    fn detach(&mut self, ix: usize) {
        let (prev, next) = (self.slab[ix].prev, self.slab[ix].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == ix {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == ix {
            self.tail = prev;
        }
        self.slab[ix].prev = NIL;
        self.slab[ix].next = NIL;
    }

    fn attach_front(&mut self, ix: usize) {
        self.slab[ix].prev = NIL;
        self.slab[ix].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NIL {
            self.tail = ix;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(v: f32) -> Tensor {
        Tensor::from_vec(vec![v, v + 1.0], [2])
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = EmbeddingCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, code(1.0));
        assert_eq!(c.get(1).unwrap().as_slice(), &[1.0, 2.0]);
        assert!(c.get(2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = EmbeddingCache::new(3);
        c.insert(1, code(1.0));
        c.insert(2, code(2.0));
        c.insert(3, code(3.0));
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(1).is_some());
        c.insert(4, code(4.0));
        assert_eq!(c.len(), 3, "capacity must hold");
        assert!(c.peek(2).is_none(), "LRU entry 2 should have been evicted");
        assert!(c.peek(1).is_some() && c.peek(3).is_some() && c.peek(4).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.recency_keys(), vec![4, 1, 3]);
    }

    #[test]
    fn sustained_pressure_keeps_len_at_capacity() {
        let mut c = EmbeddingCache::new(8);
        for k in 0..1000u64 {
            c.insert(k, code(k as f32));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 992);
        // The survivors are exactly the 8 most recent keys.
        for k in 992..1000 {
            assert!(c.peek(k).is_some());
        }
    }

    #[test]
    fn refresh_updates_payload_without_growth() {
        let mut c = EmbeddingCache::new(2);
        c.insert(7, code(1.0));
        c.insert(7, code(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7).unwrap().as_slice(), &[9.0, 10.0]);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = EmbeddingCache::new(0);
        c.insert(1, code(1.0));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn clear_preserves_telemetry() {
        let mut c = EmbeddingCache::new(2);
        c.insert(1, code(1.0));
        let _ = c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert(2, code(2.0));
        assert_eq!(c.get(2).unwrap().as_slice(), &[2.0, 3.0]);
    }
}
