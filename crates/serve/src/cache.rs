//! The embedding cache: an O(1) LRU keyed by canonical AST hash.
//!
//! Encoders are pure functions of the [`AstGraph`](ccsa_cppast::AstGraph),
//! and [`AstGraph::canonical_hash`](ccsa_cppast::AstGraph::canonical_hash)
//! is a pure function of the graph — so a cached latent code can be
//! reused for *any* resubmission of structurally identical source (same
//! code re-scored against a new candidate, identifier renames, literal
//! tweaks). On a hit, serving skips the tree-LSTM/GCN encoder entirely
//! and only the 2·d-weight classifier head runs.
//!
//! Implementation: a slab of entries threaded onto an intrusive
//! doubly-linked recency list, plus a `HashMap` from key to slab index.
//! `get`, `insert` and eviction are all O(1).
//!
//! # Quantized storage
//!
//! At millions of entries the cache is the process's memory bill, and
//! latent codes are tanh-bounded — ideal for narrow formats. A cache
//! can be configured ([`CachePrecision`]) to hold codes as f16 bits
//! (2× capacity per byte) or per-code affine int8 (≈4×): codes are
//! quantized once on insert ([`StoredCode::encode`]) and dequantized on
//! every read, so the classifier head always runs in f32. Each stripe
//! tracks its at-rest payload bytes ([`EmbeddingCache::bytes`]), the
//! number behind the `ccsa_cache_bytes` gauge.
//!
//! # Persistence
//!
//! Canonical AST hashes are stable across processes, so a cache can be
//! spilled to disk ([`EmbeddingCache::snapshot_to`]) and reloaded into a
//! fresh process ([`EmbeddingCache::load_from`]) to start warm. Cache
//! *keys* are salted per model registration (see the engine), which is
//! process-local — so both calls take the salt and store the *unsalted*
//! canonical hash on disk, plus a caller-chosen `tag` identifying which
//! model's entries to spill (entries are tagged at insert time via
//! [`EmbeddingCache::insert_tagged`]). A latent code is only meaningful
//! for the weights that produced it, so every snapshot carries a weights
//! `digest` and loading verifies it: a snapshot from a retrained model
//! is refused ([`SnapshotError::WrongModel`]) instead of silently
//! serving stale embeddings.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use crate::lockdep::DMutex;

use ccsa_tensor::Tensor;

const NIL: usize = usize::MAX;

/// Stripe count [`ShardedCache`] uses when a config leaves it at 0.
pub const DEFAULT_CACHE_STRIPES: usize = 16;

/// Magic prefix of a cache snapshot file.
const SNAPSHOT_MAGIC: &[u8; 4] = b"CCSC";
/// Current snapshot format version. v1 (f32 only, no precision tag) is
/// still read; v2 adds one precision byte after the weights digest and
/// per-precision entry payloads.
const SNAPSHOT_VERSION: u32 = 2;
/// Upper bounds on snapshot contents: snapshots may come from disk that
/// rotted or was tampered with, so implausible sizes are rejected instead
/// of allocated.
const MAX_SNAPSHOT_ENTRIES: u32 = 16_000_000;
const MAX_CODE_LEN: u32 = 1 << 20;

/// How a cache stores latent codes at rest.
///
/// Latent codes are tanh-bounded (every element in (-1, 1)), which is
/// the friendliest possible regime for narrow formats: `F16` keeps
/// ~3 decimal digits (max element error 2⁻¹¹ on that range, half the
/// memory), `Int8` keeps ~2 digits (max element error `scale/2` with a
/// per-code affine scale, a quarter of the memory). `F32` is lossless.
/// The classifier head always runs in f32 — narrow codes are
/// dequantized on read — so quantization trades a bounded embedding
/// perturbation for 2–4× effective cache capacity at the same byte
/// budget. `F16` additionally preserves NaN/∞; `Int8` assumes finite
/// codes (non-finite elements clamp instead of poisoning the code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePrecision {
    /// Full-precision storage (lossless; 4 bytes/element).
    #[default]
    F32,
    /// IEEE-754 binary16 bits (2 bytes/element, round-to-nearest-even).
    F16,
    /// Per-code affine u8 quantization (1 byte/element + 8 bytes of
    /// scale/offset per code).
    Int8,
}

impl CachePrecision {
    /// Storage bytes per code element (excluding per-code constants).
    pub fn bytes_per_element(self) -> usize {
        match self {
            CachePrecision::F32 => 4,
            CachePrecision::F16 => 2,
            CachePrecision::Int8 => 1,
        }
    }

    fn tag_byte(self) -> u8 {
        match self {
            CachePrecision::F32 => 0,
            CachePrecision::F16 => 1,
            CachePrecision::Int8 => 2,
        }
    }

    fn from_tag_byte(tag: u8) -> Option<CachePrecision> {
        match tag {
            0 => Some(CachePrecision::F32),
            1 => Some(CachePrecision::F16),
            2 => Some(CachePrecision::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for CachePrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CachePrecision::F32 => "f32",
            CachePrecision::F16 => "f16",
            CachePrecision::Int8 => "int8",
        })
    }
}

impl FromStr for CachePrecision {
    type Err = String;

    fn from_str(s: &str) -> Result<CachePrecision, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" | "fp32" => Ok(CachePrecision::F32),
            "f16" | "fp16" | "half" => Ok(CachePrecision::F16),
            "int8" | "i8" | "u8" => Ok(CachePrecision::Int8),
            other => Err(format!(
                "unknown cache precision '{other}' (expected f32, f16 or int8)"
            )),
        }
    }
}

/// f32 → IEEE-754 binary16 bits, round-to-nearest-even (hand-rolled:
/// the build is hermetic, so no `half` crate). Overflow goes to ±∞,
/// NaN stays NaN (quieted, payload truncated), subnormals are exact.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    use std::cmp::Ordering;
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // ∞ or NaN.
        return if abs > 0x7f80_0000 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    let exp = ((abs >> 23) as i32) - 127 + 15;
    let mant = abs & 0x007f_ffff;
    if exp >= 31 {
        return sign | 0x7c00; // overflow → ±∞
    }
    if exp <= 0 {
        if exp < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal result: implicit leading 1, shifted into 10 bits.
        let m = mant | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let half = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            Ordering::Greater => half + 1,
            Ordering::Equal => half + (half & 1),
            Ordering::Less => half,
        };
        return sign | rounded as u16;
    }
    let mut h = ((exp as u32) << 10) | (mant >> 13);
    match (mant & 0x1fff).cmp(&0x1000) {
        // A mantissa carry rolls into the exponent, which is exactly
        // the right behavior (including rounding up to ∞).
        Ordering::Greater => h += 1,
        Ordering::Equal => h += h & 1,
        Ordering::Less => {}
    }
    sign | h as u16
}

/// The dequantize-on-read lookup table: all 65536 f16 bit patterns
/// expanded to f32, built once on first use (256 KiB — smaller than one
/// cached batch of codes). The branchy [`f16_bits_to_f32`] converter
/// cost ~4.6× an f32 read per element on the cache-hit path
/// (`BENCH_kernels.json`, PR 8); a table read is one indexed load.
/// [`f16_bits_to_f32`] remains the reference — an exhaustive test pins
/// the table to it over every bit pattern.
fn f16_table() -> &'static [f32; 65536] {
    static TABLE: OnceLock<Box<[f32; 65536]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f32; 65536].into_boxed_slice();
        for (h, slot) in t.iter_mut().enumerate() {
            *slot = f16_bits_to_f32(h as u16);
        }
        t.try_into().expect("65536 entries")
    })
}

/// Table-driven f16 → f32 for the read path (see [`f16_table`]).
#[inline]
pub fn f16_bits_to_f32_lut(h: u16) -> f32 {
    f16_table()[h as usize]
}

/// IEEE-754 binary16 bits → f32 (exact: every f16 value is
/// representable in f32). Reference converter; the hot read path uses
/// [`f16_bits_to_f32_lut`].
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = (h & 0x3ff) as u32;
    match exp {
        0 => {
            // ±0 or subnormal: mant × 2⁻²⁴, exact in f32.
            let v = mant as f32 * f32::from_bits(0x3380_0000);
            if sign != 0 {
                -v
            } else {
                v
            }
        }
        31 => f32::from_bits(sign | 0x7f80_0000 | (mant << 13)),
        _ => f32::from_bits(sign | ((exp as u32 + 112) << 23) | (mant << 13)),
    }
}

/// A latent code at rest, in one of the [`CachePrecision`] formats.
///
/// Narrow variants share their payload behind an [`Arc`] so cloning an
/// entry out of the cache (get, snapshot extraction) never copies the
/// quantized bytes. Snapshots store this exact representation, so a
/// quantize → snapshot → load round-trip is bit-exact (no re-quantize
/// drift).
#[derive(Debug, Clone, PartialEq)]
pub enum StoredCode {
    /// Lossless f32 (the tensor's buffer is already `Arc`-backed).
    F32(Tensor),
    /// binary16 bits per element.
    F16(Arc<Vec<u16>>),
    /// Affine u8: `value = min + q · scale`.
    Int8 {
        /// Quantized elements.
        q: Arc<Vec<u8>>,
        /// Step between adjacent quantization levels.
        scale: f32,
        /// Value of level 0.
        min: f32,
    },
}

impl StoredCode {
    /// Quantizes a code for storage at `precision`.
    pub fn encode(code: &Tensor, precision: CachePrecision) -> StoredCode {
        match precision {
            CachePrecision::F32 => StoredCode::F32(code.clone()),
            CachePrecision::F16 => StoredCode::F16(Arc::new(
                code.as_slice()
                    .iter()
                    .map(|&v| f32_to_f16_bits(v))
                    .collect(),
            )),
            CachePrecision::Int8 => {
                let data = code.as_slice();
                // f32::min/max skip NaN operands, so a poisoned element
                // degrades to a clamped level instead of a NaN range.
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for &v in data {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let (min, scale) = if lo.is_finite() && hi.is_finite() && hi > lo {
                    (lo, (hi - lo) / 255.0)
                } else if lo.is_finite() {
                    (lo, 0.0) // constant code (or empty): one level
                } else {
                    (0.0, 0.0)
                };
                let q = data
                    .iter()
                    .map(|&v| {
                        if scale == 0.0 {
                            0
                        } else {
                            // NaN clamps to 0.0 (NaN comparisons are
                            // false), then casts to level 0.
                            ((v - min) / scale).round().clamp(0.0, 255.0) as u8
                        }
                    })
                    .collect();
                StoredCode::Int8 {
                    q: Arc::new(q),
                    scale,
                    min,
                }
            }
        }
    }

    /// Dequantizes back to an f32 tensor for the classifier head.
    pub fn decode(&self) -> Tensor {
        match self {
            StoredCode::F32(t) => t.clone(),
            StoredCode::F16(bits) => {
                // Table lookup per element (not the branchy converter)
                // into a pooled buffer: a warm cache hit allocates
                // nothing.
                let table = f16_table();
                let mut out = ccsa_tensor::pool::take_cap(bits.len());
                out.extend(bits.iter().map(|&h| table[h as usize]));
                Tensor::from_vec(out, [bits.len()])
            }
            StoredCode::Int8 { q, scale, min } => {
                let mut out = ccsa_tensor::pool::take_cap(q.len());
                out.extend(q.iter().map(|&level| min + level as f32 * scale));
                Tensor::from_vec(out, [q.len()])
            }
        }
    }

    /// Which precision this payload is stored at.
    pub fn precision(&self) -> CachePrecision {
        match self {
            StoredCode::F32(_) => CachePrecision::F32,
            StoredCode::F16(_) => CachePrecision::F16,
            StoredCode::Int8 { .. } => CachePrecision::Int8,
        }
    }

    /// Element count of the stored code.
    pub fn len(&self) -> usize {
        match self {
            StoredCode::F32(t) => t.len(),
            StoredCode::F16(bits) => bits.len(),
            StoredCode::Int8 { q, .. } => q.len(),
        }
    }

    /// `true` when the code has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes this code occupies at rest (the number the
    /// `ccsa_cache_bytes` gauge sums; per-entry bookkeeping overhead is
    /// identical across precisions and excluded).
    pub fn payload_bytes(&self) -> usize {
        match self {
            StoredCode::F32(t) => t.len() * 4,
            StoredCode::F16(bits) => bits.len() * 2,
            StoredCode::Int8 { q, .. } => q.len() + 8,
        }
    }
}

struct Entry {
    key: u64,
    tag: u64,
    code: StoredCode,
    prev: usize,
    next: usize,
}

/// Cache observability counters (monotonic; snapshot via
/// [`EmbeddingCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a code.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used map from canonical AST hash to latent code.
pub struct EmbeddingCache {
    capacity: usize,
    precision: CachePrecision,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
    bytes: usize, // payload bytes at rest, maintained incrementally
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` codes at full (f32)
    /// precision. Capacity 0 disables caching (every lookup misses,
    /// nothing is stored).
    pub fn new(capacity: usize) -> EmbeddingCache {
        EmbeddingCache::with_precision(capacity, CachePrecision::F32)
    }

    /// A cache holding at most `capacity` codes stored at `precision`
    /// (quantized on insert, dequantized on read).
    pub fn with_precision(capacity: usize, precision: CachePrecision) -> EmbeddingCache {
        EmbeddingCache {
            capacity,
            precision,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
            bytes: 0,
        }
    }

    /// The storage precision codes are held at.
    pub fn precision(&self) -> CachePrecision {
        self.precision
    }

    /// Payload bytes currently at rest (see
    /// [`StoredCode::payload_bytes`]). O(1): maintained on every
    /// insert, refresh, eviction and clear.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached codes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are preserved — they are monotonic
    /// telemetry, not contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Looks a code up, promoting the entry to most-recently-used.
    /// Quantized entries are dequantized here — the classifier head
    /// always sees f32.
    pub fn get(&mut self, key: u64) -> Option<Tensor> {
        match self.map.get(&key).copied() {
            Some(ix) => {
                self.stats.hits += 1;
                self.detach(ix);
                self.attach_front(ix);
                Some(self.slab[ix].code.decode())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used by tests and
    /// diagnostics). Dequantizes like [`EmbeddingCache::get`].
    pub fn peek(&self, key: u64) -> Option<Tensor> {
        self.map.get(&key).map(|&ix| self.slab[ix].code.decode())
    }

    /// Inserts (or refreshes) a code, evicting the least-recently-used
    /// entry if the cache is at capacity. The entry carries tag 0 ("no
    /// particular owner"); use [`EmbeddingCache::insert_tagged`] when the
    /// entry should be attributable for snapshotting.
    pub fn insert(&mut self, key: u64, code: Tensor) {
        self.insert_tagged(key, 0, code);
    }

    /// Inserts (or refreshes) a code under an owner `tag` — typically the
    /// registration uid of the model that produced it — so
    /// [`EmbeddingCache::snapshot_to`] can later spill exactly that
    /// model's entries. The code is quantized to the cache's precision
    /// here, on the insert path, so reads only ever pay dequantization.
    pub fn insert_tagged(&mut self, key: u64, tag: u64, code: Tensor) {
        self.insert_stored(key, tag, StoredCode::encode(&code, self.precision));
    }

    /// Inserts an already-encoded payload (snapshot warm path: the
    /// stored bytes are inserted exactly, no re-quantization drift).
    /// Callers must match the cache precision — [`EmbeddingCache::
    /// load_from`] refuses mismatched snapshots before getting here —
    /// so a stray mismatched payload is re-encoded through f32 rather
    /// than stored heterogeneously.
    fn insert_stored(&mut self, key: u64, tag: u64, code: StoredCode) {
        if self.capacity == 0 {
            return;
        }
        let code = if code.precision() == self.precision {
            code
        } else {
            StoredCode::encode(&code.decode(), self.precision)
        };
        self.bytes += code.payload_bytes();
        if let Some(&ix) = self.map.get(&key) {
            // Refresh: replace payload and owner, promote.
            self.bytes -= self.slab[ix].code.payload_bytes();
            self.slab[ix].code = code;
            self.slab[ix].tag = tag;
            self.detach(ix);
            self.attach_front(ix);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.bytes -= self.slab[lru].code.payload_bytes();
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slab[ix] = Entry {
                    key,
                    tag,
                    code,
                    prev: NIL,
                    next: NIL,
                };
                ix
            }
            None => {
                self.slab.push(Entry {
                    key,
                    tag,
                    code,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, ix);
        self.attach_front(ix);
        self.stats.insertions += 1;
    }

    /// Keys from most- to least-recently used (diagnostics).
    pub fn recency_keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut ix = self.head;
        while ix != NIL {
            keys.push(self.slab[ix].key);
            ix = self.slab[ix].next;
        }
        keys
    }

    /// Extracts every entry tagged `tag` as (canonical hash, latent
    /// code) pairs, least- to most-recently used. `salt` is the
    /// process-local key salt the entries were inserted under: keys are
    /// un-salted (XOR is involutive) so the pairs carry the stable
    /// canonical hashes, valid in any future process.
    ///
    /// This is the cheap, in-memory half of snapshotting: callers that
    /// hold this cache behind a lock extract under the lock and hand the
    /// pairs to [`write_snapshot`] *after* releasing it, so disk I/O
    /// never stalls serving traffic. Entries are extracted in their
    /// stored (possibly quantized) representation — cloning is O(1) per
    /// entry, and the snapshot preserves the exact at-rest bytes.
    pub fn tagged_entries(&self, tag: u64, salt: u64) -> Vec<(u64, StoredCode)> {
        let mut entries = Vec::new();
        let mut ix = self.tail;
        while ix != NIL {
            let entry = &self.slab[ix];
            if entry.tag == tag {
                entries.push((entry.key ^ salt, entry.code.clone()));
            }
            ix = entry.prev;
        }
        entries
    }

    /// Spills every entry tagged `tag` to `w` (see [`tagged_entries`](
    /// EmbeddingCache::tagged_entries) and [`write_snapshot`]), returning
    /// how many were written. `digest` identifies the weights that
    /// produced the codes; [`EmbeddingCache::load_from`] refuses a
    /// snapshot whose digest does not match.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O failures.
    pub fn snapshot_to<W: Write>(
        &self,
        w: W,
        tag: u64,
        salt: u64,
        digest: u64,
    ) -> Result<usize, SnapshotError> {
        write_snapshot(w, digest, self.precision, &self.tagged_entries(tag, salt))
    }

    /// Loads a snapshot written by [`EmbeddingCache::snapshot_to`],
    /// re-salting every stored canonical hash with `salt` and inserting
    /// the codes under `tag`. Returns how many entries were inserted
    /// (capacity eviction applies as usual, so a small cache keeps only
    /// the most-recently-used suffix of a large snapshot).
    ///
    /// The snapshot's precision must match the cache's: codes are
    /// inserted byte-exact, and silently re-quantizing (f32 → int8) or
    /// pretending to un-quantize (int8 → f32) would change serving
    /// behavior behind the operator's back. Cross-precision warming
    /// requires the explicit [`transcode_snapshot`] step.
    ///
    /// Loading is all-or-nothing: a snapshot that fails to read — I/O
    /// error, corruption, an `expected_digest` mismatch (codes from
    /// different weights), or a precision mismatch — inserts nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure, malformed content, a
    /// weights-digest mismatch, or a precision mismatch.
    pub fn load_from<R: Read>(
        &mut self,
        r: R,
        tag: u64,
        salt: u64,
        expected_digest: u64,
    ) -> Result<usize, SnapshotError> {
        let (precision, entries) = read_snapshot(r, expected_digest)?;
        if precision != self.precision {
            return Err(SnapshotError::PrecisionMismatch {
                snapshot: precision,
                cache: self.precision,
            });
        }
        let count = entries.len();
        for (canonical, code) in entries {
            self.insert_stored(canonical ^ salt, tag, code);
        }
        Ok(count)
    }

    fn detach(&mut self, ix: usize) {
        let (prev, next) = (self.slab[ix].prev, self.slab[ix].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == ix {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == ix {
            self.tail = prev;
        }
        self.slab[ix].prev = NIL;
        self.slab[ix].next = NIL;
    }

    fn attach_front(&mut self, ix: usize) {
        self.slab[ix].prev = NIL;
        self.slab[ix].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NIL {
            self.tail = ix;
        }
    }
}

/// An N-way striped [`EmbeddingCache`]: the serving-side cache.
///
/// One global `Mutex<EmbeddingCache>` serializes every lookup across
/// every connection — on a loaded engine the lock, not the hash map,
/// becomes the hot path. Striping splits the key space over N
/// independent per-stripe LRUs, each behind its own mutex, so
/// concurrent lookups for different keys proceed in parallel and a
/// contended lock only ever serializes 1/N of the traffic.
///
/// Keys are already salted canonical hashes; the stripe selector
/// re-mixes them ([`crate::hash::splitmix64`]) so even an adversarial
/// salt cannot alias the whole key space onto one stripe. The
/// configured capacity is split as evenly as possible and totals
/// *exactly* the configured capacity (the stripe count is capped at the
/// capacity, so no stripe is ever left slotless), and total memory
/// matches the unsharded cache.
///
/// Snapshot compatibility: [`ShardedCache::snapshot_to`] /
/// [`ShardedCache::load_from`] speak the exact CCSC format of
/// [`EmbeddingCache`] — the stripe count is a process-local layout
/// choice that never reaches disk, so a snapshot written with 1 stripe
/// loads into 8 and vice versa.
pub struct ShardedCache {
    stripes: Vec<DMutex<EmbeddingCache>>,
    capacity: usize,
    precision: CachePrecision,
}

impl ShardedCache {
    /// A cache of `capacity` total codes split over `stripes` stripes
    /// (0 stripes → [`DEFAULT_CACHE_STRIPES`]) at full (f32) precision.
    /// Capacity 0 disables caching entirely, as with
    /// [`EmbeddingCache::new`].
    pub fn new(capacity: usize, stripes: usize) -> ShardedCache {
        ShardedCache::with_precision(capacity, stripes, CachePrecision::F32)
    }

    /// Like [`ShardedCache::new`], with codes stored at `precision`
    /// (every stripe quantizes on insert, dequantizes on read).
    pub fn with_precision(
        capacity: usize,
        stripes: usize,
        precision: CachePrecision,
    ) -> ShardedCache {
        let requested = if stripes == 0 {
            DEFAULT_CACHE_STRIPES
        } else {
            stripes
        };
        // Per-stripe capacities sum to exactly `capacity`: floor split
        // with the remainder spread over the first stripes, and the
        // stripe count capped at the capacity so a tiny cache over many
        // stripes never leaves a stripe slotless (capacity 0 keeps the
        // requested count — every stripe disabled, as unsharded).
        let n = if capacity == 0 {
            requested
        } else {
            requested.min(capacity)
        };
        ShardedCache {
            stripes: (0..n)
                .map(|i| {
                    let per = if capacity == 0 {
                        0
                    } else {
                        capacity / n + usize::from(i < capacity % n)
                    };
                    DMutex::new(
                        "serve.cache.stripe",
                        EmbeddingCache::with_precision(per, precision),
                    )
                })
                .collect(),
            capacity,
            precision,
        }
    }

    /// The storage precision every stripe holds codes at.
    pub fn precision(&self) -> CachePrecision {
        self.precision
    }

    /// Total payload bytes at rest across all stripes. Each stripe is
    /// locked once, independently (its counter is O(1)).
    pub fn bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe poisoned").bytes())
            .sum()
    }

    fn stripe_for(&self, key: u64) -> &DMutex<EmbeddingCache> {
        let ix = (crate::hash::splitmix64(key) % self.stripes.len() as u64) as usize;
        &self.stripes[ix]
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total cached codes across all stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe poisoned").len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot, aggregated over stripes.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for stripe in &self.stripes {
            let s = stripe.lock().expect("cache stripe poisoned").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.insertions += s.insertions;
        }
        total
    }

    /// Per-stripe counter snapshots plus current entry counts and
    /// payload bytes, in stripe order — the observability surface for
    /// skew diagnosis (one hot stripe shows up here long before the
    /// aggregate hit-rate moves). Each stripe is locked once,
    /// independently; no cross-stripe lock is ever held.
    pub fn stripe_stats(&self) -> Vec<(CacheStats, usize, usize)> {
        self.stripes
            .iter()
            .map(|stripe| {
                let guard = stripe.lock().expect("cache stripe poisoned");
                (guard.stats(), guard.len(), guard.bytes())
            })
            .collect()
    }

    /// Drops every entry (telemetry counters survive).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("cache stripe poisoned").clear();
        }
    }

    /// Looks a code up, promoting it within its stripe's LRU. Only the
    /// owning stripe is locked.
    pub fn get(&self, key: u64) -> Option<Tensor> {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .get(key)
    }

    /// Peeks without touching recency or counters.
    pub fn peek(&self, key: u64) -> Option<Tensor> {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .peek(key)
    }

    /// Inserts (or refreshes) a code under an owner `tag` (see
    /// [`EmbeddingCache::insert_tagged`]). Only the owning stripe is
    /// locked.
    pub fn insert_tagged(&self, key: u64, tag: u64, code: Tensor) {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .insert_tagged(key, tag, code);
    }

    /// Extracts every entry tagged `tag`, un-salted, stripe by stripe
    /// (within a stripe: least- to most-recently used, like
    /// [`EmbeddingCache::tagged_entries`]). Locks one stripe at a time,
    /// so a live snapshot never stalls the whole cache.
    pub fn tagged_entries(&self, tag: u64, salt: u64) -> Vec<(u64, StoredCode)> {
        let mut entries = Vec::new();
        for stripe in &self.stripes {
            entries.extend(
                stripe
                    .lock()
                    .expect("cache stripe poisoned")
                    .tagged_entries(tag, salt),
            );
        }
        entries
    }

    /// Inserts already-read snapshot entries, routing each key to its
    /// stripe. The shared loading half of [`ShardedCache::load_from`]
    /// and the engine's warm path. Payloads matching the cache
    /// precision are stored byte-exact; mismatches are re-encoded
    /// through f32 (prefer [`transcode_snapshot`] + a matching load,
    /// which makes the conversion explicit).
    pub fn insert_entries(&self, entries: Vec<(u64, StoredCode)>, tag: u64, salt: u64) {
        for (canonical, code) in entries {
            self.stripe_for(canonical ^ salt)
                .lock()
                .expect("cache stripe poisoned")
                .insert_stored(canonical ^ salt, tag, code);
        }
    }

    /// Spills every entry tagged `tag` to `w` in the CCSC format —
    /// byte-compatible with [`EmbeddingCache::snapshot_to`] regardless
    /// of stripe count.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O failures.
    pub fn snapshot_to<W: Write>(
        &self,
        w: W,
        tag: u64,
        salt: u64,
        digest: u64,
    ) -> Result<usize, SnapshotError> {
        write_snapshot(w, digest, self.precision, &self.tagged_entries(tag, salt))
    }

    /// Loads a CCSC snapshot (written by either cache type, with any
    /// stripe count), re-salting and re-striping every entry. The
    /// snapshot precision must match the cache precision (see
    /// [`EmbeddingCache::load_from`]); use [`transcode_snapshot`] for
    /// explicit conversion.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure, malformed content, a
    /// weights-digest mismatch, or a precision mismatch; a failed load
    /// inserts nothing.
    pub fn load_from<R: Read>(
        &self,
        r: R,
        tag: u64,
        salt: u64,
        expected_digest: u64,
    ) -> Result<usize, SnapshotError> {
        let (precision, entries) = read_snapshot(r, expected_digest)?;
        if precision != self.precision {
            return Err(SnapshotError::PrecisionMismatch {
                snapshot: precision,
                cache: self.precision,
            });
        }
        let count = entries.len();
        self.insert_entries(entries, tag, salt);
        Ok(count)
    }
}

/// Writes (canonical hash, stored code) pairs as a snapshot document
/// at `precision` (which every payload must already be encoded at).
/// `digest` identifies the weights that produced the codes (see
/// [`SnapshotError::WrongModel`]). Returns the number of entries
/// written.
///
/// # Errors
///
/// Propagates writer I/O failures.
pub fn write_snapshot<W: Write>(
    mut w: W,
    digest: u64,
    precision: CachePrecision,
    entries: &[(u64, StoredCode)],
) -> Result<usize, SnapshotError> {
    w.write_all(SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&digest.to_le_bytes())?;
    w.write_all(&[precision.tag_byte()])?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    // Entry payloads are framed into one buffer per entry (bulk writes,
    // not one syscall-layer call per float) and run through a checksum:
    // the trailing value lets the reader reject bit rot in the body, not
    // just a damaged header.
    let mut checksum = crate::hash::Fnv1a::new();
    let mut frame: Vec<u8> = Vec::new();
    for (canonical, code) in entries {
        debug_assert_eq!(code.precision(), precision, "heterogeneous snapshot");
        frame.clear();
        frame.extend_from_slice(&canonical.to_le_bytes());
        frame.extend_from_slice(&(code.len() as u32).to_le_bytes());
        match code {
            StoredCode::F32(t) => {
                for &v in t.as_slice() {
                    frame.extend_from_slice(&v.to_le_bytes());
                }
            }
            StoredCode::F16(bits) => {
                for &h in bits.iter() {
                    frame.extend_from_slice(&h.to_le_bytes());
                }
            }
            StoredCode::Int8 { q, scale, min } => {
                frame.extend_from_slice(&scale.to_le_bytes());
                frame.extend_from_slice(&min.to_le_bytes());
                frame.extend_from_slice(q);
            }
        }
        checksum.write(&frame);
        w.write_all(&frame)?;
    }
    w.write_all(&checksum.finish().to_le_bytes())?;
    Ok(entries.len())
}

/// Reads a snapshot document back into its precision and (canonical
/// hash, stored code) pairs, verifying the stored weights digest
/// against `expected_digest`. v1 documents (written before the
/// precision tag existed) read as [`CachePrecision::F32`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure, malformed content, or a
/// digest mismatch.
pub fn read_snapshot<R: Read>(
    r: R,
    expected_digest: u64,
) -> Result<(CachePrecision, Vec<(u64, StoredCode)>), SnapshotError> {
    let (_, precision, entries) = read_snapshot_impl(r, Some(expected_digest))?;
    Ok((precision, entries))
}

/// A fully decoded snapshot: (weights digest, storage precision,
/// `(canonical hash, stored code)` entries).
pub type SnapshotContents = (u64, CachePrecision, Vec<(u64, StoredCode)>);

/// Reads a snapshot document without a digest expectation, returning
/// the stored digest alongside the contents — the read half of
/// [`transcode_snapshot`], which must preserve the original digest.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure or malformed content.
pub fn read_snapshot_any<R: Read>(r: R) -> Result<SnapshotContents, SnapshotError> {
    read_snapshot_impl(r, None)
}

fn read_snapshot_impl<R: Read>(
    mut r: R,
    expected_digest: Option<u64>,
) -> Result<SnapshotContents, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt(
            "not a CCSA cache snapshot".to_string(),
        ));
    }
    let version = read_u32(&mut r)?;
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let mut digest = [0u8; 8];
    r.read_exact(&mut digest)?;
    let found = u64::from_le_bytes(digest);
    if let Some(expected) = expected_digest {
        if found != expected {
            return Err(SnapshotError::WrongModel { expected, found });
        }
    }
    // v1 predates quantized storage: no precision byte, f32 payloads.
    let precision = if version == 1 {
        CachePrecision::F32
    } else {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        CachePrecision::from_tag_byte(tag[0])
            .ok_or_else(|| SnapshotError::Corrupt(format!("unknown precision tag {}", tag[0])))?
    };
    let count = read_u32(&mut r)?;
    if count > MAX_SNAPSHOT_ENTRIES {
        return Err(SnapshotError::Corrupt(format!(
            "implausible entry count {count}"
        )));
    }
    let mut checksum = crate::hash::Fnv1a::new();
    let mut entries = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        let mut head = [0u8; 12];
        r.read_exact(&mut head)?;
        checksum.write(&head);
        let canonical = u64::from_le_bytes(head[..8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(head[8..].try_into().expect("4-byte slice"));
        if len > MAX_CODE_LEN {
            return Err(SnapshotError::Corrupt(format!(
                "implausible code length {len}"
            )));
        }
        let len = len as usize;
        let code = match precision {
            CachePrecision::F32 => {
                let mut raw = vec![0u8; len * 4];
                r.read_exact(&mut raw)?;
                checksum.write(&raw);
                let data: Vec<f32> = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                StoredCode::F32(Tensor::from_vec(data, [len]))
            }
            CachePrecision::F16 => {
                let mut raw = vec![0u8; len * 2];
                r.read_exact(&mut raw)?;
                checksum.write(&raw);
                let bits: Vec<u16> = raw
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
                    .collect();
                StoredCode::F16(Arc::new(bits))
            }
            CachePrecision::Int8 => {
                let mut params = [0u8; 8];
                r.read_exact(&mut params)?;
                checksum.write(&params);
                let scale = f32::from_le_bytes(params[..4].try_into().expect("4-byte slice"));
                let min = f32::from_le_bytes(params[4..].try_into().expect("4-byte slice"));
                let mut q = vec![0u8; len];
                r.read_exact(&mut q)?;
                checksum.write(&q);
                StoredCode::Int8 {
                    q: Arc::new(q),
                    scale,
                    min,
                }
            }
        };
        entries.push((canonical, code));
    }
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)?;
    if u64::from_le_bytes(stored) != checksum.finish() {
        return Err(SnapshotError::Corrupt(
            "body checksum mismatch (bit rot or tampering)".to_string(),
        ));
    }
    Ok((found, precision, entries))
}

/// Explicitly converts a snapshot to `target` precision, preserving
/// the stored weights digest — the only supported way to warm a cache
/// whose precision differs from the snapshot's. The conversion routes
/// through f32, so narrowing (f32 → f16/int8) loses exactly the
/// quantization error and widening (int8 → f32) recovers only the
/// dequantized values, not the originals. Returns the entry count.
///
/// # Errors
///
/// Returns [`SnapshotError`] on read failure, malformed content, or
/// writer I/O failure.
pub fn transcode_snapshot<R: Read, W: Write>(
    r: R,
    w: W,
    target: CachePrecision,
) -> Result<usize, SnapshotError> {
    let (digest, _, entries) = read_snapshot_any(r)?;
    let converted: Vec<(u64, StoredCode)> = entries
        .into_iter()
        .map(|(canonical, code)| (canonical, StoredCode::encode(&code.decode(), target)))
        .collect();
    write_snapshot(w, digest, target, &converted)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SnapshotError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Why a cache snapshot failed to write or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid snapshot content.
    Corrupt(String),
    /// The snapshot was written under different model weights — loading
    /// it would serve another model's embeddings.
    WrongModel {
        /// The digest of the weights being warmed.
        expected: u64,
        /// The digest stored in the snapshot.
        found: u64,
    },
    /// The snapshot stores codes at a different precision than the
    /// cache being warmed — loading would either silently re-quantize
    /// or silently widen; use [`transcode_snapshot`] to convert
    /// explicitly.
    PrecisionMismatch {
        /// Precision stored in the snapshot.
        snapshot: CachePrecision,
        /// Precision of the cache refusing it.
        cache: CachePrecision,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "cache snapshot i/o error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt cache snapshot: {msg}"),
            SnapshotError::WrongModel { expected, found } => write!(
                f,
                "cache snapshot was written under different model weights \
                 (digest {found:016x}, expected {expected:016x})"
            ),
            SnapshotError::PrecisionMismatch { snapshot, cache } => write!(
                f,
                "cache snapshot stores {snapshot} codes but the cache is \
                 configured for {cache}; transcode the snapshot explicitly \
                 to warm across precisions"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt(_)
            | SnapshotError::WrongModel { .. }
            | SnapshotError::PrecisionMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(v: f32) -> Tensor {
        Tensor::from_vec(vec![v, v + 1.0], [2])
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = EmbeddingCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, code(1.0));
        assert_eq!(c.get(1).unwrap().as_slice(), &[1.0, 2.0]);
        assert!(c.get(2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = EmbeddingCache::new(3);
        c.insert(1, code(1.0));
        c.insert(2, code(2.0));
        c.insert(3, code(3.0));
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(1).is_some());
        c.insert(4, code(4.0));
        assert_eq!(c.len(), 3, "capacity must hold");
        assert!(c.peek(2).is_none(), "LRU entry 2 should have been evicted");
        assert!(c.peek(1).is_some() && c.peek(3).is_some() && c.peek(4).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.recency_keys(), vec![4, 1, 3]);
    }

    #[test]
    fn sustained_pressure_keeps_len_at_capacity() {
        let mut c = EmbeddingCache::new(8);
        for k in 0..1000u64 {
            c.insert(k, code(k as f32));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 992);
        // The survivors are exactly the 8 most recent keys.
        for k in 992..1000 {
            assert!(c.peek(k).is_some());
        }
    }

    #[test]
    fn refresh_updates_payload_without_growth() {
        let mut c = EmbeddingCache::new(2);
        c.insert(7, code(1.0));
        c.insert(7, code(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7).unwrap().as_slice(), &[9.0, 10.0]);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = EmbeddingCache::new(0);
        c.insert(1, code(1.0));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn snapshot_roundtrips_tagged_entries_with_resalting() {
        let mut c = EmbeddingCache::new(8);
        let (old_salt, new_salt, tag) = (0xAAAA_BBBB_CCCC_DDDD, 0x1111_2222_3333_4444, 7);
        // Three entries for `tag`, one foreign entry that must not spill.
        c.insert_tagged(10 ^ old_salt, tag, code(1.0));
        c.insert_tagged(20 ^ old_salt, tag, code(2.0));
        c.insert_tagged(30 ^ old_salt, tag, code(3.0));
        c.insert_tagged(99, 5, code(9.0));
        // Touch 10 so recency is 10 > 30 > 20 within the tag.
        assert!(c.get(10 ^ old_salt).is_some());

        let mut buf = Vec::new();
        assert_eq!(c.snapshot_to(&mut buf, tag, old_salt, 0xD1).unwrap(), 3);

        // A fresh process: new cache, new salt for the same model.
        let mut fresh = EmbeddingCache::new(8);
        assert_eq!(
            fresh
                .load_from(buf.as_slice(), tag, new_salt, 0xD1)
                .unwrap(),
            3
        );
        assert_eq!(fresh.len(), 3);
        assert_eq!(
            fresh.peek(10 ^ new_salt).unwrap().as_slice(),
            &[1.0, 2.0],
            "canonical hash must resolve under the new salt"
        );
        assert!(fresh.peek(99).is_none(), "foreign tag must not leak");
        // Recency order survived: MRU first.
        assert_eq!(
            fresh.recency_keys(),
            vec![10 ^ new_salt, 30 ^ new_salt, 20 ^ new_salt]
        );
    }

    #[test]
    fn snapshot_load_respects_capacity() {
        let mut c = EmbeddingCache::new(16);
        for k in 0..10u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        let mut buf = Vec::new();
        assert_eq!(c.snapshot_to(&mut buf, 1, 0, 0).unwrap(), 10);
        // A smaller cache keeps only the most-recent suffix.
        let mut small = EmbeddingCache::new(4);
        assert_eq!(small.load_from(buf.as_slice(), 1, 0, 0).unwrap(), 10);
        assert_eq!(small.len(), 4);
        for k in 6..10u64 {
            assert!(small.peek(k).is_some(), "key {k} should have survived");
        }
    }

    #[test]
    fn snapshot_load_rejects_garbage() {
        let mut c = EmbeddingCache::new(4);
        assert!(matches!(
            c.load_from(&b"NOPE"[..], 0, 0, 0),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(c.load_from(&b"CC"[..], 0, 0, 0).is_err());
        // Truncated snapshot: error, nothing inserted (all-or-nothing).
        let mut full = EmbeddingCache::new(4);
        full.insert_tagged(1, 1, code(1.0));
        full.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        full.snapshot_to(&mut buf, 1, 0, 0).unwrap();
        buf.truncate(buf.len() - 3);
        let mut partial = EmbeddingCache::new(4);
        assert!(partial.load_from(buf.as_slice(), 1, 0, 0).is_err());
        assert!(partial.is_empty(), "a bad snapshot must insert nothing");
    }

    #[test]
    fn snapshot_load_rejects_flipped_body_bits() {
        // The trailing checksum covers the body: single-bit rot in a
        // stored code (or key) must be refused, not silently served.
        let mut c = EmbeddingCache::new(4);
        c.insert_tagged(1, 1, code(1.0));
        c.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0).unwrap();
        let mut rotted = buf.clone();
        let mid = 24 + (rotted.len() - 24 - 8) / 2; // inside the body
        rotted[mid] ^= 0x10;
        let mut fresh = EmbeddingCache::new(4);
        let err = fresh.load_from(rotted.as_slice(), 1, 0, 0).unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Corrupt(m) if m.contains("checksum")),
            "{err}"
        );
        assert!(fresh.is_empty());
        // The pristine copy still loads.
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0).unwrap(), 2);
    }

    #[test]
    fn snapshot_load_rejects_wrong_weights_digest() {
        // A snapshot from one set of weights must never warm another:
        // latent codes are only meaningful under the weights that
        // produced them.
        let mut c = EmbeddingCache::new(4);
        c.insert_tagged(1, 1, code(1.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0xAAAA).unwrap();
        let mut fresh = EmbeddingCache::new(4);
        assert!(matches!(
            fresh.load_from(buf.as_slice(), 1, 0, 0xBBBB),
            Err(SnapshotError::WrongModel {
                expected: 0xBBBB,
                found: 0xAAAA
            })
        ));
        assert!(fresh.is_empty());
        // The right digest still loads.
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0xAAAA).unwrap(), 1);
    }

    #[test]
    fn sharded_cache_basic_ops_and_capacity_split() {
        let c = ShardedCache::new(64, 4);
        assert_eq!(c.stripe_count(), 4);
        assert_eq!(c.capacity(), 64);
        assert!(c.is_empty());
        for k in 0..6u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        assert_eq!(c.len(), 6);
        assert_eq!(c.get(3).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(c.get(99).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 6));
        c.clear();
        assert!(c.is_empty());
        // Zero capacity disables storage; zero stripes falls back to the
        // default stripe count rather than panicking on modulo 0.
        let off = ShardedCache::new(0, 0);
        assert_eq!(off.stripe_count(), DEFAULT_CACHE_STRIPES);
        off.insert_tagged(1, 1, code(1.0));
        assert!(off.is_empty());
    }

    #[test]
    fn sharded_cache_evicts_per_stripe_under_pressure() {
        // 1000 inserts into capacity 16 over 4 stripes: the per-stripe
        // capacities sum to exactly the configured budget, so the total
        // length can never exceed it.
        let c = ShardedCache::new(16, 4);
        for k in 0..1000u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        assert!(c.len() <= 16, "len {} exceeds configured capacity", c.len());
        assert!(c.stats().evictions >= 1000 - 16);
        // A capacity smaller than the stripe count shrinks the stripe
        // count instead of over-allocating (16 stripes × ≥1 slot would
        // quadruple a budget of 4).
        let tiny = ShardedCache::new(4, 16);
        assert_eq!(tiny.stripe_count(), 4);
        for k in 0..100u64 {
            tiny.insert_tagged(k, 1, code(k as f32));
        }
        assert!(tiny.len() <= 4, "tiny len {}", tiny.len());
    }

    #[test]
    fn sharded_snapshot_roundtrips_across_stripe_counts() {
        // Stripe count is process-local layout: a snapshot written with
        // one stripe must load into eight (and back) byte-for-byte, and
        // must equally load into a plain EmbeddingCache.
        let (old_salt, new_salt, tag, digest) = (0xAAAA, 0x1111, 7u64, 0xD1u64);
        let single = ShardedCache::new(64, 1);
        for k in 0..10u64 {
            single.insert_tagged((k * 1_000_003) ^ old_salt, tag, code(k as f32));
        }
        let mut buf1 = Vec::new();
        assert_eq!(
            single
                .snapshot_to(&mut buf1, tag, old_salt, digest)
                .unwrap(),
            10
        );

        let striped = ShardedCache::new(64, 8);
        assert_eq!(
            striped
                .load_from(buf1.as_slice(), tag, new_salt, digest)
                .unwrap(),
            10
        );
        assert_eq!(striped.len(), 10);
        for k in 0..10u64 {
            assert_eq!(
                striped.get((k * 1_000_003) ^ new_salt).unwrap().as_slice(),
                &[k as f32, k as f32 + 1.0],
                "entry {k} must survive re-striping"
            );
        }

        // And back: 8 stripes → 1 stripe → plain EmbeddingCache.
        let mut buf8 = Vec::new();
        assert_eq!(
            striped
                .snapshot_to(&mut buf8, tag, new_salt, digest)
                .unwrap(),
            10
        );
        let back = ShardedCache::new(64, 1);
        assert_eq!(back.load_from(buf8.as_slice(), tag, 0, digest).unwrap(), 10);
        let mut flat = EmbeddingCache::new(64);
        assert_eq!(flat.load_from(buf8.as_slice(), tag, 0, digest).unwrap(), 10);
        for k in 0..10u64 {
            assert_eq!(
                back.peek(k * 1_000_003).unwrap().as_slice(),
                flat.peek(k * 1_000_003).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn sharded_load_enforces_weights_digest_and_all_or_nothing() {
        let c = ShardedCache::new(8, 4);
        c.insert_tagged(1, 1, code(1.0));
        c.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0xAAAA).unwrap();

        let fresh = ShardedCache::new(8, 8);
        assert!(matches!(
            fresh.load_from(buf.as_slice(), 1, 0, 0xBBBB),
            Err(SnapshotError::WrongModel {
                expected: 0xBBBB,
                found: 0xAAAA
            })
        ));
        assert!(fresh.is_empty(), "digest refusal must insert nothing");
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 3);
        assert!(fresh.load_from(truncated.as_slice(), 1, 0, 0xAAAA).is_err());
        assert!(fresh.is_empty(), "truncation must insert nothing");
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0xAAAA).unwrap(), 2);
    }

    #[test]
    fn sharded_cache_concurrent_salted_access_never_serves_stale_entries() {
        // The tentpole safety property under concurrency: 8 threads
        // hammering get/insert with two different registration salts
        // (two "models") must never observe another salt's code — the
        // payload of every entry encodes (salt id, canonical hash), so a
        // cross-salt or cross-key leak is detectable on every get.
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(256, 8));
        let salts = [0x1111_2222_3333_4444u64, 0xAAAA_BBBB_CCCC_DDDDu64];
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let which = t % 2;
                    let salt = salts[which];
                    for i in 0..2000u64 {
                        let canonical = (t as u64 * 10_000) + (i % 97);
                        let key = canonical ^ salt;
                        cache.insert_tagged(
                            key,
                            which as u64 + 1,
                            Tensor::from_vec(vec![which as f32, canonical as f32], [2]),
                        );
                        // Probe a key from OUR salt space drawn across all
                        // threads' canonical ranges.
                        let probe_canonical = ((i * 31) % 97) + (i % 8) * 10_000;
                        if let Some(code) = cache.get(probe_canonical ^ salt) {
                            let got = code.as_slice();
                            assert_eq!(
                                got[0], which as f32,
                                "salt {which} observed a code inserted under the other salt"
                            );
                            assert_eq!(
                                got[1], probe_canonical as f32,
                                "key {probe_canonical} served another key's code"
                            );
                        }
                    }
                });
            }
        });
        // Both salt spaces saw traffic: every thread's 97 distinct keys
        // were freshly inserted at least once (repeat inserts are
        // refreshes, which the insertion counter does not count).
        let s = cache.stats();
        assert!(s.insertions >= 8 * 97, "insertions {}", s.insertions);
        assert!(s.hits + s.misses > 0);
    }

    #[test]
    fn clear_preserves_telemetry() {
        let mut c = EmbeddingCache::new(2);
        c.insert(1, code(1.0));
        let _ = c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert(2, code(2.0));
        assert_eq!(c.get(2).unwrap().as_slice(), &[2.0, 3.0]);
    }

    // ---- quantized storage ------------------------------------------

    #[test]
    fn f16_bit_conversion_edge_cases() {
        // Values exactly representable in binary16 survive unchanged.
        for v in [
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            1.0 - 2f32.powi(-11),
            65504.0,
            -65504.0,
        ] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v, "exact value {v}");
        }
        // Signed zero keeps its sign bit.
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        // Round-to-nearest-even: 1 + 2⁻¹¹ sits exactly halfway between
        // 1.0 and 1 + 2⁻¹⁰; the tie goes to the even mantissa (1.0).
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0 + 2f32.powi(-11))), 1.0);
        // Just above the tie rounds up.
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(1.0 + 2f32.powi(-11) + 2f32.powi(-13))),
            1.0 + 2f32.powi(-10)
        );
        // Subnormals (multiples of 2⁻²⁴ below 2⁻¹⁴) convert exactly.
        let sub = 3.0 * 2f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(sub)), sub);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-sub)), -sub);
        // Underflow flushes to zero, overflow saturates to ±∞.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-10)), 0.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e9)), f32::NEG_INFINITY);
        // Specials survive; NaN is quieted but stays NaN.
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7fff, 0x7e00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn lut_matches_reference_converter_for_every_bit_pattern() {
        // The read path is table-driven; the branchy converter is the
        // reference. Exhaustive: all 65536 f16 bit patterns, compared
        // by bits so NaN payloads and signed zeros must agree too.
        for h in 0u16..=u16::MAX {
            assert_eq!(
                f16_bits_to_f32_lut(h).to_bits(),
                f16_bits_to_f32(h).to_bits(),
                "bit pattern {h:#06x}"
            );
        }
    }

    #[test]
    fn stored_code_quantization_error_is_bounded() {
        // A spread of tanh-range values, the regime cached codes live in.
        let n = 257usize;
        let vals: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f32 / (n - 1) as f32;
                (2.0 * (2.0 * t - 1.0) + (i as f32 * 0.37).sin() * 0.01).tanh()
            })
            .collect();
        let t = Tensor::from_vec(vals.clone(), [n]);

        // f16: relative error ≤ 2⁻¹¹ (half-ulp), plus the subnormal floor.
        let f16 = StoredCode::encode(&t, CachePrecision::F16);
        assert_eq!(f16.precision(), CachePrecision::F16);
        assert_eq!(f16.payload_bytes(), n * 2);
        for (&v, &d) in vals.iter().zip(f16.decode().as_slice()) {
            assert!(
                (v - d).abs() <= v.abs() * 2f32.powi(-11) + 2f32.powi(-24),
                "f16 error for {v}: got {d}"
            );
        }

        // int8: affine error ≤ scale/2 with scale = (max − min)/255.
        let int8 = StoredCode::encode(&t, CachePrecision::Int8);
        assert_eq!(int8.precision(), CachePrecision::Int8);
        assert_eq!(int8.payload_bytes(), n + 8);
        let (lo, hi) = vals
            .iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let scale = (hi - lo) / 255.0;
        for (&v, &d) in vals.iter().zip(int8.decode().as_slice()) {
            assert!(
                (v - d).abs() <= scale / 2.0 + 1e-7,
                "int8 error for {v}: got {d} (scale {scale})"
            );
        }

        // f32 is lossless and the endpoints of the int8 range are exact.
        let f32c = StoredCode::encode(&t, CachePrecision::F32);
        assert_eq!(f32c.payload_bytes(), n * 4);
        assert_eq!(f32c.decode().as_slice(), &vals[..]);
        let deq = int8.decode();
        let deq = deq.as_slice();
        let lo_idx = vals.iter().position(|&v| v == lo).unwrap();
        let hi_idx = vals.iter().position(|&v| v == hi).unwrap();
        assert_eq!(deq[lo_idx], lo);
        assert!((deq[hi_idx] - hi).abs() <= 1e-6);

        // Constant codes collapse to one level (scale 0) and are exact.
        let c = Tensor::from_vec(vec![0.75; 16], [16]);
        let stored = StoredCode::encode(&c, CachePrecision::Int8);
        assert_eq!(stored.decode().as_slice(), c.as_slice());
        // Empty codes survive every precision.
        let empty = Tensor::from_vec(Vec::new(), [0]);
        for p in [
            CachePrecision::F32,
            CachePrecision::F16,
            CachePrecision::Int8,
        ] {
            let s = StoredCode::encode(&empty, p);
            assert!(s.is_empty());
            assert_eq!(s.decode().len(), 0);
        }
    }

    #[test]
    fn int8_affine_quantization_roundtrip_is_a_projection() {
        // Quantize → dequantize → quantize must be a fixed point: the
        // second pass may not move any value (idempotence is what makes
        // repeated snapshot/restore cycles safe at Int8 precision).
        // Pinned for the Miri job: this exercises the unsafe-free but
        // cast-heavy affine path end to end under the interpreter.
        let vals: Vec<f32> = (0..64)
            .map(|i| ((i as f32) * 0.193).sin() * 1.7 - 0.3)
            .collect();
        let t = Tensor::from_vec(vals, [64]);
        let once = StoredCode::encode(&t, CachePrecision::Int8).decode();
        let twice = StoredCode::encode(&once, CachePrecision::Int8).decode();
        assert_eq!(once.as_slice(), twice.as_slice());
        // And the re-encoded payload is byte-identical in size/precision.
        let again = StoredCode::encode(&once, CachePrecision::Int8);
        assert_eq!(again.precision(), CachePrecision::Int8);
        assert_eq!(
            again.payload_bytes(),
            StoredCode::encode(&t, CachePrecision::Int8).payload_bytes()
        );
    }

    #[test]
    fn f16_preserves_specials_and_int8_degrades_them_finitely() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.5], [4]);
        let d = StoredCode::encode(&t, CachePrecision::F16).decode();
        assert!(d.as_slice()[0].is_nan());
        assert_eq!(d.as_slice()[1], f32::INFINITY);
        assert_eq!(d.as_slice()[2], f32::NEG_INFINITY);
        assert_eq!(d.as_slice()[3], 0.5);
        // int8 assumes finite codes: a non-finite range collapses to one
        // level at 0.0 instead of poisoning every element with NaN.
        let d = StoredCode::encode(&t, CachePrecision::Int8).decode();
        assert!(d.as_slice().iter().all(|v| v.is_finite()));
        // NaN elements among finite neighbors clamp to the minimum level.
        let t = Tensor::from_vec(vec![f32::NAN, 1.0, 3.0], [3]);
        let d = StoredCode::encode(&t, CachePrecision::Int8).decode();
        assert_eq!(d.as_slice()[0], 1.0);
        assert_eq!(d.as_slice()[1], 1.0);
        assert!((d.as_slice()[2] - 3.0).abs() <= 1e-6);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact_per_precision() {
        for precision in [
            CachePrecision::F32,
            CachePrecision::F16,
            CachePrecision::Int8,
        ] {
            let mut c = EmbeddingCache::with_precision(32, precision);
            assert_eq!(c.precision(), precision);
            for k in 0..12u64 {
                c.insert_tagged(
                    k * 7 + 1,
                    3,
                    Tensor::from_vec(
                        (0..5).map(|i| ((k * 5 + i) as f32 * 0.631).sin()).collect(),
                        [5],
                    ),
                );
            }
            let mut buf = Vec::new();
            assert_eq!(c.snapshot_to(&mut buf, 3, 0, 99).unwrap(), 12);
            let mut back = EmbeddingCache::with_precision(32, precision);
            assert_eq!(back.load_from(buf.as_slice(), 3, 0, 99).unwrap(), 12);
            // Snapshots persist the stored (already-quantized) payload,
            // so the round trip is bit-exact — no re-quantization drift.
            for k in 0..12u64 {
                let key = k * 7 + 1;
                let a = c.peek(key).expect("source entry");
                let b = back.peek(key).expect("restored entry");
                let (a, b) = (a.as_slice(), b.as_slice());
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "precision {precision} key {key}");
                }
            }
            // The sharded cache restores the same snapshot identically.
            let sharded = ShardedCache::with_precision(32, 4, precision);
            assert_eq!(sharded.load_from(buf.as_slice(), 3, 0, 99).unwrap(), 12);
            let a = c.peek(8).unwrap();
            let b = sharded.peek(8).unwrap();
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn snapshot_refuses_cross_precision_loads() {
        let mut f16 = EmbeddingCache::with_precision(8, CachePrecision::F16);
        f16.insert_tagged(1, 1, code(1.0));
        f16.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        f16.snapshot_to(&mut buf, 1, 0, 7).unwrap();

        let mut flat = EmbeddingCache::new(8); // f32 default
        assert!(matches!(
            flat.load_from(buf.as_slice(), 1, 0, 7),
            Err(SnapshotError::PrecisionMismatch {
                snapshot: CachePrecision::F16,
                cache: CachePrecision::F32,
            })
        ));
        assert!(flat.is_empty(), "precision refusal must insert nothing");

        let sharded = ShardedCache::with_precision(8, 2, CachePrecision::Int8);
        assert!(matches!(
            sharded.load_from(buf.as_slice(), 1, 0, 7),
            Err(SnapshotError::PrecisionMismatch {
                snapshot: CachePrecision::F16,
                cache: CachePrecision::Int8,
            })
        ));
        assert!(sharded.is_empty(), "precision refusal must insert nothing");
        // The digest gate still runs before the precision gate.
        assert!(matches!(
            flat.load_from(buf.as_slice(), 1, 0, 8),
            Err(SnapshotError::WrongModel { .. })
        ));
    }

    /// Hand-builds a version-1 snapshot (pre-quantization format: no
    /// precision tag byte, f32 payloads) and checks the back-compat
    /// path: an f32 cache loads it, narrow caches refuse it.
    #[test]
    fn v1_snapshot_loads_into_f32_caches_only() {
        let digest = 0x5150u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CCSC");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version 1
        buf.extend_from_slice(&digest.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes()); // entry count
        let mut checksum = crate::hash::Fnv1a::new();
        for (key, vals) in [(11u64, [0.25f32, -0.5]), (12u64, [1.5f32, 2.5])] {
            let mut frame = Vec::new();
            frame.extend_from_slice(&key.to_le_bytes());
            frame.extend_from_slice(&2u32.to_le_bytes());
            for v in vals {
                frame.extend_from_slice(&v.to_le_bytes());
            }
            checksum.write(&frame);
            buf.extend_from_slice(&frame);
        }
        buf.extend_from_slice(&checksum.finish().to_le_bytes());

        let mut flat = EmbeddingCache::new(8);
        assert_eq!(flat.load_from(buf.as_slice(), 0, 0, digest).unwrap(), 2);
        assert_eq!(flat.peek(11).unwrap().as_slice(), &[0.25, -0.5]);
        assert_eq!(flat.peek(12).unwrap().as_slice(), &[1.5, 2.5]);

        let mut f16 = EmbeddingCache::with_precision(8, CachePrecision::F16);
        assert!(matches!(
            f16.load_from(buf.as_slice(), 0, 0, digest),
            Err(SnapshotError::PrecisionMismatch {
                snapshot: CachePrecision::F32,
                cache: CachePrecision::F16,
            })
        ));
    }

    #[test]
    fn transcode_snapshot_preserves_digest_and_bounds_error() {
        let digest = 0xD1CEu64;
        let mut f32c = EmbeddingCache::new(16);
        for k in 0..6u64 {
            f32c.insert_tagged(
                k + 1,
                2,
                Tensor::from_vec(
                    (0..4)
                        .map(|i| ((k * 4 + i) as f32 * 0.417).cos() * 0.9)
                        .collect(),
                    [4],
                ),
            );
        }
        let mut wide = Vec::new();
        f32c.snapshot_to(&mut wide, 2, 0, digest).unwrap();

        // f32 → int8: digest survives, values move by at most scale/2.
        let mut narrow = Vec::new();
        assert_eq!(
            transcode_snapshot(wide.as_slice(), &mut narrow, CachePrecision::Int8).unwrap(),
            6
        );
        let (found, precision, _) = read_snapshot_any(narrow.as_slice()).unwrap();
        assert_eq!(found, digest);
        assert_eq!(precision, CachePrecision::Int8);
        let mut int8 = EmbeddingCache::with_precision(16, CachePrecision::Int8);
        assert_eq!(int8.load_from(narrow.as_slice(), 2, 0, digest).unwrap(), 6);
        for k in 0..6u64 {
            let orig = f32c.peek(k + 1).unwrap();
            let deq = int8.peek(k + 1).unwrap();
            let (orig, deq) = (orig.as_slice(), deq.as_slice());
            let (lo, hi) = orig
                .iter()
                .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            let bound = (hi - lo) / 255.0 / 2.0 + 1e-7;
            for (a, b) in orig.iter().zip(deq) {
                assert!((a - b).abs() <= bound, "key {}: {a} vs {b}", k + 1);
            }
        }

        // int8 → f32: widening recovers the dequantized values exactly
        // and the result loads into a default-precision cache.
        let mut widened = Vec::new();
        assert_eq!(
            transcode_snapshot(narrow.as_slice(), &mut widened, CachePrecision::F32).unwrap(),
            6
        );
        let mut back = EmbeddingCache::new(16);
        assert_eq!(back.load_from(widened.as_slice(), 2, 0, digest).unwrap(), 6);
        assert_eq!(
            back.peek(3).unwrap().as_slice(),
            int8.peek(3).unwrap().as_slice()
        );
    }

    #[test]
    fn cache_bytes_tracks_insert_refresh_evict_and_clear() {
        let mut c = EmbeddingCache::with_precision(2, CachePrecision::Int8);
        assert_eq!(c.bytes(), 0);
        c.insert(1, Tensor::from_vec(vec![0.1; 6], [6])); // 6 + 8
        assert_eq!(c.bytes(), 14);
        c.insert(2, Tensor::from_vec(vec![0.2; 10], [10])); // + 10 + 8
        assert_eq!(c.bytes(), 32);
        // Refreshing a key with a different-length code re-accounts it.
        c.insert(1, Tensor::from_vec(vec![0.3; 2], [2])); // 6+8 → 2+8
        assert_eq!(c.bytes(), 28);
        // Eviction releases the displaced entry's bytes (key 2 is LRU).
        c.insert(3, Tensor::from_vec(vec![0.4; 4], [4]));
        assert_eq!(c.bytes(), 10 + 12);
        c.clear();
        assert_eq!(c.bytes(), 0);
        // The sharded aggregate equals the sum over stripes, and f16
        // storage costs exactly half of f32.
        let s16 = ShardedCache::with_precision(64, 4, CachePrecision::F16);
        let s32 = ShardedCache::with_precision(64, 4, CachePrecision::F32);
        for k in 0..16u64 {
            let t = Tensor::from_vec(vec![k as f32 * 0.01; 8], [8]);
            s16.insert_tagged(k, 0, t.clone());
            s32.insert_tagged(k, 0, t);
        }
        assert_eq!(s16.bytes() * 2, s32.bytes());
        assert_eq!(s32.bytes(), 16 * 8 * 4);
    }
}
