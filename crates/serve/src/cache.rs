//! The embedding cache: an O(1) LRU keyed by canonical AST hash.
//!
//! Encoders are pure functions of the [`AstGraph`](ccsa_cppast::AstGraph),
//! and [`AstGraph::canonical_hash`](ccsa_cppast::AstGraph::canonical_hash)
//! is a pure function of the graph — so a cached latent code can be
//! reused for *any* resubmission of structurally identical source (same
//! code re-scored against a new candidate, identifier renames, literal
//! tweaks). On a hit, serving skips the tree-LSTM/GCN encoder entirely
//! and only the 2·d-weight classifier head runs.
//!
//! Implementation: a slab of entries threaded onto an intrusive
//! doubly-linked recency list, plus a `HashMap` from key to slab index.
//! `get`, `insert` and eviction are all O(1).
//!
//! # Persistence
//!
//! Canonical AST hashes are stable across processes, so a cache can be
//! spilled to disk ([`EmbeddingCache::snapshot_to`]) and reloaded into a
//! fresh process ([`EmbeddingCache::load_from`]) to start warm. Cache
//! *keys* are salted per model registration (see the engine), which is
//! process-local — so both calls take the salt and store the *unsalted*
//! canonical hash on disk, plus a caller-chosen `tag` identifying which
//! model's entries to spill (entries are tagged at insert time via
//! [`EmbeddingCache::insert_tagged`]). A latent code is only meaningful
//! for the weights that produced it, so every snapshot carries a weights
//! `digest` and loading verifies it: a snapshot from a retrained model
//! is refused ([`SnapshotError::WrongModel`]) instead of silently
//! serving stale embeddings.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Mutex;

use ccsa_tensor::Tensor;

const NIL: usize = usize::MAX;

/// Stripe count [`ShardedCache`] uses when a config leaves it at 0.
pub const DEFAULT_CACHE_STRIPES: usize = 16;

/// Magic prefix of a cache snapshot file.
const SNAPSHOT_MAGIC: &[u8; 4] = b"CCSC";
/// Snapshot format version.
const SNAPSHOT_VERSION: u32 = 1;
/// Upper bounds on snapshot contents: snapshots may come from disk that
/// rotted or was tampered with, so implausible sizes are rejected instead
/// of allocated.
const MAX_SNAPSHOT_ENTRIES: u32 = 16_000_000;
const MAX_CODE_LEN: u32 = 1 << 20;

struct Entry {
    key: u64,
    tag: u64,
    code: Tensor,
    prev: usize,
    next: usize,
}

/// Cache observability counters (monotonic; snapshot via
/// [`EmbeddingCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a code.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used map from canonical AST hash to latent code.
pub struct EmbeddingCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` codes. Capacity 0 disables
    /// caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> EmbeddingCache {
        EmbeddingCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached codes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are preserved — they are monotonic
    /// telemetry, not contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks a code up, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: u64) -> Option<Tensor> {
        match self.map.get(&key).copied() {
            Some(ix) => {
                self.stats.hits += 1;
                self.detach(ix);
                self.attach_front(ix);
                Some(self.slab[ix].code.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used by tests and
    /// diagnostics).
    pub fn peek(&self, key: u64) -> Option<&Tensor> {
        self.map.get(&key).map(|&ix| &self.slab[ix].code)
    }

    /// Inserts (or refreshes) a code, evicting the least-recently-used
    /// entry if the cache is at capacity. The entry carries tag 0 ("no
    /// particular owner"); use [`EmbeddingCache::insert_tagged`] when the
    /// entry should be attributable for snapshotting.
    pub fn insert(&mut self, key: u64, code: Tensor) {
        self.insert_tagged(key, 0, code);
    }

    /// Inserts (or refreshes) a code under an owner `tag` — typically the
    /// registration uid of the model that produced it — so
    /// [`EmbeddingCache::snapshot_to`] can later spill exactly that
    /// model's entries.
    pub fn insert_tagged(&mut self, key: u64, tag: u64, code: Tensor) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&ix) = self.map.get(&key) {
            // Refresh: replace payload and owner, promote.
            self.slab[ix].code = code;
            self.slab[ix].tag = tag;
            self.detach(ix);
            self.attach_front(ix);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slab[ix] = Entry {
                    key,
                    tag,
                    code,
                    prev: NIL,
                    next: NIL,
                };
                ix
            }
            None => {
                self.slab.push(Entry {
                    key,
                    tag,
                    code,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, ix);
        self.attach_front(ix);
        self.stats.insertions += 1;
    }

    /// Keys from most- to least-recently used (diagnostics).
    pub fn recency_keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut ix = self.head;
        while ix != NIL {
            keys.push(self.slab[ix].key);
            ix = self.slab[ix].next;
        }
        keys
    }

    /// Extracts every entry tagged `tag` as (canonical hash, latent
    /// code) pairs, least- to most-recently used. `salt` is the
    /// process-local key salt the entries were inserted under: keys are
    /// un-salted (XOR is involutive) so the pairs carry the stable
    /// canonical hashes, valid in any future process.
    ///
    /// This is the cheap, in-memory half of snapshotting: callers that
    /// hold this cache behind a lock extract under the lock and hand the
    /// pairs to [`write_snapshot`] *after* releasing it, so disk I/O
    /// never stalls serving traffic.
    pub fn tagged_entries(&self, tag: u64, salt: u64) -> Vec<(u64, Tensor)> {
        let mut entries = Vec::new();
        let mut ix = self.tail;
        while ix != NIL {
            let entry = &self.slab[ix];
            if entry.tag == tag {
                entries.push((entry.key ^ salt, entry.code.clone()));
            }
            ix = entry.prev;
        }
        entries
    }

    /// Spills every entry tagged `tag` to `w` (see [`tagged_entries`](
    /// EmbeddingCache::tagged_entries) and [`write_snapshot`]), returning
    /// how many were written. `digest` identifies the weights that
    /// produced the codes; [`EmbeddingCache::load_from`] refuses a
    /// snapshot whose digest does not match.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O failures.
    pub fn snapshot_to<W: Write>(
        &self,
        w: W,
        tag: u64,
        salt: u64,
        digest: u64,
    ) -> Result<usize, SnapshotError> {
        write_snapshot(w, digest, &self.tagged_entries(tag, salt))
    }

    /// Loads a snapshot written by [`EmbeddingCache::snapshot_to`],
    /// re-salting every stored canonical hash with `salt` and inserting
    /// the codes under `tag`. Returns how many entries were inserted
    /// (capacity eviction applies as usual, so a small cache keeps only
    /// the most-recently-used suffix of a large snapshot).
    ///
    /// Loading is all-or-nothing: a snapshot that fails to read — I/O
    /// error, corruption, or a `expected_digest` mismatch (codes from
    /// different weights) — inserts nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure, malformed content, or a
    /// weights-digest mismatch.
    pub fn load_from<R: Read>(
        &mut self,
        r: R,
        tag: u64,
        salt: u64,
        expected_digest: u64,
    ) -> Result<usize, SnapshotError> {
        let entries = read_snapshot(r, expected_digest)?;
        let count = entries.len();
        for (canonical, code) in entries {
            self.insert_tagged(canonical ^ salt, tag, code);
        }
        Ok(count)
    }

    fn detach(&mut self, ix: usize) {
        let (prev, next) = (self.slab[ix].prev, self.slab[ix].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == ix {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == ix {
            self.tail = prev;
        }
        self.slab[ix].prev = NIL;
        self.slab[ix].next = NIL;
    }

    fn attach_front(&mut self, ix: usize) {
        self.slab[ix].prev = NIL;
        self.slab[ix].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NIL {
            self.tail = ix;
        }
    }
}

/// An N-way striped [`EmbeddingCache`]: the serving-side cache.
///
/// One global `Mutex<EmbeddingCache>` serializes every lookup across
/// every connection — on a loaded engine the lock, not the hash map,
/// becomes the hot path. Striping splits the key space over N
/// independent per-stripe LRUs, each behind its own mutex, so
/// concurrent lookups for different keys proceed in parallel and a
/// contended lock only ever serializes 1/N of the traffic.
///
/// Keys are already salted canonical hashes; the stripe selector
/// re-mixes them ([`crate::hash::splitmix64`]) so even an adversarial
/// salt cannot alias the whole key space onto one stripe. The
/// configured capacity is split as evenly as possible and totals
/// *exactly* the configured capacity (the stripe count is capped at the
/// capacity, so no stripe is ever left slotless), and total memory
/// matches the unsharded cache.
///
/// Snapshot compatibility: [`ShardedCache::snapshot_to`] /
/// [`ShardedCache::load_from`] speak the exact CCSC format of
/// [`EmbeddingCache`] — the stripe count is a process-local layout
/// choice that never reaches disk, so a snapshot written with 1 stripe
/// loads into 8 and vice versa.
pub struct ShardedCache {
    stripes: Vec<Mutex<EmbeddingCache>>,
    capacity: usize,
}

impl ShardedCache {
    /// A cache of `capacity` total codes split over `stripes` stripes
    /// (0 stripes → [`DEFAULT_CACHE_STRIPES`]). Capacity 0 disables
    /// caching entirely, as with [`EmbeddingCache::new`].
    pub fn new(capacity: usize, stripes: usize) -> ShardedCache {
        let requested = if stripes == 0 {
            DEFAULT_CACHE_STRIPES
        } else {
            stripes
        };
        // Per-stripe capacities sum to exactly `capacity`: floor split
        // with the remainder spread over the first stripes, and the
        // stripe count capped at the capacity so a tiny cache over many
        // stripes never leaves a stripe slotless (capacity 0 keeps the
        // requested count — every stripe disabled, as unsharded).
        let n = if capacity == 0 {
            requested
        } else {
            requested.min(capacity)
        };
        ShardedCache {
            stripes: (0..n)
                .map(|i| {
                    let per = if capacity == 0 {
                        0
                    } else {
                        capacity / n + usize::from(i < capacity % n)
                    };
                    Mutex::new(EmbeddingCache::new(per))
                })
                .collect(),
            capacity,
        }
    }

    fn stripe_for(&self, key: u64) -> &Mutex<EmbeddingCache> {
        let ix = (crate::hash::splitmix64(key) % self.stripes.len() as u64) as usize;
        &self.stripes[ix]
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total cached codes across all stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe poisoned").len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot, aggregated over stripes.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for stripe in &self.stripes {
            let s = stripe.lock().expect("cache stripe poisoned").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.insertions += s.insertions;
        }
        total
    }

    /// Per-stripe counter snapshots plus current entry counts, in
    /// stripe order — the observability surface for skew diagnosis
    /// (one hot stripe shows up here long before the aggregate
    /// hit-rate moves). Each stripe is locked once, independently; no
    /// cross-stripe lock is ever held.
    pub fn stripe_stats(&self) -> Vec<(CacheStats, usize)> {
        self.stripes
            .iter()
            .map(|stripe| {
                let guard = stripe.lock().expect("cache stripe poisoned");
                (guard.stats(), guard.len())
            })
            .collect()
    }

    /// Drops every entry (telemetry counters survive).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("cache stripe poisoned").clear();
        }
    }

    /// Looks a code up, promoting it within its stripe's LRU. Only the
    /// owning stripe is locked.
    pub fn get(&self, key: u64) -> Option<Tensor> {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .get(key)
    }

    /// Peeks without touching recency or counters.
    pub fn peek(&self, key: u64) -> Option<Tensor> {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .peek(key)
            .cloned()
    }

    /// Inserts (or refreshes) a code under an owner `tag` (see
    /// [`EmbeddingCache::insert_tagged`]). Only the owning stripe is
    /// locked.
    pub fn insert_tagged(&self, key: u64, tag: u64, code: Tensor) {
        self.stripe_for(key)
            .lock()
            .expect("cache stripe poisoned")
            .insert_tagged(key, tag, code);
    }

    /// Extracts every entry tagged `tag`, un-salted, stripe by stripe
    /// (within a stripe: least- to most-recently used, like
    /// [`EmbeddingCache::tagged_entries`]). Locks one stripe at a time,
    /// so a live snapshot never stalls the whole cache.
    pub fn tagged_entries(&self, tag: u64, salt: u64) -> Vec<(u64, Tensor)> {
        let mut entries = Vec::new();
        for stripe in &self.stripes {
            entries.extend(
                stripe
                    .lock()
                    .expect("cache stripe poisoned")
                    .tagged_entries(tag, salt),
            );
        }
        entries
    }

    /// Inserts already-read snapshot entries, routing each key to its
    /// stripe. The shared loading half of [`ShardedCache::load_from`]
    /// and the engine's warm path.
    pub fn insert_entries(&self, entries: Vec<(u64, Tensor)>, tag: u64, salt: u64) {
        for (canonical, code) in entries {
            self.insert_tagged(canonical ^ salt, tag, code);
        }
    }

    /// Spills every entry tagged `tag` to `w` in the CCSC format —
    /// byte-compatible with [`EmbeddingCache::snapshot_to`] regardless
    /// of stripe count.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O failures.
    pub fn snapshot_to<W: Write>(
        &self,
        w: W,
        tag: u64,
        salt: u64,
        digest: u64,
    ) -> Result<usize, SnapshotError> {
        write_snapshot(w, digest, &self.tagged_entries(tag, salt))
    }

    /// Loads a CCSC snapshot (written by either cache type, with any
    /// stripe count), re-salting and re-striping every entry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure, malformed content, or
    /// a weights-digest mismatch; a failed load inserts nothing.
    pub fn load_from<R: Read>(
        &self,
        r: R,
        tag: u64,
        salt: u64,
        expected_digest: u64,
    ) -> Result<usize, SnapshotError> {
        let entries = read_snapshot(r, expected_digest)?;
        let count = entries.len();
        self.insert_entries(entries, tag, salt);
        Ok(count)
    }
}

/// Writes (canonical hash, latent code) pairs as a snapshot document.
/// `digest` identifies the weights that produced the codes (see
/// [`SnapshotError::WrongModel`]). Returns the number of entries
/// written.
///
/// # Errors
///
/// Propagates writer I/O failures.
pub fn write_snapshot<W: Write>(
    mut w: W,
    digest: u64,
    entries: &[(u64, Tensor)],
) -> Result<usize, SnapshotError> {
    w.write_all(SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&digest.to_le_bytes())?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    // Entry payloads are framed into one buffer per entry (bulk writes,
    // not one syscall-layer call per float) and run through a checksum:
    // the trailing value lets the reader reject bit rot in the body, not
    // just a damaged header.
    let mut checksum = crate::hash::Fnv1a::new();
    let mut frame: Vec<u8> = Vec::new();
    for (canonical, code) in entries {
        frame.clear();
        frame.extend_from_slice(&canonical.to_le_bytes());
        let data = code.as_slice();
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        for &v in data {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        checksum.write(&frame);
        w.write_all(&frame)?;
    }
    w.write_all(&checksum.finish().to_le_bytes())?;
    Ok(entries.len())
}

/// Reads a snapshot document back into (canonical hash, latent code)
/// pairs, verifying the stored weights digest against
/// `expected_digest`.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure, malformed content, or a
/// digest mismatch.
pub fn read_snapshot<R: Read>(
    mut r: R,
    expected_digest: u64,
) -> Result<Vec<(u64, Tensor)>, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt(
            "not a CCSA cache snapshot".to_string(),
        ));
    }
    let version = read_u32(&mut r)?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let mut digest = [0u8; 8];
    r.read_exact(&mut digest)?;
    let found = u64::from_le_bytes(digest);
    if found != expected_digest {
        return Err(SnapshotError::WrongModel {
            expected: expected_digest,
            found,
        });
    }
    let count = read_u32(&mut r)?;
    if count > MAX_SNAPSHOT_ENTRIES {
        return Err(SnapshotError::Corrupt(format!(
            "implausible entry count {count}"
        )));
    }
    let mut checksum = crate::hash::Fnv1a::new();
    let mut entries = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        let mut head = [0u8; 12];
        r.read_exact(&mut head)?;
        checksum.write(&head);
        let canonical = u64::from_le_bytes(head[..8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(head[8..].try_into().expect("4-byte slice"));
        if len > MAX_CODE_LEN {
            return Err(SnapshotError::Corrupt(format!(
                "implausible code length {len}"
            )));
        }
        let mut raw = vec![0u8; len as usize * 4];
        r.read_exact(&mut raw)?;
        checksum.write(&raw);
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        entries.push((canonical, Tensor::from_vec(data, [len as usize])));
    }
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)?;
    if u64::from_le_bytes(stored) != checksum.finish() {
        return Err(SnapshotError::Corrupt(
            "body checksum mismatch (bit rot or tampering)".to_string(),
        ));
    }
    Ok(entries)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SnapshotError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Why a cache snapshot failed to write or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid snapshot content.
    Corrupt(String),
    /// The snapshot was written under different model weights — loading
    /// it would serve another model's embeddings.
    WrongModel {
        /// The digest of the weights being warmed.
        expected: u64,
        /// The digest stored in the snapshot.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "cache snapshot i/o error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt cache snapshot: {msg}"),
            SnapshotError::WrongModel { expected, found } => write!(
                f,
                "cache snapshot was written under different model weights \
                 (digest {found:016x}, expected {expected:016x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt(_) | SnapshotError::WrongModel { .. } => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(v: f32) -> Tensor {
        Tensor::from_vec(vec![v, v + 1.0], [2])
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = EmbeddingCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, code(1.0));
        assert_eq!(c.get(1).unwrap().as_slice(), &[1.0, 2.0]);
        assert!(c.get(2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = EmbeddingCache::new(3);
        c.insert(1, code(1.0));
        c.insert(2, code(2.0));
        c.insert(3, code(3.0));
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(1).is_some());
        c.insert(4, code(4.0));
        assert_eq!(c.len(), 3, "capacity must hold");
        assert!(c.peek(2).is_none(), "LRU entry 2 should have been evicted");
        assert!(c.peek(1).is_some() && c.peek(3).is_some() && c.peek(4).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.recency_keys(), vec![4, 1, 3]);
    }

    #[test]
    fn sustained_pressure_keeps_len_at_capacity() {
        let mut c = EmbeddingCache::new(8);
        for k in 0..1000u64 {
            c.insert(k, code(k as f32));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 992);
        // The survivors are exactly the 8 most recent keys.
        for k in 992..1000 {
            assert!(c.peek(k).is_some());
        }
    }

    #[test]
    fn refresh_updates_payload_without_growth() {
        let mut c = EmbeddingCache::new(2);
        c.insert(7, code(1.0));
        c.insert(7, code(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7).unwrap().as_slice(), &[9.0, 10.0]);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = EmbeddingCache::new(0);
        c.insert(1, code(1.0));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn snapshot_roundtrips_tagged_entries_with_resalting() {
        let mut c = EmbeddingCache::new(8);
        let (old_salt, new_salt, tag) = (0xAAAA_BBBB_CCCC_DDDD, 0x1111_2222_3333_4444, 7);
        // Three entries for `tag`, one foreign entry that must not spill.
        c.insert_tagged(10 ^ old_salt, tag, code(1.0));
        c.insert_tagged(20 ^ old_salt, tag, code(2.0));
        c.insert_tagged(30 ^ old_salt, tag, code(3.0));
        c.insert_tagged(99, 5, code(9.0));
        // Touch 10 so recency is 10 > 30 > 20 within the tag.
        assert!(c.get(10 ^ old_salt).is_some());

        let mut buf = Vec::new();
        assert_eq!(c.snapshot_to(&mut buf, tag, old_salt, 0xD1).unwrap(), 3);

        // A fresh process: new cache, new salt for the same model.
        let mut fresh = EmbeddingCache::new(8);
        assert_eq!(
            fresh
                .load_from(buf.as_slice(), tag, new_salt, 0xD1)
                .unwrap(),
            3
        );
        assert_eq!(fresh.len(), 3);
        assert_eq!(
            fresh.peek(10 ^ new_salt).unwrap().as_slice(),
            &[1.0, 2.0],
            "canonical hash must resolve under the new salt"
        );
        assert!(fresh.peek(99).is_none(), "foreign tag must not leak");
        // Recency order survived: MRU first.
        assert_eq!(
            fresh.recency_keys(),
            vec![10 ^ new_salt, 30 ^ new_salt, 20 ^ new_salt]
        );
    }

    #[test]
    fn snapshot_load_respects_capacity() {
        let mut c = EmbeddingCache::new(16);
        for k in 0..10u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        let mut buf = Vec::new();
        assert_eq!(c.snapshot_to(&mut buf, 1, 0, 0).unwrap(), 10);
        // A smaller cache keeps only the most-recent suffix.
        let mut small = EmbeddingCache::new(4);
        assert_eq!(small.load_from(buf.as_slice(), 1, 0, 0).unwrap(), 10);
        assert_eq!(small.len(), 4);
        for k in 6..10u64 {
            assert!(small.peek(k).is_some(), "key {k} should have survived");
        }
    }

    #[test]
    fn snapshot_load_rejects_garbage() {
        let mut c = EmbeddingCache::new(4);
        assert!(matches!(
            c.load_from(&b"NOPE"[..], 0, 0, 0),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(c.load_from(&b"CC"[..], 0, 0, 0).is_err());
        // Truncated snapshot: error, nothing inserted (all-or-nothing).
        let mut full = EmbeddingCache::new(4);
        full.insert_tagged(1, 1, code(1.0));
        full.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        full.snapshot_to(&mut buf, 1, 0, 0).unwrap();
        buf.truncate(buf.len() - 3);
        let mut partial = EmbeddingCache::new(4);
        assert!(partial.load_from(buf.as_slice(), 1, 0, 0).is_err());
        assert!(partial.is_empty(), "a bad snapshot must insert nothing");
    }

    #[test]
    fn snapshot_load_rejects_flipped_body_bits() {
        // The trailing checksum covers the body: single-bit rot in a
        // stored code (or key) must be refused, not silently served.
        let mut c = EmbeddingCache::new(4);
        c.insert_tagged(1, 1, code(1.0));
        c.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0).unwrap();
        let mut rotted = buf.clone();
        let mid = 24 + (rotted.len() - 24 - 8) / 2; // inside the body
        rotted[mid] ^= 0x10;
        let mut fresh = EmbeddingCache::new(4);
        let err = fresh.load_from(rotted.as_slice(), 1, 0, 0).unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Corrupt(m) if m.contains("checksum")),
            "{err}"
        );
        assert!(fresh.is_empty());
        // The pristine copy still loads.
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0).unwrap(), 2);
    }

    #[test]
    fn snapshot_load_rejects_wrong_weights_digest() {
        // A snapshot from one set of weights must never warm another:
        // latent codes are only meaningful under the weights that
        // produced them.
        let mut c = EmbeddingCache::new(4);
        c.insert_tagged(1, 1, code(1.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0xAAAA).unwrap();
        let mut fresh = EmbeddingCache::new(4);
        assert!(matches!(
            fresh.load_from(buf.as_slice(), 1, 0, 0xBBBB),
            Err(SnapshotError::WrongModel {
                expected: 0xBBBB,
                found: 0xAAAA
            })
        ));
        assert!(fresh.is_empty());
        // The right digest still loads.
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0xAAAA).unwrap(), 1);
    }

    #[test]
    fn sharded_cache_basic_ops_and_capacity_split() {
        let c = ShardedCache::new(64, 4);
        assert_eq!(c.stripe_count(), 4);
        assert_eq!(c.capacity(), 64);
        assert!(c.is_empty());
        for k in 0..6u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        assert_eq!(c.len(), 6);
        assert_eq!(c.get(3).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(c.get(99).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 6));
        c.clear();
        assert!(c.is_empty());
        // Zero capacity disables storage; zero stripes falls back to the
        // default stripe count rather than panicking on modulo 0.
        let off = ShardedCache::new(0, 0);
        assert_eq!(off.stripe_count(), DEFAULT_CACHE_STRIPES);
        off.insert_tagged(1, 1, code(1.0));
        assert!(off.is_empty());
    }

    #[test]
    fn sharded_cache_evicts_per_stripe_under_pressure() {
        // 1000 inserts into capacity 16 over 4 stripes: the per-stripe
        // capacities sum to exactly the configured budget, so the total
        // length can never exceed it.
        let c = ShardedCache::new(16, 4);
        for k in 0..1000u64 {
            c.insert_tagged(k, 1, code(k as f32));
        }
        assert!(c.len() <= 16, "len {} exceeds configured capacity", c.len());
        assert!(c.stats().evictions >= 1000 - 16);
        // A capacity smaller than the stripe count shrinks the stripe
        // count instead of over-allocating (16 stripes × ≥1 slot would
        // quadruple a budget of 4).
        let tiny = ShardedCache::new(4, 16);
        assert_eq!(tiny.stripe_count(), 4);
        for k in 0..100u64 {
            tiny.insert_tagged(k, 1, code(k as f32));
        }
        assert!(tiny.len() <= 4, "tiny len {}", tiny.len());
    }

    #[test]
    fn sharded_snapshot_roundtrips_across_stripe_counts() {
        // Stripe count is process-local layout: a snapshot written with
        // one stripe must load into eight (and back) byte-for-byte, and
        // must equally load into a plain EmbeddingCache.
        let (old_salt, new_salt, tag, digest) = (0xAAAA, 0x1111, 7u64, 0xD1u64);
        let single = ShardedCache::new(64, 1);
        for k in 0..10u64 {
            single.insert_tagged((k * 1_000_003) ^ old_salt, tag, code(k as f32));
        }
        let mut buf1 = Vec::new();
        assert_eq!(
            single
                .snapshot_to(&mut buf1, tag, old_salt, digest)
                .unwrap(),
            10
        );

        let striped = ShardedCache::new(64, 8);
        assert_eq!(
            striped
                .load_from(buf1.as_slice(), tag, new_salt, digest)
                .unwrap(),
            10
        );
        assert_eq!(striped.len(), 10);
        for k in 0..10u64 {
            assert_eq!(
                striped.get((k * 1_000_003) ^ new_salt).unwrap().as_slice(),
                &[k as f32, k as f32 + 1.0],
                "entry {k} must survive re-striping"
            );
        }

        // And back: 8 stripes → 1 stripe → plain EmbeddingCache.
        let mut buf8 = Vec::new();
        assert_eq!(
            striped
                .snapshot_to(&mut buf8, tag, new_salt, digest)
                .unwrap(),
            10
        );
        let back = ShardedCache::new(64, 1);
        assert_eq!(back.load_from(buf8.as_slice(), tag, 0, digest).unwrap(), 10);
        let mut flat = EmbeddingCache::new(64);
        assert_eq!(flat.load_from(buf8.as_slice(), tag, 0, digest).unwrap(), 10);
        for k in 0..10u64 {
            assert_eq!(
                back.peek(k * 1_000_003).unwrap().as_slice(),
                flat.peek(k * 1_000_003).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn sharded_load_enforces_weights_digest_and_all_or_nothing() {
        let c = ShardedCache::new(8, 4);
        c.insert_tagged(1, 1, code(1.0));
        c.insert_tagged(2, 1, code(2.0));
        let mut buf = Vec::new();
        c.snapshot_to(&mut buf, 1, 0, 0xAAAA).unwrap();

        let fresh = ShardedCache::new(8, 8);
        assert!(matches!(
            fresh.load_from(buf.as_slice(), 1, 0, 0xBBBB),
            Err(SnapshotError::WrongModel {
                expected: 0xBBBB,
                found: 0xAAAA
            })
        ));
        assert!(fresh.is_empty(), "digest refusal must insert nothing");
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 3);
        assert!(fresh.load_from(truncated.as_slice(), 1, 0, 0xAAAA).is_err());
        assert!(fresh.is_empty(), "truncation must insert nothing");
        assert_eq!(fresh.load_from(buf.as_slice(), 1, 0, 0xAAAA).unwrap(), 2);
    }

    #[test]
    fn sharded_cache_concurrent_salted_access_never_serves_stale_entries() {
        // The tentpole safety property under concurrency: 8 threads
        // hammering get/insert with two different registration salts
        // (two "models") must never observe another salt's code — the
        // payload of every entry encodes (salt id, canonical hash), so a
        // cross-salt or cross-key leak is detectable on every get.
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(256, 8));
        let salts = [0x1111_2222_3333_4444u64, 0xAAAA_BBBB_CCCC_DDDDu64];
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let which = t % 2;
                    let salt = salts[which];
                    for i in 0..2000u64 {
                        let canonical = (t as u64 * 10_000) + (i % 97);
                        let key = canonical ^ salt;
                        cache.insert_tagged(
                            key,
                            which as u64 + 1,
                            Tensor::from_vec(vec![which as f32, canonical as f32], [2]),
                        );
                        // Probe a key from OUR salt space drawn across all
                        // threads' canonical ranges.
                        let probe_canonical = ((i * 31) % 97) + (i % 8) * 10_000;
                        if let Some(code) = cache.get(probe_canonical ^ salt) {
                            let got = code.as_slice();
                            assert_eq!(
                                got[0], which as f32,
                                "salt {which} observed a code inserted under the other salt"
                            );
                            assert_eq!(
                                got[1], probe_canonical as f32,
                                "key {probe_canonical} served another key's code"
                            );
                        }
                    }
                });
            }
        });
        // Both salt spaces saw traffic: every thread's 97 distinct keys
        // were freshly inserted at least once (repeat inserts are
        // refreshes, which the insertion counter does not count).
        let s = cache.stats();
        assert!(s.insertions >= 8 * 97, "insertions {}", s.insertions);
        assert!(s.hits + s.misses > 0);
    }

    #[test]
    fn clear_preserves_telemetry() {
        let mut c = EmbeddingCache::new(2);
        c.insert(1, code(1.0));
        let _ = c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert(2, code(2.0));
        assert_eq!(c.get(2).unwrap().as_slice(), &[2.0, 3.0]);
    }
}
