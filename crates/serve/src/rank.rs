//! Ranking K candidates by round-robin pairwise comparison.
//!
//! The comparator answers one question — "is A slower than B?" — so
//! ordering K candidate solutions is a tournament: every unordered pair
//! is scored (both orderings, symmetrised), and candidates are ranked by
//! Copeland win count. Tie-breaking is *transitivity-aware*: candidates
//! tied on global wins are re-ranked by their head-to-head results within
//! the tied group, falling back to expected wins (the sum of "faster
//! than" probabilities, a Borda-style margin) when the group's local
//! tournament is cyclic — and cyclic groups are flagged, since a cycle
//! means the model's pairwise answers are not mutually consistent there.

/// One candidate's position in the final ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// Index into the caller's candidate list.
    pub index: usize,
    /// 1-based rank (1 = predicted fastest).
    pub rank: usize,
    /// Round-robin wins (opponent judged slower with p > ½).
    pub wins: usize,
    /// Sum over opponents of P(opponent slower) — the expected win count;
    /// finer-grained than `wins` and used for tie-breaking.
    pub expected_wins: f64,
    /// `true` when this candidate sits in a tied group whose head-to-head
    /// results are cyclic (A beats B beats C beats A): the order within
    /// that group is margin-based, not transitive.
    pub in_cycle: bool,
}

/// Ranks candidates given the symmetrised slower-probability matrix:
/// `p_slower[i][j]` = P(candidate *i* is slower than candidate *j*), for
/// `i != j` (diagonal entries are ignored).
///
/// Returns candidates ordered fastest first.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn rank_from_matrix(p_slower: &[Vec<f64>]) -> Vec<RankedCandidate> {
    let k = p_slower.len();
    for row in p_slower {
        assert_eq!(row.len(), k, "probability matrix must be square");
    }

    // Global round-robin tallies.
    let mut wins = vec![0usize; k];
    let mut expected = vec![0.0f64; k];
    for (i, row) in p_slower.iter().enumerate() {
        for (j, &p_i_slower) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            expected[i] += 1.0 - p_i_slower;
            if p_i_slower < 0.5 {
                wins[i] += 1;
            }
        }
    }

    // Group candidates by win count (descending): ties within a group are
    // resolved by the group's own sub-tournament.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));

    let mut ranked: Vec<RankedCandidate> = Vec::with_capacity(k);
    let mut start = 0;
    while start < order.len() {
        let mut end = start + 1;
        while end < order.len() && wins[order[end]] == wins[order[start]] {
            end += 1;
        }
        let group = &order[start..end];
        let (resolved, cyclic) = resolve_tie(group, p_slower, &expected);
        for index in resolved {
            ranked.push(RankedCandidate {
                index,
                rank: ranked.len() + 1,
                wins: wins[index],
                expected_wins: expected[index],
                in_cycle: cyclic,
            });
        }
        start = end;
    }
    ranked
}

/// Orders a group of candidates tied on global wins.
///
/// Head-to-head (local Copeland) wins within the group come first —
/// when the group's strict "beats" digraph is acyclic, that order is the
/// transitive closure of the direct matchups. A cyclic group (A beats B
/// beats C beats A) has no such order; it falls back to the expected-wins
/// margin and is flagged.
fn resolve_tie(group: &[usize], p_slower: &[Vec<f64>], expected: &[f64]) -> (Vec<usize>, bool) {
    if group.len() <= 1 {
        return (group.to_vec(), false);
    }
    let mut local_wins = vec![0usize; group.len()];
    for (gi, &i) in group.iter().enumerate() {
        for &j in group {
            if i != j && p_slower[i][j] < 0.5 {
                local_wins[gi] += 1;
            }
        }
    }
    let cyclic = has_beat_cycle(group, p_slower);

    let mut order: Vec<(usize, usize)> = group.iter().copied().enumerate().collect();
    order.sort_by(|&(ga, a), &(gb, b)| {
        local_wins[gb]
            .cmp(&local_wins[ga])
            .then_with(|| {
                expected[b]
                    .partial_cmp(&expected[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then(a.cmp(&b))
    });
    (order.into_iter().map(|(_, ix)| ix).collect(), cyclic)
}

/// Detects a directed cycle in the strict "beats" relation restricted to
/// `group` (exact-½ comparisons are draws and contribute no edge).
fn has_beat_cycle(group: &[usize], p_slower: &[Vec<f64>]) -> bool {
    // Colors: 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; group.len()];
    fn dfs(at: usize, group: &[usize], p: &[Vec<f64>], color: &mut [u8]) -> bool {
        color[at] = 1;
        for (next, &j) in group.iter().enumerate() {
            if group[at] != j
                && p[group[at]][j] < 0.5
                && (color[next] == 1 || (color[next] == 0 && dfs(next, group, p, color)))
            {
                return true;
            }
        }
        color[at] = 2;
        false
    }
    (0..group.len()).any(|start| color[start] == 0 && dfs(start, group, p_slower, &mut color))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Matrix builder: `faster[i] < faster[j]` ⇒ i beats j with margin
    /// proportional to the gap.
    fn matrix_from_speeds(speeds: &[f64]) -> Vec<Vec<f64>> {
        let k = speeds.len();
        (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        if i == j {
                            0.5
                        } else {
                            // P(i slower than j): sigmoid of the speed gap.
                            1.0 / (1.0 + (-(speeds[i] - speeds[j])).exp())
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn transitive_tournament_orders_by_speed() {
        // Candidate runtimes: index 2 fastest, then 0, 3, 1.
        let m = matrix_from_speeds(&[2.0, 9.0, 1.0, 5.0]);
        let ranked = rank_from_matrix(&m);
        let order: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        assert_eq!(order, vec![2, 0, 3, 1]);
        assert_eq!(ranked[0].rank, 1);
        assert_eq!(ranked[0].wins, 3);
        assert!(ranked.iter().all(|r| !r.in_cycle));
        // Expected wins decrease down the ranking.
        for w in ranked.windows(2) {
            assert!(w[0].expected_wins > w[1].expected_wins);
        }
    }

    #[test]
    fn head_to_head_breaks_ties_transitively() {
        // Five players; global wins: D=3, {A,B,C}=2 each, E=1. The tied
        // group {A,B,C} is internally transitive (A > B > C), so the
        // tie-break must follow those head-to-head results — even though
        // C's wins came from upsets elsewhere (C beats D!).
        let (a, b, c, d, e) = (0, 1, 2, 3, 4);
        let mut m = vec![vec![0.5; 5]; 5];
        let mut beats = |x: usize, y: usize| {
            m[x][y] = 0.2; // x slower than y with 0.2 ⇒ x beats y
            m[y][x] = 0.8;
        };
        beats(a, b);
        beats(a, c);
        beats(b, c);
        beats(b, e);
        beats(c, d);
        beats(c, e);
        beats(d, a);
        beats(d, b);
        beats(d, e);
        beats(e, a);
        let ranked = rank_from_matrix(&m);
        let order: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        assert_eq!(order, vec![d, a, b, c, e]);
        let tied: Vec<&RankedCandidate> = ranked
            .iter()
            .filter(|r| [a, b, c].contains(&r.index))
            .collect();
        assert!(
            tied.iter().all(|r| r.wins == 2),
            "premise: A, B, C tied on global wins"
        );
        assert!(
            tied.iter().all(|r| !r.in_cycle),
            "transitive tied group must not be flagged cyclic"
        );
    }

    #[test]
    fn cyclic_group_is_flagged_and_margin_ordered() {
        // Rock-paper-scissors among 0, 1, 2 (all wins = 1), with margins
        // making 1 the strongest on expected wins; 3 loses to everyone.
        let mut m = vec![vec![0.5; 4]; 4];
        let beats = |m: &mut Vec<Vec<f64>>, a: usize, b: usize, p: f64| {
            m[a][b] = 1.0 - p; // a slower than b with 1-p  ⇒ a beats b with p
            m[b][a] = p;
        };
        beats(&mut m, 0, 1, 0.55);
        beats(&mut m, 1, 2, 0.95);
        beats(&mut m, 2, 0, 0.60);
        for i in 0..3 {
            beats(&mut m, i, 3, 0.9);
        }
        let ranked = rank_from_matrix(&m);
        let order: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        // 1 has the largest expected-wins margin in the cycle.
        assert_eq!(order[0], 1);
        assert_eq!(order[3], 3, "the universal loser ranks last");
        for r in &ranked[..3] {
            assert!(r.in_cycle, "cycle members must be flagged: {r:?}");
            assert_eq!(r.wins, 2); // one cycle win + a win over 3
        }
        assert!(!ranked[3].in_cycle);
    }

    #[test]
    fn single_candidate_and_empty_input() {
        assert!(rank_from_matrix(&[]).is_empty());
        let one = rank_from_matrix(&[vec![0.5]]);
        assert_eq!(one.len(), 1);
        assert_eq!((one[0].index, one[0].rank, one[0].wins), (0, 1, 0));
    }

    #[test]
    fn ranking_is_deterministic_under_exact_ties() {
        // Fully indifferent matrix: everything 0.5 → stable index order.
        let m = vec![vec![0.5; 3]; 3];
        let ranked = rank_from_matrix(&m);
        let order: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
