//! Debug-build lock-order tracking — a miniature "lockdep".
//!
//! [`DMutex`] and [`DRwLock`] are drop-in wrappers over the std
//! primitives, tagged at construction with a `'static` **class** name
//! (e.g. `"serve.batch.queue"`). In release builds they compile down
//! to the plain std lock plus one ignored field. Under
//! `cfg(debug_assertions)` every acquisition is checked against a
//! process-global acquisition-order graph:
//!
//! - the first time class B is taken while class A is held, the edge
//!   A → B is recorded;
//! - an acquisition that would close a cycle (B → … → A already exists)
//!   panics immediately with the offending path.
//!
//! That turns a *potential* deadlock — which under contention would
//! hang two threads forever — into a deterministic panic on the first
//! interleaving that even attempts the inverted order, whether or not
//! the other thread is anywhere near the lock. The static counterpart
//! of this check is the `lockorder` rule in `crates/audit`; the shim
//! catches orders the lexical scan cannot see (guards passed through
//! functions, locks reached via trait objects, orders that only occur
//! on rare branches).
//!
//! Multiple lock *instances* may share one class (the sharded cache's
//! stripes, the per-route token buckets). Same-class nesting is
//! deliberately not flagged: stripe-over-stripe acquisition is ordered
//! by index at the call sites, which a class-granular graph cannot
//! express, so self-edges are skipped rather than reported as cycles.
//!
//! The one lock this module cannot wrap is a mutex used with a
//! [`std::sync::Condvar`]: `Condvar::wait` insists on a real
//! `MutexGuard`. Those stay on the std type (see `batch::park`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{
    LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

// ---------------------------------------------------------------------
// The acquisition graph (debug builds only)
// ---------------------------------------------------------------------

/// Directed acquisition edges: `edges[a]` holds every class observed
/// being acquired while `a` was held.
#[cfg(debug_assertions)]
static EDGES: Mutex<Option<HashMap<&'static str, Vec<&'static str>>>> = Mutex::new(None);

#[cfg(debug_assertions)]
thread_local! {
    /// The classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Is there a path `from → … → to` in the recorded graph?
/// Iterative DFS; the graph has a handful of classes, so no visited-set
/// sophistication is needed beyond loop protection.
#[cfg(debug_assertions)]
fn path_exists(
    edges: &HashMap<&'static str, Vec<&'static str>>,
    from: &'static str,
    to: &'static str,
    path: &mut Vec<&'static str>,
) -> bool {
    if from == to {
        path.push(from);
        return true;
    }
    if path.contains(&from) {
        return false;
    }
    path.push(from);
    if let Some(nexts) = edges.get(from) {
        for &n in nexts {
            if path_exists(edges, n, to, path) {
                return true;
            }
        }
    }
    path.pop();
    false
}

/// Records the acquisition of `class` by this thread, panicking if it
/// inverts an order the process has already exhibited.
#[cfg(debug_assertions)]
fn acquired(class: &'static str) {
    let holders: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
    // Decide-then-panic: the panic (if any) must happen *after* the
    // graph guard is dropped, or we poison the registry for the rest
    // of the process (including catch_unwind-style tests).
    let mut violation: Option<Vec<&'static str>> = None;
    {
        let mut slot = EDGES.lock().unwrap_or_else(PoisonError::into_inner);
        let edges = slot.get_or_insert_with(HashMap::new);
        for &held in &holders {
            if held == class {
                continue; // same-class nesting: ordered at call sites
            }
            let known = edges.get(held).is_some_and(|v| v.contains(&class));
            if known {
                continue;
            }
            // New edge held → class. Would the reverse direction
            // already reach `held` from `class`? Then this is a cycle.
            let mut path = Vec::new();
            if path_exists(edges, class, held, &mut path) {
                path.push(class); // close the loop for the message
                violation = Some(path);
                break;
            }
            edges.entry(held).or_default().push(class);
        }
    }
    if let Some(path) = violation {
        panic!(
            "lock-order cycle: acquiring '{class}' while holding {holders:?} \
             inverts the established order {}",
            path.join(" -> ")
        );
    }
    HELD.with(|h| h.borrow_mut().push(class));
}

/// Records the release of `class` (the most recent acquisition wins —
/// guards normally drop LIFO, but out-of-order drops are legal).
#[cfg(debug_assertions)]
fn released(class: &'static str) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(ix) = held.iter().rposition(|&c| c == class) {
            held.remove(ix);
        }
    });
}

/// RAII for the held-stack entry; kept in every guard so early drops
/// and panics both unwind the tracking correctly.
#[cfg(debug_assertions)]
struct HeldToken(&'static str);

#[cfg(debug_assertions)]
impl Drop for HeldToken {
    fn drop(&mut self) {
        released(self.0);
    }
}

#[cfg(debug_assertions)]
fn track(class: &'static str) -> HeldToken {
    acquired(class);
    HeldToken(class)
}

// ---------------------------------------------------------------------
// DMutex
// ---------------------------------------------------------------------

/// A [`Mutex`] with a lock-order class. API mirrors std: `lock()`
/// returns a `LockResult` whose guard derefs to `T`.
pub struct DMutex<T> {
    class: &'static str,
    inner: Mutex<T>,
}

impl<T> DMutex<T> {
    /// Wraps `value` under lock-order class `class`.
    pub const fn new(class: &'static str, value: T) -> DMutex<T> {
        DMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the mutex, recording the acquisition in debug builds.
    pub fn lock(&self) -> LockResult<DMutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = track(self.class);
        match self.inner.lock() {
            Ok(guard) => Ok(DMutexGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard,
            }),
            Err(poisoned) => Err(PoisonError::new(DMutexGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard: poisoned.into_inner(),
            })),
        }
    }

    /// The lock-order class this lock was constructed with.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

/// Guard for [`DMutex::lock`].
pub struct DMutexGuard<'a, T> {
    // Declared first so tracking is released before (well, no later
    // than) the lock itself; either order is correct for a per-thread
    // stack, but releasing tracking first keeps panics tidy.
    #[cfg(debug_assertions)]
    _token: HeldToken,
    guard: MutexGuard<'a, T>,
}

impl<T> Deref for DMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for DMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// ---------------------------------------------------------------------
// DRwLock
// ---------------------------------------------------------------------

/// An [`RwLock`] with a lock-order class. Readers and writers share
/// one class: a read-vs-write distinction only loosens the check
/// (read-read cannot deadlock) and the looseness has no value here.
pub struct DRwLock<T> {
    class: &'static str,
    inner: RwLock<T>,
}

impl<T> DRwLock<T> {
    /// Wraps `value` under lock-order class `class`.
    pub const fn new(class: &'static str, value: T) -> DRwLock<T> {
        DRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recording the acquisition.
    pub fn read(&self) -> LockResult<DReadGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = track(self.class);
        match self.inner.read() {
            Ok(guard) => Ok(DReadGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard,
            }),
            Err(poisoned) => Err(PoisonError::new(DReadGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard: poisoned.into_inner(),
            })),
        }
    }

    /// Acquires the exclusive write guard, recording the acquisition.
    pub fn write(&self) -> LockResult<DWriteGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = track(self.class);
        match self.inner.write() {
            Ok(guard) => Ok(DWriteGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard,
            }),
            Err(poisoned) => Err(PoisonError::new(DWriteGuard {
                #[cfg(debug_assertions)]
                _token: token,
                guard: poisoned.into_inner(),
            })),
        }
    }

    /// The lock-order class this lock was constructed with.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

/// Guard for [`DRwLock::read`].
pub struct DReadGuard<'a, T> {
    #[cfg(debug_assertions)]
    _token: HeldToken,
    guard: RwLockReadGuard<'a, T>,
}

impl<T> Deref for DReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Guard for [`DRwLock::write`].
pub struct DWriteGuard<'a, T> {
    #[cfg(debug_assertions)]
    _token: HeldToken,
    guard: RwLockWriteGuard<'a, T>,
}

impl<T> Deref for DWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for DWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    // Every test uses class names unique to itself: the graph is
    // process-global and additive, so shared names would let one test's
    // edges leak into another's expectations.

    #[test]
    fn nested_acquisition_records_and_releases() {
        let a = DMutex::new("t1.a", 1);
        let b = DMutex::new("t1.b", 2);
        {
            let ga = a.lock().unwrap();
            let gb = b.lock().unwrap();
            assert_eq!(*ga + *gb, 3);
        }
        // Same order again: no panic, edge already known.
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
    }

    #[test]
    fn inverted_order_panics_with_the_cycle() {
        let a = DMutex::new("t2.a", ());
        let b = DMutex::new("t2.b", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        let err = std::panic::catch_unwind(|| {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap(); // closes the cycle
        })
        .expect_err("the inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
        assert!(msg.contains("t2.a") && msg.contains("t2.b"), "got: {msg}");
    }

    #[test]
    fn rwlock_read_and_write_share_a_class() {
        let r = DRwLock::new("t3.r", 7);
        let m = DMutex::new("t3.m", ());
        {
            let _gr = r.read().unwrap();
            let _gm = m.lock().unwrap();
        }
        // write() after the mutex now inverts the recorded order.
        let err = std::panic::catch_unwind(|| {
            let _gm = m.lock().unwrap();
            let _gw = r.write().unwrap();
        })
        .expect_err("write after mutex must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t3.r"), "got: {msg}");
    }

    #[test]
    fn same_class_nesting_is_not_a_cycle() {
        // Two instances sharing a class, as the cache stripes do.
        let s1 = DMutex::new("t4.stripe", 1);
        let s2 = DMutex::new("t4.stripe", 2);
        let g1 = s1.lock().unwrap();
        let g2 = s2.lock().unwrap();
        assert_eq!(*g1 + *g2, 3);
    }

    #[test]
    fn transitive_cycles_are_caught() {
        let a = DMutex::new("t5.a", ());
        let b = DMutex::new("t5.b", ());
        let c = DMutex::new("t5.c", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _gc = c.lock().unwrap();
        }
        let err = std::panic::catch_unwind(|| {
            let _gc = c.lock().unwrap();
            let _ga = a.lock().unwrap(); // a -> b -> c -> a
        })
        .expect_err("transitive inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
    }

    #[test]
    fn out_of_order_guard_drops_unwind_tracking() {
        let a = DMutex::new("t6.a", ());
        let b = DMutex::new("t6.b", ());
        let ga = a.lock().unwrap();
        let gb = b.lock().unwrap();
        drop(ga); // drop the outer guard first
        drop(gb);
        // Tracking must be empty again: acquiring in the other order
        // from a bare stack records b -> a edges only if nothing is
        // held, which would now conflict with a -> b. It should panic —
        // proving the earlier a -> b edge persisted and the held stack
        // did not corrupt.
        let err = std::panic::catch_unwind(|| {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        })
        .expect_err("inversion after clean unwinding must still panic");
        drop(err);
        // And the non-nested single acquisitions still work. `b` was
        // held across the cycle panic above, so it is now poisoned —
        // that is std behavior, not a tracking defect.
        drop(a.lock().unwrap());
        drop(b.lock().unwrap_or_else(PoisonError::into_inner));
    }
}
