//! The model registry: named, versioned trained comparators.
//!
//! Serving decouples *which* model answers a request from *how* requests
//! are batched and cached: every request names (implicitly or explicitly)
//! a registry entry, and the engine resolves it to an immutable
//! [`ServeModel`] shared across worker threads via `Arc`. Versions load
//! from [`ccsa_model::persist`]'s `model-v<N>.ccsm` directory layout or
//! register directly from an in-process training run.
//!
//! The registry is read-mostly: every request resolves its selector,
//! while writes happen only on register/hot-swap — so the engine holds
//! it behind an `RwLock`, and concurrent resolutions never serialize on
//! each other the way the original `Mutex` made them.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ccsa_model::persist::{self, PersistError};
use ccsa_model::pipeline::TrainedModel;

/// The registry's default model name, used when requests omit one.
pub const DEFAULT_MODEL: &str = "default";

/// Process-wide registration counter backing [`ServeModel::uid`].
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// An immutable, serving-ready model: what worker threads share.
///
/// "Immutable" applies to the weights; the struct also carries this
/// registration's embedding-cache counters (atomics, updated by the
/// engine on every lookup) so hit rates are attributable per model — a
/// shadow candidate warming up looks different from the incumbent it
/// mirrors, and the `stats` verb can report both.
#[derive(Debug)]
pub struct ServeModel {
    /// Registry name.
    pub name: String,
    /// Version within the name.
    pub version: u32,
    /// The trained comparator and its weights.
    pub model: TrainedModel,
    /// Process-unique registration id. Unlike `(name, version)`, this can
    /// never alias across re-registrations, so cache keys derived from it
    /// stay correct even when a coordinate is hot-swapped while requests
    /// against the old weights are still in flight.
    uid: u64,
    /// Embedding-cache lookups under this registration that hit.
    cache_hits: AtomicU64,
    /// Embedding-cache lookups under this registration that missed.
    cache_misses: AtomicU64,
}

impl ServeModel {
    /// The process-unique registration id.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Adds to this registration's embedding-cache counters.
    pub fn note_cache_lookups(&self, hits: u64, misses: u64) {
        // Relaxed: stats counters, read only at snapshot time.
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// `(hits, misses)` accumulated so far for this registration.
    pub fn cache_lookups(&self) -> (u64, u64) {
        (
            // Relaxed: stats counters read at snapshot time.
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// Selects a model for one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelSelector {
    /// Registry name (`None` → [`DEFAULT_MODEL`]).
    pub name: Option<String>,
    /// Version (`None` → latest registered).
    pub version: Option<u32>,
}

/// Registry lookup failures.
#[derive(Debug)]
pub enum RegistryError {
    /// No entry under the requested name.
    UnknownModel(String),
    /// The name exists but not the requested version.
    UnknownVersion(String, u32),
    /// Loading an artefact from disk failed.
    Persist(PersistError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            RegistryError::UnknownVersion(name, v) => {
                write!(f, "model '{name}' has no version {v}")
            }
            RegistryError::Persist(e) => write!(f, "model load failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<PersistError> for RegistryError {
    fn from(e: PersistError) -> RegistryError {
        RegistryError::Persist(e)
    }
}

/// Named, versioned model storage.
#[derive(Default)]
pub struct ModelRegistry {
    models: HashMap<String, BTreeMap<u32, Arc<ServeModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers a trained model under `name` with an explicit `version`,
    /// replacing any previous entry at that coordinate. Returns the shared
    /// handle.
    pub fn register(&mut self, name: &str, version: u32, model: TrainedModel) -> Arc<ServeModel> {
        let entry = Arc::new(ServeModel {
            name: name.to_string(),
            version,
            model,
            // Relaxed: only uniqueness matters for the uid sequence.
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        });
        self.models
            .entry(name.to_string())
            .or_default()
            .insert(version, Arc::clone(&entry));
        entry
    }

    /// Registers a model as the next version under `name`.
    pub fn register_next(&mut self, name: &str, model: TrainedModel) -> Arc<ServeModel> {
        let next = self
            .models
            .get(name)
            .and_then(|m| m.keys().next_back().copied())
            .unwrap_or(0)
            + 1;
        self.register(name, next, model)
    }

    /// Loads every `model-v<N>.ccsm` artefact in `dir` under `name`.
    /// Returns the number of versions loaded (0 for an empty directory).
    ///
    /// # Errors
    ///
    /// Propagates artefact-load failures.
    pub fn load_dir(&mut self, name: &str, dir: &Path) -> Result<usize, RegistryError> {
        let versions = persist::list_versions(dir)?;
        for &v in &versions {
            let (_, model) = persist::load_version(dir, Some(v))?;
            self.register(name, v, model);
        }
        Ok(versions.len())
    }

    /// Resolves a selector to a concrete model handle.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownModel`] / `UnknownVersion` when the
    /// selector matches nothing.
    pub fn resolve(&self, selector: &ModelSelector) -> Result<Arc<ServeModel>, RegistryError> {
        let name = selector.name.as_deref().unwrap_or(DEFAULT_MODEL);
        let versions = self
            .models
            .get(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        match selector.version {
            Some(v) => versions
                .get(&v)
                .cloned()
                .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), v)),
            None => Ok(versions
                .values()
                .next_back()
                .cloned()
                .expect("registry never stores an empty version map")),
        }
    }

    /// `(name, versions)` pairs, names sorted, versions ascending.
    pub fn list(&self) -> Vec<(String, Vec<u32>)> {
        let mut out: Vec<(String, Vec<u32>)> = self
            .models
            .iter()
            .map(|(name, versions)| (name.clone(), versions.keys().copied().collect()))
            .collect();
        out.sort();
        out
    }

    /// Total number of registered (name, version) entries.
    pub fn entry_count(&self) -> usize {
        self.models.values().map(BTreeMap::len).sum()
    }

    /// Every registered model handle, ordered by (name, version).
    pub fn entries(&self) -> Vec<Arc<ServeModel>> {
        let mut out: Vec<Arc<ServeModel>> = self
            .models
            .values()
            .flat_map(|versions| versions.values().cloned())
            .collect();
        out.sort_by(|a, b| (a.name.as_str(), a.version).cmp(&(b.name.as_str(), b.version)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_model::comparator::{Comparator, EncoderConfig};
    use ccsa_nn::param::Params;
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> TrainedModel {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 4,
            hidden: 4,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
        TrainedModel { comparator, params }
    }

    #[test]
    fn register_and_resolve_by_name_and_version() {
        let mut reg = ModelRegistry::new();
        reg.register(DEFAULT_MODEL, 1, tiny_model(1));
        reg.register(DEFAULT_MODEL, 2, tiny_model(2));
        reg.register("gcn-ab", 1, tiny_model(3));

        // Default selector → default name, latest version.
        let latest = reg.resolve(&ModelSelector::default()).unwrap();
        assert_eq!((latest.name.as_str(), latest.version), ("default", 2));

        let pinned = reg
            .resolve(&ModelSelector {
                name: None,
                version: Some(1),
            })
            .unwrap();
        assert_eq!(pinned.version, 1);

        let named = reg
            .resolve(&ModelSelector {
                name: Some("gcn-ab".into()),
                version: None,
            })
            .unwrap();
        assert_eq!(named.name, "gcn-ab");

        assert!(matches!(
            reg.resolve(&ModelSelector {
                name: Some("nope".into()),
                version: None
            }),
            Err(RegistryError::UnknownModel(_))
        ));
        assert!(matches!(
            reg.resolve(&ModelSelector {
                name: None,
                version: Some(9)
            }),
            Err(RegistryError::UnknownVersion(_, 9))
        ));
    }

    #[test]
    fn register_next_assigns_sequential_versions() {
        let mut reg = ModelRegistry::new();
        assert_eq!(reg.register_next("m", tiny_model(1)).version, 1);
        assert_eq!(reg.register_next("m", tiny_model(2)).version, 2);
        assert_eq!(reg.entry_count(), 2);
        assert_eq!(reg.list(), vec![("m".to_string(), vec![1, 2])]);
    }

    #[test]
    fn load_dir_roundtrips_versions_from_disk() {
        let dir = std::env::temp_dir().join(format!(
            "ccsa-registry-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let m1 = tiny_model(10);
        let m2 = tiny_model(11);
        persist::save_version(&dir, &m1).unwrap();
        persist::save_version(&dir, &m2).unwrap();

        let mut reg = ModelRegistry::new();
        assert_eq!(reg.load_dir(DEFAULT_MODEL, &dir).unwrap(), 2);
        let latest = reg.resolve(&ModelSelector::default()).unwrap();
        assert_eq!(latest.version, 2);
        // Loaded weights match what was saved (spot-check one tensor).
        assert_eq!(
            latest.model.params.get("cls.w").as_slice(),
            m2.params.get("cls.w").as_slice()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_of_missing_directory_is_empty() {
        let mut reg = ModelRegistry::new();
        let n = reg
            .load_dir(DEFAULT_MODEL, Path::new("/nonexistent/ccsa-models"))
            .unwrap();
        assert_eq!(n, 0);
        assert!(reg.resolve(&ModelSelector::default()).is_err());
    }
}
