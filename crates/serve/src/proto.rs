//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out.
//!
//! Requests (`model` / `version` optional everywhere):
//!
//! ```text
//! {"op":"compare","first":"<src>","second":"<src>"}
//! {"op":"rank","candidates":["<src>", ...]}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"routes"}
//! {"op":"reload_routes","routes":[{"model":"m","version":2,"weight":1.0}]}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: `true` with op-specific fields, or
//! `false` with an `"error"` string. Protocol errors (bad JSON, unknown
//! op) are also `ok:false` responses — the connection stays usable.
//!
//! Three verbs are *transport-level*: `routes` reports the gateway's
//! weighted A/B routing table (the plain stdio `serve` binary has no
//! router and answers `ok:false`), `reload_routes` swaps that table in
//! place (gateway only, loopback-gated like `shutdown`), and `shutdown`
//! asks the process to drain and exit (both binaries honour it).
//! Requests may also carry a `"client"` string, the gateway's
//! sticky-routing key; the engine itself ignores it.

use crate::engine::{CompareOutcome, EngineStats, RankOutcome, ServeEngine};
use crate::json::{self, Json};
use crate::registry::ModelSelector;

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one pair.
    Compare {
        /// Model selection.
        selector: ModelSelector,
        /// First source (the "is this slower?" subject).
        first: String,
        /// Second source.
        second: String,
    },
    /// Rank K candidates fastest-first.
    Rank {
        /// Model selection.
        selector: ModelSelector,
        /// Candidate sources.
        candidates: Vec<String>,
    },
    /// Engine counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// The routing table and per-route stats (gateway only).
    Routes,
    /// Swap the routing table in place (gateway only; loopback-gated
    /// like [`Request::Shutdown`]).
    ReloadRoutes {
        /// The new weighted table, as `(selector, weight)` pairs.
        routes: Vec<(ModelSelector, f64)>,
        /// Optional shadow target, as `(selector, fraction)`.
        shadow: Option<(ModelSelector, f64)>,
    },
    /// Drain and exit.
    Shutdown,
}

/// The verbs that mutate server state, as wire `op` strings. This is
/// the source of truth the front doors gate on: every verb listed here
/// must appear in the `LOOPBACK_GATED_VERBS` const of each network
/// transport (gateway and fleet), which refuses it off-loopback unless
/// remote administration was explicitly enabled. The lists are kept as
/// separate literals on purpose — `ccsa-audit`'s `verbs` rule checks
/// them against each other, so adding a verb here and forgetting a gate
/// fails CI instead of shipping a remotely callable admin op.
pub const MUTATING_VERBS: &[&str] = &["shutdown", "reload_routes"];

/// Decodes one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing/unknown
/// `op`, or missing operands.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    parse_request_value(&v)
}

/// Decodes an already-parsed request object (transports that inspect the
/// raw JSON themselves — e.g. the gateway reading the `"client"` routing
/// key — use this to avoid parsing twice).
///
/// # Errors
///
/// Returns a human-readable message for a missing/unknown `op` or missing
/// operands.
pub fn parse_request_value(v: &Json) -> Result<Request, String> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field 'op'".to_string())?;
    let selector = selector_of(v)?;
    match op {
        "compare" => {
            let field = |name: &str| {
                v.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("compare needs string field '{name}'"))
            };
            Ok(Request::Compare {
                selector,
                first: field("first")?,
                second: field("second")?,
            })
        }
        "rank" => {
            let arr = v
                .get("candidates")
                .and_then(Json::as_arr)
                .ok_or_else(|| "rank needs array field 'candidates'".to_string())?;
            let candidates = arr
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "candidates must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Rank {
                selector,
                candidates,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "routes" => Ok(Request::Routes),
        "reload_routes" => {
            let arr = v
                .get("routes")
                .and_then(Json::as_arr)
                .ok_or_else(|| "reload_routes needs array field 'routes'".to_string())?;
            let routes = arr
                .iter()
                .map(|route| {
                    let weight = route
                        .get("weight")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| "each route needs numeric field 'weight'".to_string())?;
                    Ok((selector_of(route)?, weight))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let shadow = match v.get("shadow") {
                None | Some(Json::Null) => None,
                Some(s) => {
                    let fraction = s
                        .get("fraction")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| "shadow needs numeric field 'fraction'".to_string())?;
                    Some((selector_of(s)?, fraction))
                }
            };
            Ok(Request::ReloadRoutes { routes, shadow })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Reads the optional `model`/`version` selector fields of one JSON
/// object. A present-but-invalid field is an error, never a silent
/// fallback: `"version": 2^32+1` must not truncate onto a real version,
/// and `"version": "two"` must not quietly mean "latest".
fn selector_of(v: &Json) -> Result<ModelSelector, String> {
    let name = match v.get("model") {
        None => None,
        Some(m) => Some(
            m.as_str()
                .map(str::to_string)
                .ok_or_else(|| "'model' must be a string".to_string())?,
        ),
    };
    let version = match v.get("version") {
        None => None,
        Some(n) => Some(
            n.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "'version' must be an integer within u32 range".to_string())?,
        ),
    };
    Ok(ModelSelector { name, version })
}

/// Encodes a compare outcome.
pub fn compare_response(outcome: &CompareOutcome) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("compare")),
        (
            "prob_first_slower",
            Json::num(outcome.prob_first_slower as f64),
        ),
        ("first_is_slower", Json::Bool(outcome.first_is_slower())),
        ("model", Json::str(outcome.model.clone())),
        ("version", Json::num(outcome.version as f64)),
        ("cache_hits", Json::num(outcome.cache_hits as f64)),
    ])
}

/// Encodes a ranking outcome (entries fastest-first).
pub fn rank_response(outcome: &RankOutcome) -> Json {
    let entries: Vec<Json> = outcome
        .ranking
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("rank", Json::num(r.rank as f64)),
                ("candidate", Json::num(r.index as f64)),
                ("wins", Json::num(r.wins as f64)),
                ("expected_wins", Json::num(r.expected_wins)),
                ("in_cycle", Json::Bool(r.in_cycle)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("rank")),
        ("ranking", Json::Arr(entries)),
        ("model", Json::str(outcome.model.clone())),
        ("version", Json::num(outcome.version as f64)),
        ("cache_hits", Json::num(outcome.cache_hits as f64)),
        ("encoded", Json::num(outcome.encoded as f64)),
    ])
}

/// Encodes an engine-stats snapshot.
pub fn stats_response(stats: &EngineStats) -> Json {
    let models: Vec<Json> = stats
        .models
        .iter()
        .map(|(name, versions)| {
            Json::obj(vec![
                ("name", Json::str(name.clone())),
                (
                    "versions",
                    Json::Arr(versions.iter().map(|&v| Json::num(v as f64)).collect()),
                ),
            ])
        })
        .collect();
    let model_cache: Vec<Json> = stats
        .model_cache
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("model", Json::str(m.model.clone())),
                ("version", Json::num(m.version as f64)),
                ("cache_hits", Json::num(m.hits as f64)),
                ("cache_misses", Json::num(m.misses as f64)),
                ("cache_hit_rate", Json::num(m.hit_rate())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("stats")),
        ("compares", Json::num(stats.compares as f64)),
        ("rankings", Json::num(stats.rankings as f64)),
        ("parses", Json::num(stats.parses as f64)),
        ("parse_failures", Json::num(stats.parse_failures as f64)),
        ("cache_hits", Json::num(stats.cache.hits as f64)),
        ("cache_misses", Json::num(stats.cache.misses as f64)),
        ("cache_evictions", Json::num(stats.cache.evictions as f64)),
        ("cache_hit_rate", Json::num(stats.cache.hit_rate())),
        ("cache_len", Json::num(stats.cache_len as f64)),
        ("cache_bytes", Json::num(stats.cache_bytes as f64)),
        (
            "cache_precision",
            Json::str(stats.cache_precision.to_string()),
        ),
        ("encode_batches", Json::num(stats.batch.batches as f64)),
        ("encode_jobs", Json::num(stats.batch.jobs as f64)),
        ("mean_batch_size", Json::num(stats.batch.mean_batch_size())),
        ("fused_levels", Json::num(stats.batch.fused_levels as f64)),
        ("fused_rows", Json::num(stats.batch.fused_rows as f64)),
        (
            "mean_fused_width",
            Json::num(stats.batch.mean_fused_width()),
        ),
        // The scalar depth predates sharding and is kept for dashboard
        // compatibility; `queue_depths` breaks it down per encode shard.
        ("queue_depth", Json::num(stats.queue_depth as f64)),
        (
            "queue_depths",
            Json::Obj(
                stats
                    .queue_depths
                    .iter()
                    .map(|(label, depth)| (label.clone(), Json::num(*depth as f64)))
                    .collect(),
            ),
        ),
        ("shard_count", Json::num(stats.shard_count as f64)),
        ("steals", Json::num(stats.batch.steals as f64)),
        ("cache_stripes", Json::num(stats.cache_stripes as f64)),
        ("uptime_seconds", Json::num(stats.uptime_seconds)),
        ("build", build_info_json()),
        ("models", Json::Arr(models)),
        ("model_cache", Json::Arr(model_cache)),
    ])
}

/// The build stamp shared by the `stats` verb and the `ccsa_build_info`
/// gauge on `/metrics` — same [`crate::metrics::build_info`] source, so
/// the two surfaces can never report different builds.
pub fn build_info_json() -> Json {
    let (version, revision) = crate::metrics::build_info();
    Json::obj(vec![
        ("version", Json::str(version)),
        ("revision", Json::str(revision)),
    ])
}

/// Encodes a failure.
pub fn error_response(message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
}

/// Runs one decoded request against the engine, producing the response
/// value (errors become `ok:false` responses, never panics).
pub fn dispatch(engine: &ServeEngine, request: Request) -> Json {
    match request {
        Request::Compare {
            selector,
            first,
            second,
        } => match engine.compare(&selector, &first, &second) {
            Ok(outcome) => compare_response(&outcome),
            Err(e) => error_response(&e.to_string()),
        },
        Request::Rank {
            selector,
            candidates,
        } => {
            let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
            match engine.rank(&selector, &refs) {
                Ok(outcome) => rank_response(&outcome),
                Err(e) => error_response(&e.to_string()),
            }
        }
        Request::Stats => stats_response(&engine.stats()),
        Request::Ping => Json::obj(vec![("ok", Json::Bool(true)), ("op", Json::str("ping"))]),
        // `routes`/`reload_routes` are answered by the gateway's router,
        // which intercepts them before dispatch; a bare engine has no
        // routing table.
        Request::Routes => {
            error_response("no router: 'routes' is served by the ccsa-gateway binary")
        }
        Request::ReloadRoutes { .. } => {
            error_response("no router: 'reload_routes' is served by the ccsa-gateway binary")
        }
        // Acknowledging is all the engine can do — the transport owning
        // the engine (stdio loop, TCP gateway) watches for this request
        // and stops reading afterwards.
        Request::Shutdown => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("shutdown")),
        ]),
    }
}

/// Decodes, dispatches and encodes one protocol line.
pub fn handle_line(engine: &ServeEngine, line: &str) -> String {
    let response = match parse_request(line) {
        Ok(request) => dispatch(engine, request),
        Err(message) => error_response(&message),
    };
    response.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use ccsa_model::comparator::{Comparator, EncoderConfig};
    use ccsa_model::pipeline::TrainedModel;
    use ccsa_nn::param::Params;
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_engine() -> ServeEngine {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(1));
        ServeEngine::with_model(TrainedModel { comparator, params }, &ServeConfig::default())
    }

    #[test]
    fn mutating_verbs_are_recognized_ops() {
        // The gate lists in the gateway and fleet are checked against
        // MUTATING_VERBS by ccsa-audit; this end anchors the const to
        // the parser so a renamed op can't silently orphan its gate.
        for verb in MUTATING_VERBS {
            let line = format!("{{\"op\":{:?}}}", verb);
            match parse_request(&line) {
                Ok(_) => {}
                Err(e) => assert!(
                    !e.contains("unknown"),
                    "mutating verb {verb:?} is not a parser op: {e}"
                ),
            }
        }
    }

    #[test]
    fn parses_requests_with_and_without_selector() {
        let r = parse_request(r#"{"op":"compare","first":"a","second":"b"}"#).unwrap();
        assert_eq!(
            r,
            Request::Compare {
                selector: ModelSelector::default(),
                first: "a".into(),
                second: "b".into()
            }
        );
        let r = parse_request(r#"{"op":"rank","model":"m","version":3,"candidates":["x","y"]}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Rank {
                selector: ModelSelector {
                    name: Some("m".into()),
                    version: Some(3)
                },
                candidates: vec!["x".into(), "y".into()],
            }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"routes"}"#).unwrap(),
            Request::Routes
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        let r = parse_request(
            r#"{"op":"reload_routes","routes":[{"model":"m","version":1,"weight":0.9},{"weight":0.1}],"shadow":{"model":"m","version":2,"fraction":0.5}}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::ReloadRoutes {
                routes: vec![
                    (
                        ModelSelector {
                            name: Some("m".into()),
                            version: Some(1)
                        },
                        0.9
                    ),
                    (ModelSelector::default(), 0.1),
                ],
                shadow: Some((
                    ModelSelector {
                        name: Some("m".into()),
                        version: Some(2)
                    },
                    0.5
                )),
            }
        );
        // A null shadow means "no shadow", same as an absent field.
        let r = parse_request(r#"{"op":"reload_routes","routes":[{"weight":1}],"shadow":null}"#)
            .unwrap();
        assert!(matches!(r, Request::ReloadRoutes { shadow: None, .. }));
    }

    #[test]
    fn transport_verbs_answer_without_a_router() {
        let engine = test_engine();
        // Shutdown is acknowledged (the transport loop acts on it).
        let v = crate::json::parse(&handle_line(&engine, r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("op").unwrap().as_str(), Some("shutdown"));
        // Routes/reload_routes need a gateway router; a bare engine
        // declines both.
        let v = crate::json::parse(&handle_line(&engine, r#"{"op":"routes"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("router"));
        let v = crate::json::parse(&handle_line(
            &engine,
            r#"{"op":"reload_routes","routes":[{"weight":1}]}"#,
        ))
        .unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("router"));
    }

    #[test]
    fn rejects_malformed_requests_gracefully() {
        for bad in [
            "not json",
            r#"{"noop":1}"#,
            r#"{"op":"teleport"}"#,
            r#"{"op":"compare","first":"a"}"#,
            r#"{"op":"rank","candidates":[1,2]}"#,
            // Selector fields must be valid when present — no silent
            // truncation (2^32 + 1) or fallback-to-latest ("two", -3).
            r#"{"op":"stats","version":4294967297}"#,
            r#"{"op":"stats","version":"two"}"#,
            r#"{"op":"stats","version":-3}"#,
            r#"{"op":"stats","model":7}"#,
            r#"{"op":"reload_routes"}"#,
            r#"{"op":"reload_routes","routes":[{"model":"m"}]}"#,
            r#"{"op":"reload_routes","routes":[{"weight":1}],"shadow":{}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
        // Boundary: u32::MAX itself is representable.
        assert!(parse_request(r#"{"op":"stats","version":4294967295}"#).is_ok());
    }

    #[test]
    fn end_to_end_compare_line() {
        let engine = test_engine();
        let line = r#"{"op":"compare","first":"int main() { return 0; }","second":"int main() { for (int i = 0; i < 9; i++) { } return 0; }"}"#;
        let out = handle_line(&engine, line);
        let v = crate::json::parse(&out).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let p = v.get("prob_first_slower").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn end_to_end_rank_line() {
        let engine = test_engine();
        let line = r#"{"op":"rank","candidates":["int main() { return 0; }","int main() { for (int i = 0; i < 9; i++) { } return 0; }","int main() { return 5; }"]}"#;
        let v = crate::json::parse(&handle_line(&engine, line)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let ranking = v.get("ranking").unwrap().as_arr().unwrap();
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].get("rank").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn errors_keep_the_connection_alive() {
        let engine = test_engine();
        let v = crate::json::parse(&handle_line(&engine, "garbage")).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let v = crate::json::parse(&handle_line(
            &engine,
            r#"{"op":"compare","first":"int main() {","second":"int main() { return 0; }"}"#,
        ))
        .unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("parse"));
        // The engine still answers after errors.
        let v = crate::json::parse(&handle_line(&engine, r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_line_reports_counters() {
        let engine = test_engine();
        let _ = handle_line(
            &engine,
            r#"{"op":"compare","first":"int main() { return 0; }","second":"int main() { return 1; }"}"#,
        );
        let v = crate::json::parse(&handle_line(&engine, r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(v.get("compares").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("parses").unwrap().as_u64(), Some(2));
        let models = v.get("models").unwrap().as_arr().unwrap();
        assert_eq!(models[0].get("name").unwrap().as_str(), Some("default"));
        // Admission backpressure signals: the legacy scalar plus the
        // per-shard breakdown, both present and idle by now.
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(0));
        let depths = v.get("queue_depths").unwrap();
        assert_eq!(depths.get("default@v1").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("shard_count").unwrap().as_u64(), Some(1));
        // Presence only: on a multi-worker pool, whichever worker grabs
        // the batch first may legitimately record a steal.
        assert!(v.get("steals").unwrap().as_u64().is_some());
        assert!(v.get("cache_stripes").unwrap().as_u64().unwrap() >= 1);
        // Quantized-cache observability: at-rest bytes (two cold codes
        // are resident after one compare) and the storage precision.
        assert!(v.get("cache_bytes").unwrap().as_u64().unwrap() > 0);
        assert_eq!(v.get("cache_precision").unwrap().as_str(), Some("f32"));
        // Per-model cache attribution: one compare = 2 cold lookups.
        let per_model = v.get("model_cache").unwrap().as_arr().unwrap();
        assert_eq!(per_model.len(), 1);
        assert_eq!(per_model[0].get("model").unwrap().as_str(), Some("default"));
        assert_eq!(per_model[0].get("version").unwrap().as_u64(), Some(1));
        assert_eq!(per_model[0].get("cache_misses").unwrap().as_u64(), Some(2));
        assert_eq!(
            per_model[0].get("cache_hit_rate").unwrap().as_f64(),
            Some(0.0)
        );
        // Uptime and build stamp ride along for probes/dashboards.
        assert!(v.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
        let build = v.get("build").unwrap();
        let (version, revision) = crate::metrics::build_info();
        assert_eq!(build.get("version").unwrap().as_str(), Some(version));
        assert_eq!(build.get("revision").unwrap().as_str(), Some(revision));
    }
}
