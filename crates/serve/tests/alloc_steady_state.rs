//! Pins the PR's headline claim with a counting global allocator:
//! once the cache and buffer pool are warm, `ServeEngine::compare_graphs`
//! performs **zero** heap allocations per request. The cold request is
//! allowed to allocate (cache fill, pool growth, lazy histograms); every
//! request after the second must be allocation-free.
//!
//! The harness swaps in a `#[global_allocator]` that counts every
//! `alloc`/`realloc`/`alloc_zeroed`, so a single stray `Vec` or `Arc`
//! anywhere on the warm path fails the test rather than silently
//! re-introducing steady-state allocator churn.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ccsa_cppast::tree::AstGraph;
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::cache::CachePrecision;
use ccsa_serve::{BatchConfig, ModelSelector, ServeConfig, ServeEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts allocation events; frees are uncounted (returning a pooled
/// buffer must not be scored as churn).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to `System`, which
// upholds the `GlobalAlloc` contract; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: trait-required unsafe fn; delegates to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Relaxed: a monotonic event counter read only after the
        // measured section joins; no ordering with other memory needed.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout obligations as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // Relaxed: monotonic event counter, as above.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout obligations as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: trait-required unsafe fn; delegates to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Relaxed: monotonic event counter, as above.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged from our caller's obligations.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    // Relaxed: reading the counter between single-threaded phases.
    ALLOCS.load(Ordering::Relaxed)
}

fn tiny_model(seed: u64) -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 6,
        hidden: 6,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
    TrainedModel { comparator, params }
}

const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                    for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                    cout << s; return 0; }";

#[test]
fn warm_compare_requests_allocate_nothing() {
    let engine = ServeEngine::with_model(
        tiny_model(7),
        &ServeConfig {
            cache_capacity: 64,
            cache_stripes: 1,
            cache_precision: CachePrecision::F32,
            batch: BatchConfig {
                workers: 1,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    );
    let a = Arc::new(AstGraph::from_program(
        &ccsa_cppast::parse_program(SLOW).expect("parse slow"),
    ));
    let b = Arc::new(AstGraph::from_program(
        &ccsa_cppast::parse_program(FAST).expect("parse fast"),
    ));
    let selector = ModelSelector::default();

    // Cold + first-warm requests: fill the cache, memoize the canonical
    // hashes, grow the classifier's pool buffers and the lazy stage
    // histograms. Allocation is expected and legal here.
    let cold = engine
        .compare_graphs(&selector, &a, &b)
        .expect("cold compare");
    assert_eq!(cold.cache_hits, 0, "first request must be a double miss");
    let first_warm = engine
        .compare_graphs(&selector, &a, &b)
        .expect("first warm compare");
    assert_eq!(first_warm.cache_hits, 2);

    // Steady state: second and later warm requests. Zero allocations,
    // and bit-identical scores to the cold pass.
    let before = allocs();
    let mut last = first_warm;
    for _ in 0..32 {
        last = engine
            .compare_graphs(&selector, &a, &b)
            .expect("warm compare");
    }
    let after = allocs();
    assert_eq!(last.cache_hits, 2, "steady state must stay fully cached");
    assert_eq!(
        last.prob_first_slower.to_bits(),
        cold.prob_first_slower.to_bits(),
        "warm score must be bit-identical to the cold score"
    );
    assert_eq!(
        after - before,
        0,
        "warm compare_graphs allocated {} time(s) over 32 requests",
        after - before
    );
}

#[test]
fn swapped_operands_stay_alloc_free_once_both_codes_are_cached() {
    let engine = ServeEngine::with_model(
        tiny_model(11),
        &ServeConfig {
            cache_capacity: 64,
            cache_stripes: 1,
            cache_precision: CachePrecision::F32,
            batch: BatchConfig {
                workers: 1,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    );
    let a = Arc::new(AstGraph::from_program(
        &ccsa_cppast::parse_program(SLOW).expect("parse slow"),
    ));
    let b = Arc::new(AstGraph::from_program(
        &ccsa_cppast::parse_program(FAST).expect("parse fast"),
    ));
    let selector = ModelSelector::default();
    engine.compare_graphs(&selector, &a, &b).expect("cold");
    engine.compare_graphs(&selector, &b, &a).expect("warm-up");
    engine.compare_graphs(&selector, &a, &a).expect("warm-up");

    let before = allocs();
    for _ in 0..8 {
        engine.compare_graphs(&selector, &b, &a).expect("warm");
        engine.compare_graphs(&selector, &a, &a).expect("warm self");
    }
    let after = allocs();
    assert_eq!(after - before, 0, "operand order must not break pooling");
}
