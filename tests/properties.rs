//! Property-based tests over the cross-crate invariants the system relies
//! on: frontend round-trips, interpreter determinism, autograd
//! correctness on random graphs, label antisymmetry and metric bounds.

use proptest::prelude::*;

use ccsa::corpus::gen::{generate_program_with, Style};
use ccsa::corpus::interp::{run_program, CostModel, InputTok, Limits};
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};
use ccsa::cppast::{parse_program, print_program, AstGraph};
use ccsa::model::metrics::{accuracy_at, roc};
use ccsa::tensor::{grad_check, TapeScalar, Tensor};

fn arb_tag() -> impl Strategy<Value = ProblemTag> {
    prop::sample::select(ProblemTag::ALL.to_vec())
}

fn arb_style() -> impl Strategy<Value = Style> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0.0f32..1.0,
        0u8..3,
        0u8..3,
        (prop::bool::ANY, any::<bool>()),
    )
        .prop_map(
            |(
                helper,
                extra,
                second,
                recompute,
                endl,
                temp,
                while_p,
                dead,
                dead_loops,
                (flip, pre),
            )| Style {
                helper_fn: helper,
                extra_scan: extra,
                second_extra_scan: second,
                recompute_size: recompute,
                use_endl: endl,
                temp_var: temp,
                while_prob: while_p,
                dead_decls: dead,
                dead_loops,
                cond_flip_prob: if flip { 1.0 } else { 0.0 },
                pre_inc: pre,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any generated submission, in any style, for any family and
    /// strategy: prints → parses → prints identically (fixed point), and
    /// the flattened graph is a well-formed tree.
    #[test]
    fn generated_programs_roundtrip(
        tag in arb_tag(),
        strategy in 0usize..3,
        style in arb_style(),
        seed in 0u64..1000,
    ) {
        let spec = ProblemSpec::curated(tag);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let program = generate_program_with(&spec, strategy, &style, &mut rng);
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).expect("generated source must parse");
        prop_assert_eq!(&program.functions, &reparsed.functions);
        // Printing is a fixed point after one normalisation pass.
        prop_assert_eq!(print_program(&reparsed), printed);

        let graph = AstGraph::from_program(&reparsed);
        prop_assert!(graph.node_count() > 5);
        prop_assert_eq!(graph.edges().len(), graph.node_count() - 1);
        // Parent/child agreement.
        for ix in 1..graph.node_count() as u32 {
            prop_assert!(graph.children(graph.parent(ix)).contains(&ix));
        }
    }

    /// The interpreter is deterministic and its cost is monotone in the
    /// fuel-irrelevant sense: same program + same input = same cost and
    /// output, across repeated runs.
    #[test]
    fn interpreter_is_deterministic(
        tag in arb_tag(),
        strategy in 0usize..3,
        seed in 0u64..500,
    ) {
        let spec = ProblemSpec::curated(tag);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let program = ccsa::corpus::problems::build(tag, strategy, &Style::plain(), &spec.input);
        let input = spec.generate_input(&mut rng);
        let a = run_program(&program, &input, &CostModel::default(), &Limits::default()).unwrap();
        let b = run_program(&program, &input, &CostModel::default(), &Limits::default()).unwrap();
        prop_assert_eq!(a.cost, b.cost);
        prop_assert_eq!(a.output, b.output);
    }

    /// Random small computation graphs pass a finite-difference gradient
    /// check (autograd correctness beyond the hand-written unit tests).
    #[test]
    fn autograd_random_graphs_gradcheck(
        seed in 0u64..200,
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        use rand::RngExt;
        let mk = |rng: &mut rand::rngs::StdRng, n: usize| -> Tensor {
            Tensor::from_vec((0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect(), [n])
        };
        let w = Tensor::from_vec(
            (0..rows * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
            [rows, cols],
        );
        let x = mk(&mut rng, cols);
        let b = mk(&mut rng, rows);
        let report = grad_check(&[w, x, b], 1e-2, |tape, vars| {
            let y = vars[0].affine(vars[1], vars[2]).tanh();
            let z = y.sigmoid().mul(y);
            let cat = tape.concat(&[z, y]);
            TapeScalar(cat.sum().bce_with_logits(1.0))
        });
        prop_assert!(report.passes(3e-2), "gradcheck failed: {:?}", report);
    }

    /// Accuracy is bounded and ROC AUC stays within [0, 1] for arbitrary
    /// score/label sets.
    #[test]
    fn metric_bounds(
        scores in prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 1..200),
    ) {
        let scored: Vec<(f32, f32)> =
            scores.into_iter().map(|(s, l)| (s, l as i32 as f32)).collect();
        let acc = accuracy_at(&scored, 0.5);
        prop_assert!((0.0..=1.0).contains(&acc));
        let curve = roc(&scored);
        prop_assert!((0.0..=1.0).contains(&curve.auc));
    }

    /// Pair labels are antisymmetric whenever runtimes differ.
    #[test]
    fn pair_label_antisymmetry(ra in 1.0f64..1000.0, rb in 1.0f64..1000.0) {
        prop_assume!((ra - rb).abs() > 1e-9);
        // Construct two fake submissions through the corpus API.
        let ds = ccsa::corpus::dataset::ProblemDataset::generate(
            ProblemSpec::curated(ProblemTag::H),
            &ccsa::corpus::dataset::CorpusConfig {
                submissions_per_problem: 2,
                ..ccsa::corpus::dataset::CorpusConfig::tiny(1)
            },
        )
        .unwrap();
        let mut subs = ds.submissions;
        subs[0].runtime_ms = ra;
        subs[1].runtime_ms = rb;
        let l_ab = ccsa::model::pair::label_of(&subs, 0, 1);
        let l_ba = ccsa::model::pair::label_of(&subs, 1, 0);
        prop_assert_ne!(l_ab, l_ba);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Interpreter cost strictly increases when input size grows for
    /// data-dependent strategies (sanity of the cost model itself).
    #[test]
    fn cost_grows_with_input_size(seed in 0u64..50) {
        let spec = ProblemSpec::curated(ProblemTag::E);
        let program =
            ccsa::corpus::problems::build(ProblemTag::E, 1, &Style::plain(), &spec.input);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let small: Vec<InputTok> = {
            let mut spec_small = spec.clone();
            spec_small.input.n = 20;
            spec_small.generate_input(&mut rng)
        };
        let big: Vec<InputTok> = {
            let mut spec_big = spec.clone();
            spec_big.input.n = 60;
            spec_big.generate_input(&mut rng)
        };
        let a = run_program(&program, &small, &CostModel::default(), &Limits::default()).unwrap();
        let b = run_program(&program, &big, &CostModel::default(), &Limits::default()).unwrap();
        prop_assert!(b.cost > a.cost, "bigger input must cost more: {} vs {}", a.cost, b.cost);
    }
}
