//! End-to-end serving tests: train → persist (versioned) → registry →
//! engine, asserting the serving stack is *score-preserving* — every
//! layer (disk round-trip, embedding cache, micro-batching) must produce
//! bit-identical probabilities to direct in-process inference.

use std::sync::Arc;

use ccsa::corpus::gen::Style;
use ccsa::corpus::problems;
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};
use ccsa::cppast::{parse_program, print_program, AstGraph};
use ccsa::model::persist;
use ccsa::model::pipeline::{Pipeline, PipelineConfig, TrainedModel};
use ccsa::serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};

fn train_tiny(tag: ProblemTag, seed: u64) -> TrainedModel {
    Pipeline::new(PipelineConfig::tiny(seed))
        .run_single(tag)
        .expect("corpus generation")
        .model
}

fn temp_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsa-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                    for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                    cout << s; return 0; }";

fn graph(src: &str) -> AstGraph {
    AstGraph::from_program(&parse_program(src).unwrap())
}

#[test]
fn trained_model_survives_versioned_persistence_with_identical_predictions() {
    let model = train_tiny(ProblemTag::H, 11);
    let (a, b) = (graph(SLOW), graph(FAST));
    let reference_ab = model.compare_graphs(&a, &b).prob_first_slower;
    let reference_ba = model.compare_graphs(&b, &a).prob_first_slower;

    let dir = temp_dir("persist");
    let version = persist::save_version(&dir, &model).unwrap();
    assert_eq!(version, 1);
    let (resolved, loaded) = persist::load_version(&dir, None).unwrap();
    assert_eq!(resolved, 1);
    assert_eq!(
        loaded.compare_graphs(&a, &b).prob_first_slower,
        reference_ab
    );
    assert_eq!(
        loaded.compare_graphs(&b, &a).prob_first_slower,
        reference_ba
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serving_stack_is_score_preserving_end_to_end() {
    // Train, persist to a versioned directory, load through the registry,
    // serve through the batched+cached engine: probabilities must match
    // direct model inference exactly, with the cache cold AND warm.
    let model = train_tiny(ProblemTag::E, 5);
    let (a, b) = (graph(SLOW), graph(FAST));
    let reference = model.compare_graphs(&a, &b).prob_first_slower;

    let dir = temp_dir("stack");
    persist::save_version(&dir, &model).unwrap();
    let mut registry = ModelRegistry::new();
    assert_eq!(registry.load_dir("default", &dir).unwrap(), 1);
    let engine = ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 32,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 4,
                ..BatchConfig::default()
            },
        },
    );

    let sel = ModelSelector::default();
    let cold = engine.compare(&sel, SLOW, FAST).unwrap();
    assert_eq!(
        cold.prob_first_slower, reference,
        "cold-cache serving must match direct"
    );
    assert_eq!(cold.cache_hits, 0);
    let warm = engine.compare(&sel, SLOW, FAST).unwrap();
    assert_eq!(
        warm.prob_first_slower, reference,
        "warm-cache serving must match direct"
    );
    assert_eq!(warm.cache_hits, 2);

    let stats = engine.stats();
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.compares, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_ranks_generated_candidates_and_respects_round_robin() {
    // Rank real generated solutions (fresh styles the model never saw)
    // and check the ranking is a permutation consistent with the
    // round-robin definition: rank 1 holds the maximum win count.
    let model = train_tiny(ProblemTag::B, 3);
    let engine = ServeEngine::with_model(
        model,
        &ServeConfig {
            cache_capacity: 64,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    );

    let spec = ProblemSpec::curated(ProblemTag::B);
    let candidates: Vec<String> = (0..spec.strategies.len())
        .map(|s| {
            print_program(&problems::build(
                ProblemTag::B,
                s,
                &Style::plain(),
                &spec.input,
            ))
        })
        .collect();
    let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();

    let outcome = engine.rank(&ModelSelector::default(), &refs).unwrap();
    assert_eq!(outcome.ranking.len(), refs.len());
    let mut indices: Vec<usize> = outcome.ranking.iter().map(|r| r.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..refs.len()).collect::<Vec<_>>());
    let max_wins = outcome.ranking.iter().map(|r| r.wins).max().unwrap();
    assert_eq!(
        outcome.ranking[0].wins, max_wins,
        "rank 1 must hold the most wins"
    );

    // Ranking twice is deterministic and the second pass is all cache hits.
    let again = engine.rank(&ModelSelector::default(), &refs).unwrap();
    let order_a: Vec<usize> = outcome.ranking.iter().map(|r| r.index).collect();
    let order_b: Vec<usize> = again.ranking.iter().map(|r| r.index).collect();
    assert_eq!(order_a, order_b);
    assert_eq!(again.encoded, 0);
}

#[test]
fn protocol_layer_serves_compare_and_rank_lines() {
    let model = train_tiny(ProblemTag::H, 9);
    let engine = ServeEngine::with_model(model, &ServeConfig::default());

    let compare_line = format!(
        r#"{{"op":"compare","first":{},"second":{}}}"#,
        ccsa::serve::json::Json::str(SLOW),
        ccsa::serve::json::Json::str(FAST),
    );
    let response = ccsa::serve::proto::handle_line(&engine, &compare_line);
    let v = ccsa::serve::json::parse(&response).unwrap();
    assert_eq!(v.get("ok"), Some(&ccsa::serve::json::Json::Bool(true)));
    let p = v.get("prob_first_slower").unwrap().as_f64().unwrap();
    let direct = engine
        .compare(&ModelSelector::default(), SLOW, FAST)
        .unwrap()
        .prob_first_slower;
    assert!((p - direct as f64).abs() < 1e-6);

    let rank_line = format!(
        r#"{{"op":"rank","candidates":[{},{},{}]}}"#,
        ccsa::serve::json::Json::str(FAST),
        ccsa::serve::json::Json::str(SLOW),
        ccsa::serve::json::Json::str("int main() { return 3; }"),
    );
    let v =
        ccsa::serve::json::parse(&ccsa::serve::proto::handle_line(&engine, &rank_line)).unwrap();
    assert_eq!(v.get("ok"), Some(&ccsa::serve::json::Json::Bool(true)));
    assert_eq!(v.get("ranking").unwrap().as_arr().unwrap().len(), 3);
}

#[test]
fn concurrent_clients_get_consistent_scores() {
    // Many threads hammering the same engine must all observe the exact
    // same probability for the same pair — the cache/batcher interplay
    // cannot leak codes across models or corrupt slots.
    let model = train_tiny(ProblemTag::E, 13);
    let (a, b) = (graph(SLOW), graph(FAST));
    let reference = model.compare_graphs(&a, &b).prob_first_slower;
    let engine = Arc::new(ServeEngine::with_model(
        model,
        &ServeConfig {
            cache_capacity: 16,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 3,
                max_batch: 4,
                ..BatchConfig::default()
            },
        },
    ));

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    (0..5)
                        .map(|_| {
                            engine
                                .compare(&ModelSelector::default(), SLOW, FAST)
                                .unwrap()
                                .prob_first_slower
                        })
                        .collect::<Vec<f32>>()
                })
            })
            .collect();
        for handle in handles {
            for p in handle.join().unwrap() {
                assert_eq!(p, reference);
            }
        }
    });
}
