//! Integration tests spanning every crate: source text → parser → AST →
//! corpus → training → evaluation → persistence.

use ccsa::corpus::dataset::{CorpusConfig, ProblemDataset};
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};
use ccsa::model::persist::{load_params, save_params};
use ccsa::model::pipeline::{Pipeline, PipelineConfig};

#[test]
fn pipeline_beats_chance_on_every_curated_problem_family_smoke() {
    // A single tiny-scale run per problem is noisy; assert the *average*
    // over three easy problems beats chance clearly, and each individual
    // run is no worse than slightly-below chance.
    let mut accs = Vec::new();
    for (seed, tag) in [
        (1u64, ProblemTag::E),
        (2, ProblemTag::H),
        (3, ProblemTag::G),
    ] {
        let outcome = Pipeline::new(PipelineConfig::tiny(seed))
            .run_single(tag)
            .unwrap();
        accs.push(outcome.test_accuracy);
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(
        mean > 0.55,
        "mean accuracy {mean} too close to chance: {accs:?}"
    );
    for (i, acc) in accs.iter().enumerate() {
        assert!(*acc >= 0.45, "run {i} collapsed below chance: {acc}");
    }
}

#[test]
fn cross_problem_transfer_is_above_chance_between_related_problems() {
    // Train on F (subtree queries), test on G (BFS check) — same algorithm
    // group, the paper's generalisation claim in miniature.
    let pipeline = Pipeline::new(PipelineConfig::tiny(5));
    let outcome = pipeline.run_single(ProblemTag::F).unwrap();
    let other = ProblemDataset::generate(
        ProblemSpec::curated(ProblemTag::G),
        &pipeline.config().corpus,
    )
    .unwrap();
    let eval = pipeline.evaluate_cross(&outcome.model, &other);
    assert!(
        eval.accuracy > 0.45,
        "cross-problem transfer collapsed: {}",
        eval.accuracy
    );
}

#[test]
fn model_roundtrips_through_persistence() {
    let outcome = Pipeline::new(PipelineConfig::tiny(8))
        .run_single(ProblemTag::H)
        .unwrap();
    let mut buf = Vec::new();
    save_params(&outcome.model.params, &mut buf).unwrap();
    let reloaded = load_params(buf.as_slice()).unwrap();

    // Same prediction from the reloaded parameters.
    let a = &outcome.dataset.submissions[0].graph;
    let b = &outcome.dataset.submissions[1].graph;
    let before = outcome
        .model
        .comparator
        .predict(&outcome.model.params, a, b);
    let after = outcome.model.comparator.predict(&reloaded, a, b);
    assert!(
        (before - after).abs() < 1e-6,
        "prediction changed after reload"
    );
}

#[test]
fn corpus_sources_flow_through_the_public_frontend() {
    // Every generated submission must parse with the public API and
    // produce the same AST graph recorded in the dataset.
    let ds = ProblemDataset::generate(ProblemSpec::curated(ProblemTag::C), &CorpusConfig::tiny(13))
        .unwrap();
    for sub in &ds.submissions {
        let program = ccsa::cppast::parse_program(&sub.source).expect("dataset source parses");
        let graph = ccsa::cppast::AstGraph::from_program(&program);
        assert_eq!(graph, sub.graph, "recorded graph must match re-parse");
    }
}

#[test]
fn runtime_labels_follow_strategy_cost_ranks_in_aggregate() {
    let ds = ProblemDataset::generate(ProblemSpec::curated(ProblemTag::F), &CorpusConfig::tiny(17))
        .unwrap();
    let mean_ms = |rank: u8| -> f64 {
        let xs: Vec<f64> = ds
            .submissions
            .iter()
            .filter(|s| ds.spec.strategies[s.strategy].cost_rank == rank)
            .map(|s| s.runtime_ms)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    assert!(
        mean_ms(0) < mean_ms(2),
        "rank-0 strategies must be faster than rank-2 on average"
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // Types from different sub-crates compose through the facade.
    let tape = ccsa::tensor::Tape::new();
    let program = ccsa::cppast::parse_program("int main() { return 1 + 1; }").unwrap();
    let graph = ccsa::cppast::AstGraph::from_program(&program);
    let mut params = ccsa::nn::Params::new();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let enc =
        ccsa::nn::TreeLstmEncoder::new(&ccsa::nn::TreeLstmConfig::small(4), &mut params, &mut rng);
    let ctx = ccsa::nn::Ctx::new(&tape, &params);
    let z = enc.encode(&ctx, &graph);
    assert_eq!(z.value().len(), 4);
}
