//! Quickstart: train a comparative model on one problem and ask it which
//! of two fresh implementations will run faster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ccsa::corpus::ProblemTag;
use ccsa::model::pipeline::{Pipeline, PipelineConfig};

fn main() {
    // A small end-to-end run: generate a corpus for problem E
    // (constructive algorithms), train a tree-LSTM comparator on pairs of
    // submissions, evaluate on held-out submissions.
    println!("training a comparative model on problem E …");
    let mut config = PipelineConfig::default_experiment(7);
    config.corpus.submissions_per_problem = 60; // keep the example snappy
    config.train.epochs = 5;
    let outcome = Pipeline::new(config)
        .run_single(ProblemTag::E)
        .expect("corpus generation");
    println!("held-out pair accuracy: {:.3}", outcome.test_accuracy);
    println!("ROC AUC:                {:.3}", outcome.eval.roc().auc);

    // Now use the trained model the way a developer would: paste in two
    // versions of a function and ask which will be slower.
    let linear_scan = r#"
        int main() {
            int n; cin >> n;
            vector<long long> a(n);
            for (int i = 0; i < n; i++) cin >> a[i];
            long long best = 0;
            vector<long long> seen(1000, 0);
            for (int i = 0; i < n; i++) {
                if (seen[a[i]] == 0) { seen[a[i]] = 1; best++; }
            }
            cout << best;
            return 0;
        }
    "#;
    let quadratic_scan = r#"
        int main() {
            int n; cin >> n;
            vector<long long> a(n);
            for (int i = 0; i < n; i++) cin >> a[i];
            long long best = 0;
            for (int i = 0; i < n; i++) {
                long long fresh = 1;
                for (int j = 0; j < i; j++) {
                    if (a[j] == a[i]) fresh = 0;
                }
                best += fresh;
            }
            cout << best;
            return 0;
        }
    "#;

    let verdict = outcome
        .model
        .compare_sources(quadratic_scan, linear_scan)
        .expect("both sources parse");
    println!(
        "\nP(quadratic version is slower than bucket version) = {:.3}",
        verdict.prob_first_slower
    );
    if verdict.first_is_slower() {
        println!("→ the model flags the quadratic rewrite as a performance regression.");
    } else {
        println!("→ the model prefers the quadratic version (unexpected — try more epochs).");
    }
}
