//! Gateway demo: an in-process TCP gateway running a 75/25 A/B split
//! between two model versions with a shadow candidate, driven by a
//! handful of sticky clients.
//!
//! The flow mirrors a version ramp in production: v1 is the incumbent,
//! v2 takes 25 % of traffic, and v3 shadows 50 % of routed requests
//! without ever answering a client. The `routes` verb shows each
//! route's live share, latency percentiles and cache hit rate.
//!
//! ```sh
//! cargo run --release --example gateway_demo
//! ```

use std::sync::Arc;

use ccsa::gateway::{Gateway, GatewayClient, GatewayConfig, Route, Router, ShadowRoute};
use ccsa::model::pipeline::{Pipeline, PipelineConfig};
use ccsa::serve::{ModelRegistry, ServeConfig, ServeEngine};

fn selector(version: u32) -> ccsa::serve::ModelSelector {
    ccsa::serve::ModelSelector {
        name: Some("default".to_string()),
        version: Some(version),
    }
}

fn main() {
    // 1. Train one small comparator and register it as three versions
    //    (in a real ramp these would be different training runs).
    println!("training a small comparator on problem H …");
    let outcome = Pipeline::new(PipelineConfig::tiny(7))
        .run_single(ccsa::corpus::spec::ProblemTag::H)
        .expect("corpus generation");
    println!("held-out pair accuracy: {:.3}\n", outcome.test_accuracy);
    let mut registry = ModelRegistry::new();
    registry.register("default", 1, outcome.model.clone());
    registry.register("default", 2, outcome.model.clone());
    registry.register("default", 3, outcome.model);
    let engine = Arc::new(ServeEngine::new(registry, &ServeConfig::default()));

    // 2. Front it with a gateway: 75/25 split, v3 shadowing half of it.
    let router = Router::new(
        vec![
            Route {
                selector: selector(1),
                weight: 0.75,
            },
            Route {
                selector: selector(2),
                weight: 0.25,
            },
        ],
        Some(ShadowRoute {
            selector: selector(3),
            fraction: 0.5,
        }),
    )
    .expect("valid table");
    let gateway = Gateway::spawn(engine, router, GatewayConfig::default()).expect("spawn");
    println!("gateway listening on {}", gateway.addr());

    // 3. Simulated clients: each key is sticky to one route.
    const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
    const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                        for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                        cout << s; return 0; }";
    let mut client = GatewayClient::connect(gateway.addr()).expect("connect");
    for user in 0..8 {
        let key = format!("user-{user}");
        let reply = client.compare(SLOW, FAST, Some(&key)).expect("compare");
        println!(
            "{key}: routed to {} v{} — P(first slower) = {:.3}",
            reply.model, reply.version, reply.prob_first_slower
        );
    }

    // 4. What the operator sees.
    let routes = client.routes().expect("routes verb");
    println!("\nroutes: {routes}");

    gateway.shutdown_and_join().expect("clean drain");
    println!("gateway drained cleanly");
}
