//! Use case 2 from the paper's introduction: "predicting performance as a
//! code evolves" — a nightly-CI style performance gate that flags commits
//! whose structural changes look like slowdowns, before anything runs.
//!
//! ```sh
//! cargo run --release --example regression_gate
//! ```

use ccsa::corpus::ProblemTag;
use ccsa::model::pipeline::{Pipeline, PipelineConfig, TrainedModel};

/// A simulated commit history of one function: each entry is
/// (message, source).
fn history() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "initial: sum via loop",
            "int main() { int n; cin >> n; long long s = 0; \
             for (int i = 1; i <= n; i++) s += i; cout << s; return 0; }",
        ),
        (
            "perf: closed-form sum",
            "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }",
        ),
        (
            "feat: also count pairs (accidentally quadratic)",
            "int main() { int n; cin >> n; long long s = 0; \
             for (int i = 1; i <= n; i++) { for (int j = 1; j <= n; j++) { \
             if (j < i) s += 1; } } cout << s; return 0; }",
        ),
        (
            "fix: restore linear pair count",
            "int main() { int n; cin >> n; long long s = 0; \
             for (int i = 1; i <= n; i++) s += i - 1; cout << s; return 0; }",
        ),
    ]
}

fn gate(model: &TrainedModel, before: &str, after: &str) -> (bool, f32) {
    // P(after is slower than before): flag when the model is confident.
    let cmp = model.compare_sources(after, before).expect("sources parse");
    (cmp.prob_first_slower > 0.6, cmp.prob_first_slower)
}

fn main() {
    println!("training the gate model on problem H (DP) …");
    let mut config = PipelineConfig::default_experiment(23);
    config.corpus.submissions_per_problem = 60;
    let outcome = Pipeline::new(config)
        .run_single(ProblemTag::H)
        .expect("corpus generation");
    println!("held-out pair accuracy: {:.3}\n", outcome.test_accuracy);

    let commits = history();
    println!("replaying commit history through the gate:");
    for window in commits.windows(2) {
        let (prev_msg, prev_src) = window[0];
        let (msg, src) = window[1];
        let (flagged, p) = gate(&outcome.model, prev_src, src);
        println!(
            "  {:<48} P(slower)={p:.2}  {}",
            format!("'{prev_msg}' → '{msg}'"),
            if flagged {
                "⚠ FLAG: likely regression"
            } else {
                "ok"
            }
        );
    }
    println!(
        "\nexpected: the 'accidentally quadratic' commit is flagged, the\n\
         closed-form and linear-restore commits pass."
    );
}
