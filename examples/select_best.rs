//! Use case 1 from the paper's introduction: "selecting the best algorithm
//! to solve a problem out of several alternative solutions".
//!
//! Trains a model on the T-Prime problem, then ranks three candidate
//! implementations by round-robin pairwise comparison — without running
//! any of them.
//!
//! ```sh
//! cargo run --release --example select_best
//! ```

use ccsa::corpus::gen::Style;
use ccsa::corpus::problems;
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};
use ccsa::cppast::print_program;
use ccsa::model::pipeline::{Pipeline, PipelineConfig};

fn main() {
    println!("training on problem B (T-Prime) …");
    let mut config = PipelineConfig::default_experiment(11);
    config.corpus.submissions_per_problem = 60;
    let pipeline = Pipeline::new(config);
    let outcome = pipeline
        .run_single(ProblemTag::B)
        .expect("corpus generation");
    println!("held-out pair accuracy: {:.3}\n", outcome.test_accuracy);

    // Three real alternative solutions from the family templates — the
    // model has never seen these exact programs (fresh style).
    let spec = ProblemSpec::curated(ProblemTag::B);
    let candidates: Vec<(String, String)> = (0..3)
        .map(|s| {
            let name = spec.strategies[s].name.to_string();
            let program = problems::build(ProblemTag::B, s, &Style::plain(), &spec.input);
            (name, print_program(&program))
        })
        .collect();

    // Round-robin: candidate score = expected number of wins ("faster
    // than") over the others, averaged over both orderings.
    let n = candidates.len();
    let mut wins = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let cmp = outcome
                .model
                .compare_sources(&candidates[i].1, &candidates[j].1)
                .expect("parse");
            // P(i slower than j) → win for j.
            wins[j] += cmp.prob_first_slower as f64;
            wins[i] += 1.0 - cmp.prob_first_slower as f64;
        }
    }

    println!("predicted ranking (higher score = predicted faster):");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wins[b].partial_cmp(&wins[a]).unwrap());
    for (rank, &ix) in order.iter().enumerate() {
        println!(
            "  {}. {:<14} score {:.2}",
            rank + 1,
            candidates[ix].0,
            wins[ix]
        );
    }
    println!(
        "\nground truth for this problem: sieve+table < sqrt-trial < incremental\n\
         (strategy templates are ordered by measured judge cost)."
    );
}
