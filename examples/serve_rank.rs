//! Serving demo: rank K = 8 candidate solutions to one curated problem
//! end-to-end through the `ccsa-serve` engine.
//!
//! The flow mirrors production: train a comparator, persist it as a
//! versioned artefact, load it back through the model registry, then ask
//! the engine to order eight *fresh* generated implementations of problem
//! B (T-Prime) from fastest to slowest — without running any of them.
//!
//! ```sh
//! cargo run --release --example serve_rank
//! ```

use ccsa::corpus::gen::generate_program;
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};
use ccsa::cppast::print_program;
use ccsa::model::persist;
use ccsa::model::pipeline::{Pipeline, PipelineConfig};
use ccsa::serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Train.
    println!("training a comparator on problem B (T-Prime) …");
    let mut config = PipelineConfig::default_experiment(11);
    config.corpus.submissions_per_problem = 60; // keep the example snappy
    let outcome = Pipeline::new(config)
        .run_single(ProblemTag::B)
        .expect("corpus generation");
    println!("held-out pair accuracy: {:.3}", outcome.test_accuracy);

    // 2. Persist as a versioned artefact and load it back via the
    //    registry — the same path a serving fleet would take.
    let dir = std::env::temp_dir().join(format!("ccsa-serve-rank-{}", std::process::id()));
    let version = persist::save_version(&dir, &outcome.model).expect("persist model");
    let mut registry = ModelRegistry::new();
    registry.load_dir("default", &dir).expect("load model dir");
    println!("serving model-v{version}.ccsm from {}\n", dir.display());

    let engine = ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 256,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    );

    // 3. Generate K = 8 fresh candidate solutions: every strategy the
    //    family has, in varied authoring styles the model never saw.
    let spec = ProblemSpec::curated(ProblemTag::B);
    let k = 8;
    let mut rng = StdRng::seed_from_u64(2024);
    let candidates: Vec<(String, String)> = (0..k)
        .map(|i| {
            let strategy = i % spec.strategies.len();
            let program = generate_program(&spec, strategy, &mut rng);
            let label = format!("candidate {i} ({})", spec.strategies[strategy].name);
            (label, print_program(&program))
        })
        .collect();

    // 4. Rank them through the engine.
    let sources: Vec<&str> = candidates.iter().map(|(_, src)| src.as_str()).collect();
    let ranked = engine
        .rank(&ModelSelector::default(), &sources)
        .expect("ranking");

    println!(
        "predicted order, fastest first (round-robin, {} pairwise comparisons):",
        k * (k - 1) / 2
    );
    for entry in &ranked.ranking {
        let (label, _) = &candidates[entry.index];
        println!(
            "  #{:<2} {label:<34} wins {:>2}/{}  expected {:.2}{}",
            entry.rank,
            entry.wins,
            k - 1,
            entry.expected_wins,
            if entry.in_cycle { "  [cycle]" } else { "" }
        );
    }

    // 5. Show what serving bought us: the second identical request is
    //    answered entirely from the embedding cache.
    let again = engine
        .rank(&ModelSelector::default(), &sources)
        .expect("ranking");
    let stats = engine.stats();
    println!(
        "\nfirst pass encoded {} trees; repeat pass encoded {} (cache hits {}/{})",
        ranked.encoded, again.encoded, again.cache_hits, k
    );
    println!(
        "engine totals: {} comparisons, cache hit-rate {:.0}%, mean encode batch {:.1}",
        stats.compares,
        100.0 * stats.cache.hit_rate(),
        stats.batch.mean_batch_size()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
