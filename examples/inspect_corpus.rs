//! Inspect the synthetic corpus: print a couple of generated submissions
//! for one problem with their judged runtimes and AST statistics — useful
//! for understanding what the models actually see.
//!
//! ```sh
//! cargo run --release --example inspect_corpus
//! ```

use ccsa::corpus::dataset::{CorpusConfig, ProblemDataset};
use ccsa::corpus::spec::{ProblemSpec, ProblemTag};

fn main() {
    let spec = ProblemSpec::curated(ProblemTag::C);
    println!(
        "problem C ({}; {}), strategies:",
        spec.family.contest(),
        spec.family.algorithms()
    );
    for s in &spec.strategies {
        println!(
            "  - {:<14} weight {:.2}  cost rank {}",
            s.name, s.weight, s.cost_rank
        );
    }

    let config = CorpusConfig {
        submissions_per_problem: 12,
        ..CorpusConfig::tiny(99)
    };
    let ds = ProblemDataset::generate(spec, &config).expect("corpus generation");

    // The fastest and slowest submission of this small batch.
    let fastest = ds
        .submissions
        .iter()
        .min_by(|a, b| a.runtime_ms.partial_cmp(&b.runtime_ms).unwrap())
        .unwrap();
    let slowest = ds
        .submissions
        .iter()
        .max_by(|a, b| a.runtime_ms.partial_cmp(&b.runtime_ms).unwrap())
        .unwrap();

    for (title, sub) in [("fastest", fastest), ("slowest", slowest)] {
        println!(
            "\n=== {title}: submission #{} — {:.0} ms, strategy '{}', {} AST nodes, depth {} ===",
            sub.id,
            sub.runtime_ms,
            ds.spec.strategies[sub.strategy].name,
            sub.graph.node_count(),
            sub.graph.depth(),
        );
        println!("{}", sub.source);
    }

    let stats = ds.stats();
    println!(
        "batch stats: min {:.0} ms | median {:.0} ms | max {:.0} ms | σ {:.0} ms",
        stats.min_ms, stats.median_ms, stats.max_ms, stats.stddev_ms
    );
}
